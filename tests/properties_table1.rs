//! Table I's feature matrix, demonstrated as executable properties:
//! Slicer claims data dynamics ✓, numerical comparison ✓, freshness ✓,
//! forward security ✓ and public verifiability ✓. Each test exhibits one
//! property end to end.

use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_crypto::Prf;
use std::collections::HashSet;

fn ids(records: &[RecordId]) -> Vec<u64> {
    let mut v: Vec<u64> = records.iter().map(|r| r.as_u64().unwrap()).collect();
    v.sort_unstable();
    v
}

#[test]
fn property_dynamics_additions_are_first_class() {
    // Dynamics: additions work after build and compose with search
    // (deletion/update are exercised in tests/dual_instance.rs).
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 1);
    sys.build(&[(RecordId::from_u64(1), 10)]).unwrap();
    for round in 2u64..8 {
        sys.insert(&[(RecordId::from_u64(round), round * 10 % 256)])
            .unwrap();
    }
    let out = sys.search(&Query::less_than(45), 10).unwrap();
    assert!(out.verified);
    assert_eq!(ids(&out.records), vec![1, 2, 3, 4]);
}

#[test]
fn property_numerical_comparison_not_just_keywords() {
    // Numerical comparison: a single order query answers a range without
    // enumerating the value space (tokens ≤ b, not O(|domain|)).
    let mut sys = SlicerSystem::setup(SlicerConfig::test_16bit(), 2);
    let db: Vec<(RecordId, u64)> = (0u64..100)
        .map(|i| (RecordId::from_u64(i), i * 601 % 65_536))
        .collect();
    sys.build(&db).unwrap();
    let tokens = sys.instance().user.tokens_for(&Query::less_than(30_000));
    assert!(
        tokens.len() <= 16,
        "order query uses at most b tokens, got {}",
        tokens.len()
    );
    let out = sys.search(&Query::less_than(30_000), 10).unwrap();
    assert!(out.verified);
    let want: Vec<u64> = db
        .iter()
        .filter(|(_, v)| *v < 30_000)
        .map(|(id, _)| id.as_u64().unwrap())
        .collect();
    let mut want = want;
    want.sort_unstable();
    assert_eq!(ids(&out.records), want);
}

#[test]
fn property_freshness_stale_results_rejected() {
    // Freshness: after the owner updates the data (and the on-chain
    // digest), a result set missing the newest generation cannot verify —
    // without any online participation of the owner in the check.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 3);
    sys.build(&[(RecordId::from_u64(1), 77)]).unwrap();
    sys.insert(&[(RecordId::from_u64(2), 77)]).unwrap();
    let stale = sys
        .search_with(&Query::equal(77), 100, |mut resp| {
            for e in &mut resp.entries {
                // Serve only one generation's worth of results.
                e.er.truncate(1);
            }
            resp
        })
        .unwrap();
    assert!(!stale.verified, "stale view must be rejected");
    let fresh = sys.search(&Query::equal(77), 100).unwrap();
    assert!(fresh.verified);
    assert_eq!(ids(&fresh.records), vec![1, 2]);
}

#[test]
fn property_forward_security_old_tokens_miss_new_data() {
    // Forward security: an old search token cannot reach entries inserted
    // later — the insertion rotated the trapdoor with π_sk⁻¹, which the
    // server cannot invert.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 4);
    sys.build(&[(RecordId::from_u64(1), 99)]).unwrap();

    // Capture the pre-insert token for value 99.
    let old_tokens = sys.instance().user.tokens_for(&Query::equal(99));
    assert_eq!(old_tokens.len(), 1);

    sys.insert(&[(RecordId::from_u64(2), 99)]).unwrap();

    // The cloud, replaying the OLD token, recovers only the old record.
    let old_results = sys.instance().cloud.search(&old_tokens);
    assert_eq!(
        old_results[0].er.len(),
        1,
        "new record invisible to old token"
    );

    // The fresh token reaches both generations.
    let new_tokens = sys.instance().user.tokens_for(&Query::equal(99));
    assert_eq!(new_tokens[0].updates, old_tokens[0].updates + 1);
    let new_results = sys.instance().cloud.search(&new_tokens);
    assert_eq!(new_results[0].er.len(), 2);

    // And the new generation's index labels are unlinkable to the old
    // token's label space: no label derivable from the old trapdoor hits
    // the new entries (checked by exhausting the old token's reach above).
    assert_ne!(new_tokens[0].trapdoor, old_tokens[0].trapdoor);
}

#[test]
fn property_forward_security_insert_output_looks_random() {
    // The L^insert leakage argument: the shipped index entries carry no
    // keyword-correlated structure — labels under the same keyword before
    // and after rotation share no bytes prefix-wise beyond chance. We test
    // a necessary observable: labels are distinct and spread.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 5);
    sys.build(&[(RecordId::from_u64(1), 50)]).unwrap();
    let out = sys
        .instance_mut()
        .owner
        .insert(&[(RecordId::from_u64(2), 50)])
        .unwrap();
    let labels: HashSet<[u8; 32]> = out.entries.iter().map(|(l, _)| *l).collect();
    assert_eq!(labels.len(), out.entries.len(), "no label collisions");
    // First-byte distribution sanity: not all equal.
    let firsts: HashSet<u8> = out.entries.iter().map(|(l, _)| l[0]).collect();
    assert!(firsts.len() > 1 || out.entries.len() < 4);
}

#[test]
fn property_public_verifiability_no_secrets_on_chain() {
    // Public verifiability: the contract verifies with only public inputs.
    // The calldata visible on chain never contains K, K_R or plaintext
    // values/record ids.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 6);
    let secret_value = 123u64;
    sys.build(&[(RecordId::from_u64(1), secret_value)]).unwrap();
    let out = sys.search(&Query::equal(secret_value), 100).unwrap();
    assert!(out.verified, "verification used only public data");

    // The encrypted results recovered by the cloud do not reveal the
    // record id without K_R: decrypting with the wrong key garbles.
    let tokens = sys.instance().user.tokens_for(&Query::equal(secret_value));
    let results = sys.instance().cloud.search(&tokens);
    let er = &results[0].er[0];
    assert_ne!(&er[..], RecordId::from_u64(1).as_bytes());
    // And the search token hides the queried value: G1/G2 are PRF outputs;
    // recomputing them requires K. A fresh PRF with a wrong key disagrees.
    let wrong = Prf::new(b"not the real K");
    assert_ne!(tokens[0].g1, wrong.derive(b"anything", 1));
}

#[test]
fn property_fairness_payment_follows_verification() {
    // Fairness: the user cannot deny a correct result (contract pays the
    // cloud), and the cloud cannot take the fee for a wrong one.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 7);
    let db: Vec<(RecordId, u64)> = (0u64..50)
        .map(|i| (RecordId::from_u64(i), i % 256))
        .collect();
    sys.build(&db).unwrap();
    let (_, user, cloud) = sys.instance().addresses();

    let u0 = sys.chain().balance(&user);
    let c0 = sys.chain().balance(&cloud);
    let honest = sys.search(&Query::less_than(25), 999).unwrap();
    assert!(honest.verified && honest.paid_cloud);
    assert_eq!(sys.chain().balance(&user), u0 - 999);
    assert_eq!(sys.chain().balance(&cloud), c0 + 999);

    let cheat = sys
        .search_with(
            &Query::less_than(25),
            999,
            slicer_core::malicious::drop_record,
        )
        .unwrap();
    assert!(!cheat.verified && !cheat.paid_cloud);
    assert_eq!(sys.chain().balance(&user), u0 - 999, "second fee refunded");
    assert_eq!(sys.chain().balance(&cloud), c0 + 999, "no second payment");
}
