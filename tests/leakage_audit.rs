//! The leakage audit closes the Theorem 2 loop at runtime: an
//! instrumented run's trace transcript, read through span attributes
//! alone, must reveal exactly the declared `L^build`/`L^search`/`L^repeat`
//! profiles — nothing more, nothing less. These tests run the honest
//! protocol end-to-end against the auditor, then tamper with the
//! transcript to prove the auditor actually rejects over-leaky traces.

use slicer_core::{LeakageAuditor, LeakageViolation, Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_telemetry::{
    chrome_trace, json, AttrValue, Event, LogicalClock, MemorySink, SpanId, TelemetryHandle,
};
use std::sync::Arc;

fn db(n: u64) -> Vec<(RecordId, u64)> {
    (0..n)
        .map(|i| (RecordId::from_u64(i), (i * 37 + 11) % 256))
        .collect()
}

/// A full instrumented lifecycle: build, insert, three searches (one a
/// byte-identical repeat, exercising `L^repeat`).
fn instrumented_run() -> (SlicerSystem, Vec<Event>) {
    let sink = Arc::new(MemorySink::new());
    let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
    let mut sys = SlicerSystem::setup_with(SlicerConfig::test_8bit(), 0xA0D17, handle);
    sys.build(&db(24)).expect("in-domain build");
    sys.insert(&[(RecordId::from_u64(500), 42), (RecordId::from_u64(501), 7)])
        .expect("in-domain insert");
    sys.search(&Query::less_than(100), 10).expect("search runs");
    sys.search(&Query::equal(42), 10).expect("search runs");
    sys.search(&Query::equal(42), 10)
        .expect("repeat search runs");
    (sys, sink.events())
}

#[test]
fn honest_run_passes_the_audit() {
    let (sys, events) = instrumented_run();
    let auditor = LeakageAuditor::from_events(&events).expect("honest transcript parses");
    let report = auditor
        .verify(sys.instance().declared_leakage())
        .expect("honest transcript matches declared leakage");
    assert_eq!(report.builds, 2, "one build + one insert shipment");
    assert_eq!(report.searches, 3);
    assert!(report.tokens > 0, "searches produced tokens");
    assert!(
        report.distinct_tokens < report.tokens,
        "the repeated query must fold into fewer distinct token identities"
    );
}

#[test]
fn search_outcome_carries_its_trace_id() {
    let sink = Arc::new(MemorySink::new());
    let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
    let mut sys = SlicerSystem::setup_with(SlicerConfig::test_8bit(), 0xA0D17, handle);
    sys.build(&db(24)).expect("in-domain build");
    let outcome = sys.search(&Query::less_than(100), 10).expect("search runs");
    assert_ne!(
        outcome.trace_id, 0,
        "instrumented searches carry a trace id"
    );
    let found = sink.events().iter().any(|e| {
        matches!(e, Event::SpanEnd { trace, name, .. }
            if name == "protocol.search" && trace.0 == outcome.trace_id)
    });
    assert!(found, "the outcome's trace id names a protocol.search root");
}

#[test]
fn undeclared_attribute_is_rejected() {
    let (_sys, mut events) = instrumented_run();
    // An over-leaky instrumentation change: a token span that records a
    // per-record plaintext-derived value.
    let tampered = events.iter_mut().find_map(|e| match e {
        Event::SpanEnd { name, attrs, .. } if name == "cloud.token" => Some(attrs),
        _ => None,
    });
    tampered
        .expect("run contains token spans")
        .push(("record.value", AttrValue::U64(7)));
    match LeakageAuditor::from_events(&events) {
        Err(LeakageViolation::UndeclaredAttribute { span, key }) => {
            assert_eq!(span, "cloud.token");
            assert_eq!(key, "record.value");
        }
        other => panic!("expected UndeclaredAttribute, got {other:?}"),
    }
}

#[test]
fn value_dependent_span_count_is_rejected() {
    let (sys, mut events) = instrumented_run();
    // A value-dependent leak: one more token span than the query shape
    // warrants (e.g. a code path that probes the store once per match).
    let idx = events
        .iter()
        .position(|e| matches!(e, Event::SpanEnd { name, .. } if name == "cloud.token"))
        .expect("run contains token spans");
    let duplicate = events[idx].clone();
    events.insert(idx, duplicate);
    let auditor = LeakageAuditor::from_events(&events).expect("keys are all declared");
    match auditor.verify(sys.instance().declared_leakage()) {
        Err(LeakageViolation::SearchMismatch { index, .. }) => assert_eq!(index, 0),
        other => panic!("expected SearchMismatch, got {other:?}"),
    }
}

#[test]
fn token_span_outside_any_search_is_rejected() {
    let (_sys, mut events) = instrumented_run();
    let mut stray = events
        .iter()
        .find(|e| matches!(e, Event::SpanEnd { name, .. } if name == "cloud.token"))
        .expect("run contains token spans")
        .clone();
    if let Event::SpanEnd { trace, .. } = &mut stray {
        trace.0 = 999_999;
    }
    events.push(stray);
    match LeakageAuditor::from_events(&events) {
        Err(LeakageViolation::OrphanTokenSpan { trace }) => assert_eq!(trace, 999_999),
        other => panic!("expected OrphanTokenSpan, got {other:?}"),
    }
}

#[test]
fn dropped_build_span_is_rejected() {
    let (sys, mut events) = instrumented_run();
    let idx = events
        .iter()
        .position(|e| matches!(e, Event::SpanEnd { name, .. } if name == "phase.build"))
        .expect("run contains build spans");
    events.remove(idx);
    let auditor = LeakageAuditor::from_events(&events).expect("keys are all declared");
    match auditor.verify(sys.instance().declared_leakage()) {
        Err(LeakageViolation::BuildCountMismatch { observed, declared }) => {
            assert_eq!((observed, declared), (1, 2));
        }
        other => panic!("expected BuildCountMismatch, got {other:?}"),
    }
}

/// The six protocol phases of the paper's Fig. 2 pipeline, as span names.
const PHASES: [&str; 6] = [
    "phase.setup",
    "phase.build",
    "phase.token",
    "phase.search",
    "phase.verify",
    "phase.settle",
];

#[test]
fn chrome_trace_export_round_trips_with_all_phases() {
    let (_sys, events) = instrumented_run();
    let exported = chrome_trace(&events);
    json::parse(&exported).expect("chrome trace is valid RFC 8259 JSON");
    assert!(
        exported.contains("\"traceEvents\":["),
        "export must carry a traceEvents array"
    );
    for phase in PHASES {
        assert!(
            exported.contains(&format!("\"name\":\"{phase}\"")),
            "chrome trace is missing phase span {phase}"
        );
    }
}

#[test]
fn phase_spans_are_parents_of_protocol_work() {
    let (_sys, events) = instrumented_run();
    let span_end = |want: &str| {
        events.iter().find_map(|e| match e {
            Event::SpanEnd {
                span, parent, name, ..
            } if name == want => Some((*span, *parent)),
            _ => None,
        })
    };
    let (search_root, _) = span_end("protocol.search").expect("search root span");
    for child in [
        "phase.token",
        "phase.search",
        "phase.verify",
        "phase.settle",
    ] {
        let (_, parent) = span_end(child).expect("phase span present");
        assert_eq!(
            parent,
            Some(SpanId(search_root.0)),
            "{child} must be a child of protocol.search"
        );
    }
    // The cloud's per-token walk in turn nests under the search phase.
    let (search_phase, _) = span_end("phase.search").expect("search phase span");
    let respond_parent = span_end("cloud.respond").expect("cloud.respond span").1;
    assert_eq!(respond_parent, Some(SpanId(search_phase.0)));
}
