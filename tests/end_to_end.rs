//! Cross-crate end-to-end tests: the full Fig. 1 workflow at moderate
//! scale, checked against a plaintext oracle.

use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_workload::{sample_query_values, DatasetSpec};

fn load(n: usize, bits: u8, seed: u64) -> (SlicerSystem, Vec<(RecordId, u64)>) {
    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(n, bits, seed)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    let mut sys = SlicerSystem::setup(SlicerConfig::with_bits(bits), seed);
    sys.build(&db).expect("generated data fits the domain");
    (sys, db)
}

fn check_query(sys: &mut SlicerSystem, db: &[(RecordId, u64)], q: &Query) {
    let out = sys.search(q, 100).expect("workflow completes");
    assert!(out.verified, "honest search verifies: {q:?}");
    let mut got: Vec<u64> = out.records.iter().map(|r| r.as_u64().unwrap()).collect();
    got.sort_unstable();
    let mut want: Vec<u64> = db
        .iter()
        .filter(|(_, v)| q.matches(*v))
        .map(|(id, _)| id.as_u64().unwrap())
        .collect();
    want.sort_unstable();
    assert_eq!(got, want, "oracle mismatch for {q:?}");
}

#[test]
fn sampled_queries_match_oracle_8bit() {
    let (mut sys, db) = load(400, 8, 1);
    let raw: Vec<([u8; 16], u64)> = db.iter().map(|(id, v)| (id.0, *v)).collect();
    for v in sample_query_values(&raw, 4, 2) {
        check_query(&mut sys, &db, &Query::equal(v));
        check_query(&mut sys, &db, &Query::less_than(v));
        check_query(&mut sys, &db, &Query::greater_than(v));
    }
}

#[test]
fn sampled_queries_match_oracle_16bit() {
    let (mut sys, db) = load(300, 16, 3);
    let raw: Vec<([u8; 16], u64)> = db.iter().map(|(id, v)| (id.0, *v)).collect();
    for v in sample_query_values(&raw, 3, 4) {
        check_query(&mut sys, &db, &Query::equal(v));
        check_query(&mut sys, &db, &Query::less_than(v));
    }
}

#[test]
fn domain_boundary_queries() {
    let (mut sys, db) = load(200, 8, 5);
    // Query values at the domain edges.
    check_query(&mut sys, &db, &Query::less_than(0)); // nothing is < 0
    check_query(&mut sys, &db, &Query::greater_than(255)); // nothing is > max
    check_query(&mut sys, &db, &Query::less_than(255));
    check_query(&mut sys, &db, &Query::greater_than(0));
    check_query(&mut sys, &db, &Query::equal(0));
}

#[test]
fn interleaved_inserts_and_searches() {
    let (mut sys, mut db) = load(150, 8, 6);
    for round in 0u64..4 {
        let new: Vec<(RecordId, u64)> = (0..25)
            .map(|i| {
                (
                    RecordId::from_u64(10_000 + round * 100 + i),
                    (round * 50 + i) % 256,
                )
            })
            .collect();
        sys.insert(&new).expect("fits domain");
        db.extend(new);
        check_query(&mut sys, &db, &Query::less_than(128));
        check_query(&mut sys, &db, &Query::equal((round * 50) % 256));
    }
}

#[test]
fn repeated_identical_queries_stay_consistent() {
    let (mut sys, db) = load(200, 8, 7);
    let q = Query::less_than(100);
    let first = sys.search(&q, 10).expect("workflow");
    for _ in 0..3 {
        let again = sys.search(&q, 10).expect("workflow");
        assert!(again.verified);
        assert_eq!(again.records.len(), first.records.len());
    }
    check_query(&mut sys, &db, &q);
}

#[test]
fn duplicate_values_return_all_records() {
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 8);
    let db: Vec<(RecordId, u64)> = (0u64..20).map(|i| (RecordId::from_u64(i), 42)).collect();
    sys.build(&db).expect("fits");
    let out = sys.search(&Query::equal(42), 10).expect("workflow");
    assert!(out.verified);
    assert_eq!(out.records.len(), 20);
}

#[test]
fn chain_integrity_after_full_lifecycle() {
    let (mut sys, _) = load(100, 8, 9);
    sys.insert(&[(RecordId::from_u64(999), 5)]).expect("fits");
    sys.search(&Query::less_than(50), 10).expect("workflow");
    assert!(sys.chain().verify_chain(), "hash chain must verify");
    assert!(sys.chain().height() >= 3, "build + insert + search blocks");
}
