//! Failure injection: every malicious-cloud behaviour from the Section
//! IV-B threat model must fail on-chain verification and trigger a refund
//! (Theorem 3's soundness, tested end to end).

use slicer_core::{malicious, CloudResponse, Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_workload::DatasetSpec;

fn system(seed: u64) -> SlicerSystem {
    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(250, 8, seed)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), seed);
    sys.build(&db).expect("fits domain");
    sys
}

/// Runs a tampered search and asserts failure + refund.
fn assert_attack_caught(
    seed: u64,
    query: Query,
    tamper: impl FnOnce(CloudResponse) -> CloudResponse,
) {
    let mut sys = system(seed);
    let (_, user, cloud) = sys.instance().addresses();
    let u0 = sys.chain().balance(&user);
    let c0 = sys.chain().balance(&cloud);
    let out = sys.search_with(&query, 777, tamper).expect("workflow runs");
    assert!(!out.verified, "attack must be detected");
    assert!(!out.paid_cloud);
    assert_eq!(sys.chain().balance(&user), u0, "fee refunded to user");
    assert_eq!(sys.chain().balance(&cloud), c0, "attacker unpaid");
}

#[test]
fn dropped_record_fails() {
    assert_attack_caught(1, Query::less_than(128), malicious::drop_record);
}

#[test]
fn injected_record_fails() {
    assert_attack_caught(2, Query::less_than(128), |r| {
        malicious::inject_record(r, vec![0x42; 32])
    });
}

#[test]
fn corrupt_witness_fails() {
    assert_attack_caught(3, Query::less_than(128), malicious::corrupt_witness);
}

#[test]
fn swapped_slice_results_fail() {
    assert_attack_caught(4, Query::less_than(200), malicious::swap_results);
}

#[test]
fn empty_response_fails() {
    assert_attack_caught(5, Query::less_than(128), |mut resp| {
        for e in &mut resp.entries {
            e.er.clear();
        }
        resp
    });
}

#[test]
fn missing_slice_entry_fails() {
    assert_attack_caught(6, Query::less_than(128), |mut resp| {
        resp.entries.pop();
        resp
    });
}

#[test]
fn duplicated_slice_entry_fails() {
    // 255 = 0b1111_1111: a `< v` query has one usable slice per set bit of
    // `v`, so this query carries 8 tokens and the duplication bites.
    assert_attack_caught(7, Query::less_than(255), |mut resp| {
        if resp.entries.len() >= 2 {
            // Answer token 0 twice, never answer the last token.
            let dup = resp.entries[0].clone();
            let last = resp.entries.len() - 1;
            resp.entries[last] = slicer_chain::VerifyEntry {
                token_idx: 0,
                ..dup
            };
        }
        resp
    });
}

#[test]
fn bitflipped_ciphertext_fails() {
    assert_attack_caught(8, Query::less_than(128), |mut resp| {
        for e in &mut resp.entries {
            if let Some(er) = e.er.first_mut() {
                er[0] ^= 0x01;
                break;
            }
        }
        resp
    });
}

#[test]
fn stale_cloud_fails_freshness() {
    // The cloud skips ingesting the owner's newest insert; the user's
    // fresh token (new trapdoor, new j) produces a state the stale cloud
    // cannot prove — data freshness without contacting the owner.
    let mut sys = system(9);
    // Insert but sabotage the cloud's copy: capture the honest response
    // first, then re-run after dropping the cloud's view.
    let probe = 42u64;
    sys.insert(&[(RecordId::from_u64(50_000), probe)])
        .expect("fits domain");

    // Remove the cloud's knowledge of the latest generation by rebuilding
    // a stale cloud from scratch: easiest faithful simulation is to tamper
    // the response so the new-generation record is missing, which is
    // byte-wise what a stale cloud would return.
    let (_, user, cloud) = sys.instance().addresses();
    let u0 = sys.chain().balance(&user);
    let c0 = sys.chain().balance(&cloud);
    let out = sys
        .search_with(&Query::equal(probe), 500, |mut resp| {
            // Drop the results that belong to the newest generation (the
            // freshly inserted record is the last one recovered in the
            // newest-first walk... drop the first recovered result).
            for e in &mut resp.entries {
                if !e.er.is_empty() {
                    e.er.remove(0);
                    break;
                }
            }
            resp
        })
        .expect("workflow runs");
    assert!(!out.verified, "stale result set must fail");
    assert_eq!(sys.chain().balance(&user), u0);
    assert_eq!(sys.chain().balance(&cloud), c0);
}

#[test]
fn unregistered_request_submission_reverts() {
    // Submitting results for a request id that was never registered
    // reverts at the contract.
    use slicer_chain::{Address, SlicerCall, Transaction};
    let mut sys = system(10);
    let contract = sys.instance().contract_address();
    let attacker = Address::from_byte(0xEE);
    sys.chain_mut().create_account(attacker, 1_000_000);
    let call = SlicerCall::SubmitResult {
        request_id: [0xEE; 32],
        entries: vec![],
    };
    let receipt = sys
        .chain_mut()
        .send_transaction(Transaction::call(attacker, contract, 0, call.encode()))
        .expect("well-formed transaction");
    assert!(
        matches!(receipt.status, slicer_chain::TxStatus::Reverted(ref r) if r.contains("unknown request")),
        "got {:?}",
        receipt.status
    );
}

#[test]
fn third_party_cannot_claim_anothers_request() {
    // Register a request honestly, then have an attacker (not the named
    // cloud) try to submit and claim the escrow: unauthorized.
    use slicer_chain::{Address, SlicerCall, Transaction};
    let mut sys = system(11);
    let contract = sys.instance().contract_address();
    let (_, user, _) = sys.instance().addresses();

    // Register a request directly so it stays unsettled.
    let tokens = sys.instance().user.tokens_for(&Query::less_than(100));
    let width = 64;
    let call = SlicerCall::RequestSearch {
        request_id: [0xAB; 32],
        cloud: sys.instance().addresses().2,
        tokens: tokens.iter().map(|t| t.to_chain(width)).collect(),
    };
    let r = sys
        .chain_mut()
        .send_transaction(Transaction::call(user, contract, 500, call.encode()))
        .expect("request accepted");
    assert!(r.status.is_success());

    let attacker = Address::from_byte(0xEE);
    sys.chain_mut().create_account(attacker, 1_000_000);
    let submit = SlicerCall::SubmitResult {
        request_id: [0xAB; 32],
        entries: vec![],
    };
    let receipt = sys
        .chain_mut()
        .send_transaction(Transaction::call(attacker, contract, 0, submit.encode()))
        .expect("well-formed transaction");
    assert!(
        matches!(receipt.status, slicer_chain::TxStatus::Reverted(ref r) if r.contains("not authorized")),
        "got {:?}",
        receipt.status
    );
}

#[test]
fn only_owner_updates_accumulator() {
    use slicer_chain::{Address, SlicerCall, Transaction};
    let mut sys = system(12);
    let contract = sys.instance().contract_address();
    let attacker = Address::from_byte(0xDD);
    sys.chain_mut().create_account(attacker, 1_000_000);
    let call = SlicerCall::SetAccumulator(vec![0x11; 64]);
    let receipt = sys
        .chain_mut()
        .send_transaction(Transaction::call(attacker, contract, 0, call.encode()))
        .expect("well-formed transaction");
    assert!(
        matches!(receipt.status, slicer_chain::TxStatus::Reverted(ref r) if r.contains("not authorized")),
        "got {:?}",
        receipt.status
    );
    // And the stored digest is untouched: an honest search still passes.
    let out = sys.search(&Query::less_than(100), 10).expect("workflow");
    assert!(out.verified);
}
