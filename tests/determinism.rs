//! Reproducibility: the whole deployment is a pure function of
//! `(config, seed)`. Two same-seed runs must agree byte-for-byte on every
//! protocol artifact — build outputs, accumulator digests, search tokens,
//! owner state and the on-chain transcript. This is what makes every other
//! test in the repo replayable from a printed seed.

use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_store::codec::to_bytes;

fn db(n: u64) -> Vec<(RecordId, u64)> {
    (0..n)
        .map(|i| (RecordId::from_u64(i), (i * 37 + 11) % 256))
        .collect()
}

fn run_lifecycle(seed: u64) -> SlicerSystem {
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), seed);
    sys.build(&db(24)).expect("in-domain build");
    sys.insert(&[(RecordId::from_u64(500), 42), (RecordId::from_u64(501), 7)])
        .expect("in-domain insert");
    sys.search(&Query::less_than(100), 10).expect("search runs");
    sys.search(&Query::equal(42), 10).expect("search runs");
    sys
}

#[test]
fn same_seed_same_build_output() {
    let mut a = SlicerSystem::setup(SlicerConfig::test_8bit(), 0xD5EED);
    let mut b = SlicerSystem::setup(SlicerConfig::test_8bit(), 0xD5EED);
    let out_a = a.instance_mut().owner.build(&db(24)).expect("in-domain");
    let out_b = b.instance_mut().owner.build(&db(24)).expect("in-domain");
    assert_eq!(
        to_bytes(&out_a).expect("encodes"),
        to_bytes(&out_b).expect("encodes"),
        "same-seed builds must serialize identically"
    );
}

#[test]
fn same_seed_same_digest_and_owner_state() {
    let a = run_lifecycle(0xD5EED);
    let b = run_lifecycle(0xD5EED);
    assert_eq!(
        a.instance().owner.accumulator().to_bytes_be(),
        b.instance().owner.accumulator().to_bytes_be(),
        "accumulator digests diverged"
    );
    assert_eq!(
        to_bytes(a.instance().owner.state()).expect("encodes"),
        to_bytes(b.instance().owner.state()).expect("encodes"),
        "owner state (trapdoors + set hashes) diverged"
    );
}

#[test]
fn same_seed_same_search_tokens() {
    let a = run_lifecycle(0xD5EED);
    let b = run_lifecycle(0xD5EED);
    for q in [
        Query::equal(42),
        Query::less_than(100),
        Query::greater_than(13),
    ] {
        let ta = a.instance().owner.search_tokens(&q);
        let tb = b.instance().owner.search_tokens(&q);
        assert_eq!(
            to_bytes(&ta).expect("encodes"),
            to_bytes(&tb).expect("encodes"),
            "tokens diverged for {q:?}"
        );
    }
}

#[test]
fn same_seed_same_chain_transcript() {
    let a = run_lifecycle(0xD5EED);
    let b = run_lifecycle(0xD5EED);
    assert_eq!(a.chain().height(), b.chain().height());
    for (block_a, block_b) in a.chain().blocks().iter().zip(b.chain().blocks()) {
        assert_eq!(
            to_bytes(block_a).expect("encodes"),
            to_bytes(block_b).expect("encodes"),
            "block {} diverged between same-seed runs",
            block_a.number
        );
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the equality above is not vacuous: a different
    // seed must produce different key material and a different transcript.
    let a = run_lifecycle(0xD5EED);
    let b = run_lifecycle(0xD5EED + 1);
    assert_ne!(
        a.instance().owner.accumulator().to_bytes_be(),
        b.instance().owner.accumulator().to_bytes_be(),
        "different seeds should not collide"
    );
}

#[test]
fn pool_size_does_not_change_any_transcript() {
    // The deterministic pool's contract: worker count is a pure throughput
    // knob. Protocol artifacts (chain blocks, owner state, accumulator)
    // AND the telemetry transcript must be byte-identical whether the
    // fan-out runs inline, on two workers, or on eight.
    use slicer_telemetry::{LogicalClock, MemorySink, TelemetryHandle};
    use std::sync::Arc;

    let run = |workers: usize| {
        let sink = Arc::new(MemorySink::new());
        let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
        let cfg = SlicerConfig::test_8bit().with_workers(workers);
        let mut sys = SlicerSystem::setup_with(cfg, 0xD5EED, handle);
        sys.build(&db(24)).expect("in-domain build");
        sys.insert(&[(RecordId::from_u64(500), 42), (RecordId::from_u64(501), 7)])
            .expect("in-domain insert");
        sys.search(&Query::less_than(100), 10).expect("search runs");
        sys.search(&Query::equal(42), 10).expect("search runs");
        let chain: Vec<Vec<u8>> = sys
            .chain()
            .blocks()
            .iter()
            .map(|b| to_bytes(b).expect("encodes"))
            .collect();
        let state = to_bytes(sys.instance().owner.state()).expect("encodes");
        let acc = sys.instance().owner.accumulator().to_bytes_be();
        (chain, state, acc, sink.transcript())
    };

    let base = run(1);
    for workers in [2usize, 8] {
        let got = run(workers);
        assert_eq!(
            base.0, got.0,
            "chain transcript diverged at pool size {workers}"
        );
        assert_eq!(base.1, got.1, "owner state diverged at pool size {workers}");
        assert_eq!(
            base.2, got.2,
            "accumulator digest diverged at pool size {workers}"
        );
        assert_eq!(
            base.3, got.3,
            "telemetry transcript diverged at pool size {workers}"
        );
    }
    assert!(
        base.3.contains("\"name\":\"par.map\""),
        "the pool's own span must appear in the transcript it keeps stable"
    );
}

#[test]
fn telemetry_does_not_perturb_the_transcript() {
    // Telemetry enabled (logical clock + in-memory sink) must be purely
    // observational: the protocol transcript of a telemetry-enabled run is
    // byte-identical to a plain same-seed run, and two telemetry-enabled
    // runs also agree on the telemetry transcript itself.
    use slicer_telemetry::{LogicalClock, MemorySink, TelemetryHandle};
    use std::sync::Arc;

    let instrumented = |seed: u64| {
        let sink = Arc::new(MemorySink::new());
        let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
        let mut sys = SlicerSystem::setup_with(SlicerConfig::test_8bit(), seed, handle);
        sys.build(&db(24)).expect("in-domain build");
        sys.insert(&[(RecordId::from_u64(500), 42), (RecordId::from_u64(501), 7)])
            .expect("in-domain insert");
        sys.search(&Query::less_than(100), 10).expect("search runs");
        sys.search(&Query::equal(42), 10).expect("search runs");
        (sys, sink)
    };

    let plain = run_lifecycle(0xD5EED);
    let (with_telemetry, sink_a) = instrumented(0xD5EED);
    let (_again, sink_b) = instrumented(0xD5EED);

    assert_eq!(plain.chain().height(), with_telemetry.chain().height());
    for (block_p, block_t) in plain
        .chain()
        .blocks()
        .iter()
        .zip(with_telemetry.chain().blocks())
    {
        assert_eq!(
            to_bytes(block_p).expect("encodes"),
            to_bytes(block_t).expect("encodes"),
            "telemetry changed block {} of the chain transcript",
            block_p.number
        );
    }
    assert_eq!(
        to_bytes(plain.instance().owner.state()).expect("encodes"),
        to_bytes(with_telemetry.instance().owner.state()).expect("encodes"),
        "telemetry changed the owner state"
    );

    assert!(!sink_a.is_empty(), "spans and counters reached the sink");
    let transcript = sink_a.transcript();
    assert_eq!(
        transcript,
        sink_b.transcript(),
        "same-seed telemetry transcripts must be byte-identical"
    );
    // The byte-equality above covers span ids, parent links and attributes
    // — but only if they are actually present. Pin the causal-trace
    // surface so the assertion cannot go vacuous.
    for needle in [
        "\"type\":\"span_start\"",
        "\"name\":\"protocol.search\"",
        "\"name\":\"phase.build\"",
        "\"trace\":",
        "\"parent\":",
        "\"token.fp\":",
    ] {
        assert!(
            transcript.contains(needle),
            "trace transcript lost its {needle} surface"
        );
    }
}

#[test]
fn structured_log_transcript_is_seed_deterministic() {
    // The operations plane rides the same determinism contract as spans:
    // under a LogicalClock, the JSON-lines structured-log transcript of a
    // same-seed lifecycle is byte-identical across runs AND across pool
    // sizes — phase-completion logs carry only deterministic fields
    // (counts and gas, never wall time).
    use slicer_telemetry::{LogicalClock, MemoryLogSink, NullSink, TelemetryHandle};
    use std::sync::Arc;

    let run = |workers: usize| {
        let ring = Arc::new(MemoryLogSink::with_capacity(1024));
        let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), Arc::new(NullSink));
        handle.add_log_sink(ring.clone() as _);
        let cfg = SlicerConfig::test_8bit().with_workers(workers);
        let mut sys = SlicerSystem::setup_with(cfg, 0xD5EED, handle);
        sys.build(&db(24)).expect("in-domain build");
        sys.insert(&[(RecordId::from_u64(500), 42), (RecordId::from_u64(501), 7)])
            .expect("in-domain insert");
        sys.search(&Query::less_than(100), 10).expect("search runs");
        sys.search(&Query::equal(42), 10).expect("search runs");
        ring.transcript()
    };

    let base = run(1);
    assert_eq!(base, run(1), "same-seed log transcripts diverged");
    for workers in [2usize, 8] {
        assert_eq!(
            base,
            run(workers),
            "log transcript diverged at pool size {workers}"
        );
    }
    // Pin the surface so the byte-equality cannot go vacuous: every
    // lifecycle phase logs completion with its deterministic fields.
    for needle in [
        "\"target\":\"slicer.setup\"",
        "\"target\":\"slicer.build\"",
        "\"target\":\"slicer.search\"",
        "\"entries\":",
        "\"gas.used\":",
        "\"verified\":true",
    ] {
        assert!(
            base.contains(needle),
            "log transcript lost {needle}: {base}"
        );
    }
    // And every line is RFC 8259-valid JSON.
    for line in base.lines() {
        slicer_telemetry::json::parse(line).expect("valid JSON log line");
    }
}

#[test]
fn owner_state_transcript_digest_is_pinned() {
    // Regression pin for the BTreeMap migration: owner state (`T` + `S`),
    // the encrypted index and the chain transcript are all encoded from
    // ordered maps, so their bytes are a pure function of `(config, seed)`
    // — pin the digest so any future change to map iteration order, the
    // codec, or the protocol's insertion bookkeeping surfaces here as an
    // explicit re-pin rather than silent drift.
    let sys = run_lifecycle(0xD5EED);
    let mut material = to_bytes(sys.instance().owner.state()).expect("encodes");
    for block in sys.chain().blocks() {
        material.extend_from_slice(&to_bytes(block).expect("encodes"));
    }
    let digest = slicer_crypto::sha256(&material);
    let hex: String = digest.iter().map(|b| format!("{b:02x}")).collect();
    assert_eq!(
        hex, PINNED_TRANSCRIPT_DIGEST,
        "owner-state/chain transcript drifted; if the codec or protocol \
         changed intentionally, re-pin this digest"
    );
}

/// SHA-256 of `encode(owner_state) ‖ encode(block_0) ‖ …` for the
/// `run_lifecycle(0xD5EED)` deployment above.
const PINNED_TRANSCRIPT_DIGEST: &str =
    "a73f4013df4be33f976d336a0c74b554b5cbe68cd0bfdbaaecf842afcaa363fd";

#[test]
fn dual_delete_reinsert_transcript_is_seed_deterministic() {
    // Regression pin for the dual-instance hash-iteration bug: the
    // delete/re-insert bookkeeping used to walk `HashMap`s, so two
    // same-seed runs could emit tokens (and therefore chain
    // transactions) in different orders. The fixed implementation keeps
    // ordered maps; this pins the whole delete+re-insert lifecycle to a
    // byte-identical chain transcript.
    use slicer_core::DualSlicer;

    let lifecycle = |seed: u64| {
        let mut dual = DualSlicer::setup(SlicerConfig::test_8bit(), seed);
        let db: Vec<(RecordId, u64)> = (0..16)
            .map(|i| (RecordId::from_u64(i), (i * 13 + 5) % 256))
            .collect();
        dual.insert(&db).expect("insert");
        for id in [3u64, 7, 11] {
            dual.delete(RecordId::from_u64(id)).expect("delete");
        }
        // Re-insert two deleted ids with new values, update a survivor.
        dual.insert(&[(RecordId::from_u64(3), 99), (RecordId::from_u64(7), 100)])
            .expect("re-insert");
        dual.update(RecordId::from_u64(1), 42).expect("update");
        let results = dual
            .search(&Query::less_than(128), 10)
            .expect("search")
            .records
            .iter()
            .filter_map(RecordId::as_u64)
            .collect::<Vec<u64>>();
        let blocks = dual
            .chain()
            .blocks()
            .iter()
            .map(|b| to_bytes(b).expect("encodes"))
            .collect::<Vec<Vec<u8>>>();
        (results, blocks)
    };

    let (results_a, blocks_a) = lifecycle(0xD0A1);
    let (results_b, blocks_b) = lifecycle(0xD0A1);
    assert_eq!(
        results_a, results_b,
        "same-seed dual runs must return identical results in order"
    );
    assert_eq!(
        blocks_a.len(),
        blocks_b.len(),
        "same-seed dual runs must agree on chain height"
    );
    for (i, (block_a, block_b)) in blocks_a.iter().zip(&blocks_b).enumerate() {
        assert_eq!(
            block_a, block_b,
            "dual delete/re-insert transcript diverged at block {i}"
        );
    }
}
