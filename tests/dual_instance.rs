//! Dual-instance deletion/update (Section V-F) under longer, randomized
//! lifecycles, checked against a live plaintext model.

use slicer_core::{DualSlicer, Query, RecordId, SlicerConfig};
use slicer_crypto::Rng;
use slicer_workload::splitmix_stream;
use std::collections::HashMap;

fn ids(records: &[RecordId]) -> Vec<u64> {
    let mut v: Vec<u64> = records.iter().map(|r| r.as_u64().unwrap()).collect();
    v.sort_unstable();
    v
}

fn oracle(model: &HashMap<u64, u64>, q: &Query) -> Vec<u64> {
    let mut v: Vec<u64> = model
        .iter()
        .filter(|(_, &val)| q.matches(val))
        .map(|(&id, _)| id)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn randomized_lifecycle_matches_model() {
    let mut dual = DualSlicer::setup(SlicerConfig::test_8bit(), 50);
    let mut model: HashMap<u64, u64> = HashMap::new();
    let mut rng = splitmix_stream(123);
    let mut next_id = 0u64;

    for step in 0..40 {
        match rng.next_u64() % 10 {
            // 60%: insert
            0..=5 => {
                let v = rng.next_u64() % 256;
                dual.insert(&[(RecordId::from_u64(next_id), v)]).unwrap();
                model.insert(next_id, v);
                next_id += 1;
            }
            // 20%: delete a random live record
            6..=7 if !model.is_empty() => {
                let keys: Vec<u64> = model.keys().copied().collect();
                let id = keys[(rng.next_u64() % keys.len() as u64) as usize];
                dual.delete(RecordId::from_u64(id)).unwrap();
                model.remove(&id);
            }
            // 20%: update a random live record
            _ if !model.is_empty() => {
                let keys: Vec<u64> = model.keys().copied().collect();
                let id = keys[(rng.next_u64() % keys.len() as u64) as usize];
                let v = rng.next_u64() % 256;
                dual.update(RecordId::from_u64(id), v).unwrap();
                model.insert(id, v);
            }
            _ => {}
        }

        // Periodic verified check.
        if step % 10 == 9 {
            let q = Query::less_than(128);
            let out = dual.search(&q, 10).unwrap();
            assert!(out.verified, "step {step}");
            assert_eq!(ids(&out.records), oracle(&model, &q), "step {step}");
        }
    }
    assert_eq!(dual.live_count(), model.len());
}

#[test]
fn delete_everything_yields_empty_results() {
    let mut dual = DualSlicer::setup(SlicerConfig::test_8bit(), 51);
    let records: Vec<(RecordId, u64)> = (0u64..10)
        .map(|i| (RecordId::from_u64(i), i * 20 % 256))
        .collect();
    dual.insert(&records).unwrap();
    for (id, _) in &records {
        dual.delete(*id).unwrap();
    }
    let out = dual.search(&Query::less_than(255), 10).unwrap();
    assert!(out.verified);
    assert!(out.records.is_empty());
    assert_eq!(dual.live_count(), 0);
}

#[test]
fn repeated_update_cycles() {
    let mut dual = DualSlicer::setup(SlicerConfig::test_8bit(), 52);
    dual.insert(&[(RecordId::from_u64(1), 10)]).unwrap();
    // Bounce the value around several times, including back to a previous
    // value (multiset semantics must hold up).
    for v in [20u64, 30, 20, 10, 99] {
        dual.update(RecordId::from_u64(1), v).unwrap();
    }
    let high = dual.search(&Query::greater_than(50), 10).unwrap();
    assert!(high.verified);
    assert_eq!(ids(&high.records), vec![1]);
    let low = dual.search(&Query::less_than(50), 10).unwrap();
    assert!(low.verified);
    assert!(low.records.is_empty(), "only the final value 99 is live");
}

#[test]
fn equality_queries_respect_deletions() {
    let mut dual = DualSlicer::setup(SlicerConfig::test_8bit(), 53);
    dual.insert(&[
        (RecordId::from_u64(1), 42),
        (RecordId::from_u64(2), 42),
        (RecordId::from_u64(3), 42),
    ])
    .unwrap();
    dual.delete(RecordId::from_u64(2)).unwrap();
    let out = dual.search(&Query::equal(42), 10).unwrap();
    assert!(out.verified);
    assert_eq!(ids(&out.records), vec![1, 3]);
}
