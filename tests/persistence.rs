//! Persistence: cloud state and protocol messages survive a serialize /
//! deserialize round trip through the in-tree binary codec, a restored
//! cloud keeps serving verifiable results, and the on-disk segment store
//! recovers from torn writes — truncated segments, flipped checksum
//! bytes, deleted manifests — by falling back to the last *sealed*
//! generation.

use slicer_chain::Blockchain;
use slicer_core::{
    BuildOutput, CloudServer, DataOwner, Query, RecordId, SlicerConfig, SlicerInstance,
};
use slicer_persist::{PersistError, SegmentStore, Snapshot};
use slicer_store::codec::{from_bytes, to_bytes};
use slicer_store::CloudState;
use slicer_telemetry::TelemetryHandle;
use std::path::PathBuf;

fn owner_with_data() -> (DataOwner, BuildOutput) {
    let mut owner = DataOwner::new(SlicerConfig::test_8bit(), 61);
    let db: Vec<(RecordId, u64)> = (0..40u64)
        .map(|i| (RecordId::from_u64(i), (i * 11) % 256))
        .collect();
    let out = owner.build(&db).unwrap();
    (owner, out)
}

#[test]
fn build_output_roundtrips() {
    let (_, out) = owner_with_data();
    let bytes = to_bytes(&out).expect("encodes");
    let back: BuildOutput = from_bytes(&bytes).expect("decodes");
    assert_eq!(back.entries, out.entries);
    assert_eq!(back.primes, out.primes);
    assert_eq!(back.accumulator, out.accumulator);
}

#[test]
fn restored_cloud_serves_verifiable_results() {
    let (owner, out) = owner_with_data();
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).unwrap();

    // Persist, "crash", restore.
    let bytes = to_bytes(cloud.storage()).expect("encodes");
    let state: CloudState = from_bytes(&bytes).expect("decodes");
    let mut restored = CloudServer::from_state(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
        state,
    );

    let tokens = owner.search_tokens(&Query::less_than(100));
    let resp = restored.respond(&tokens).unwrap();
    let params = &owner.config().accumulator;
    let acc = slicer_accumulator::Accumulator::from_value(params, owner.accumulator().clone());
    assert!(!resp.entries.is_empty());
    for (entry, result) in resp.entries.iter().zip(&resp.results) {
        let x = restored.prime_for(result).unwrap();
        let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
        assert!(acc.verify(&x, &w), "restored cloud proves correctly");
    }
}

#[test]
fn restored_cloud_accepts_further_inserts() {
    let (mut owner, out) = owner_with_data();
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).unwrap();
    let bytes = to_bytes(cloud.storage()).expect("encodes");
    let state: CloudState = from_bytes(&bytes).expect("decodes");
    let mut restored = CloudServer::from_state(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
        state,
    );

    let delta = owner.insert(&[(RecordId::from_u64(500), 11)]).unwrap();
    restored.ingest(&delta).unwrap();
    let tokens = owner.search_tokens(&Query::equal(11));
    let results = restored.search(&tokens);
    let total: usize = results.iter().map(|r| r.er.len()).sum();
    // Value 11 appears for i=1 (11) plus the insert.
    assert_eq!(total, 2);
}

#[test]
fn search_token_and_query_roundtrip() {
    let (owner, _) = owner_with_data();
    let tokens = owner.search_tokens(&Query::less_than(77));
    let bytes = to_bytes(&tokens).expect("encodes");
    let back: Vec<slicer_core::SearchToken> = from_bytes(&bytes).expect("decodes");
    assert_eq!(back, tokens);

    let q = Query::greater_than(5).on_attr("age");
    let back_q: Query = from_bytes(&to_bytes(&q).expect("enc")).expect("dec");
    assert_eq!(back_q, q);
}

// ---------------------------------------------------------------------------
// Segment-store crash recovery
// ---------------------------------------------------------------------------

fn store_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slicer-persist-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Builds a live instance, commits generation 1 (3 records) and
/// generation 2 (one more record), and returns everything the recovery
/// tests need.
fn two_generations(dir: &PathBuf) -> (SlicerInstance, Blockchain, SegmentStore, Vec<u8>, Vec<u8>) {
    let seed = 61;
    let mut chain = Blockchain::new();
    let mut instance = SlicerInstance::try_setup_with(
        SlicerConfig::test_8bit(),
        seed,
        &mut chain,
        TelemetryHandle::disabled(),
    )
    .expect("setup");
    let store = SegmentStore::open(dir).expect("open store");

    instance
        .insert(
            &mut chain,
            &[
                (RecordId::from_u64(1), 10),
                (RecordId::from_u64(2), 20),
                (RecordId::from_u64(3), 30),
            ],
        )
        .expect("insert gen 1");
    let snap1 = Snapshot::capture(seed, &instance.owner, &instance.cloud);
    let digest1 = snap1.accumulator_digest();
    assert_eq!(store.commit(&snap1).expect("commit gen 1"), 1);

    instance
        .insert(&mut chain, &[(RecordId::from_u64(4), 40)])
        .expect("insert gen 2");
    let snap2 = Snapshot::capture(seed, &instance.owner, &instance.cloud);
    let digest2 = snap2.accumulator_digest();
    assert_eq!(store.commit(&snap2).expect("commit gen 2"), 2);

    assert_ne!(digest1, digest2, "the two generations must differ");
    (instance, chain, store, digest1, digest2)
}

/// The files of one generation, newest-largest-first.
fn generation_files(dir: &PathBuf, generation: u64) -> Vec<PathBuf> {
    let tag = format!("-{generation:010}");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("readdir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(&tag) && n.starts_with("seg-"))
        })
        .collect();
    files.sort();
    files
}

#[test]
fn load_returns_the_latest_sealed_generation() {
    let dir = store_dir("latest");
    let (_, _, store, _, digest2) = two_generations(&dir);
    let (generation, snapshot) = store.load().expect("load").expect("non-empty");
    assert_eq!(generation, 2);
    assert_eq!(snapshot.accumulator_digest(), digest2);
    assert!(!snapshot.cloud.index.is_empty());
}

#[test]
fn truncated_segment_falls_back_to_previous_generation() {
    let dir = store_dir("trunc");
    let (_, _, store, digest1, _) = two_generations(&dir);

    // Tear the largest gen-2 segment mid-file, as an interrupted write
    // would.
    let files = generation_files(&dir, 2);
    let victim = files.last().expect("gen-2 has segments");
    let bytes = std::fs::read(victim).expect("read victim");
    std::fs::write(victim, &bytes[..bytes.len() / 2]).expect("truncate victim");

    let (generation, snapshot) = store.load().expect("load").expect("gen 1 survives");
    assert_eq!(generation, 1, "recovery must fall back to the sealed gen");
    assert_eq!(snapshot.accumulator_digest(), digest1);
}

#[test]
fn flipped_checksum_byte_falls_back_to_previous_generation() {
    let dir = store_dir("flip");
    let (_, _, store, digest1, _) = two_generations(&dir);

    let files = generation_files(&dir, 2);
    let victim = files.first().expect("gen-2 has segments");
    let mut bytes = std::fs::read(victim).expect("read victim");
    // Flip one bit past the magic header: lands in a frame length,
    // payload or checksum — all of which must be caught.
    let idx = bytes.len() - 1;
    bytes[idx] ^= 0x40;
    std::fs::write(victim, &bytes).expect("corrupt victim");

    let (generation, snapshot) = store.load().expect("load").expect("gen 1 survives");
    assert_eq!(generation, 1);
    assert_eq!(snapshot.accumulator_digest(), digest1);
}

#[test]
fn deleted_manifest_falls_back_to_previous_generation() {
    let dir = store_dir("nomanifest");
    let (_, _, store, digest1, _) = two_generations(&dir);

    std::fs::remove_file(dir.join("manifest-0000000002.slc")).expect("delete manifest");

    let (generation, snapshot) = store.load().expect("load").expect("gen 1 survives");
    assert_eq!(generation, 1);
    assert_eq!(snapshot.accumulator_digest(), digest1);
}

#[test]
fn every_generation_corrupt_is_a_typed_error_listing_attempts() {
    let dir = store_dir("allgone");
    let (_, _, store, _, _) = two_generations(&dir);

    for generation in [1u64, 2] {
        for file in generation_files(&dir, generation) {
            let bytes = std::fs::read(&file).expect("read");
            std::fs::write(&file, &bytes[..bytes.len().saturating_sub(7)]).expect("tear");
        }
    }

    let err = store.load().expect_err("nothing sealed remains");
    let PersistError::NoSealedGeneration { attempts, .. } = err else {
        panic!("want NoSealedGeneration, got {err}");
    };
    assert!(
        attempts.len() >= 2,
        "both failed generations are reported: {attempts:?}"
    );
}

#[test]
fn restored_instance_serves_verifiable_search_on_fresh_chain() {
    let dir = store_dir("restore");
    let (instance, _, store, _, digest2) = two_generations(&dir);
    let expected_entries = instance.cloud.storage().index.len();
    drop(instance); // "crash": no clean shutdown, state lives on disk only

    let (generation, snapshot) = store.load().expect("load").expect("sealed");
    assert_eq!(generation, 2);

    let mut chain = Blockchain::new();
    let config = snapshot.meta.config_with_workers(1);
    let seed = snapshot.meta.seed;
    let mut restored = SlicerInstance::try_restore_with(
        config,
        seed,
        &mut chain,
        TelemetryHandle::disabled(),
        snapshot.owner.clone(),
        snapshot.accumulator.clone(),
        snapshot.cloud.clone(),
    )
    .expect("restore");

    // Byte-identical digest, identical index size — restored, not rebuilt.
    let width = restored.owner.config().accumulator.element_bytes();
    assert_eq!(
        restored.owner.accumulator().to_bytes_be_padded(width),
        digest2
    );
    assert_eq!(restored.cloud.storage().index.len(), expected_entries);

    // And the restored deployment serves a *verifiable* search end to end
    // against the republished on-chain digest.
    let outcome = restored
        .search(&mut chain, &Query::less_than(25), 1_000)
        .expect("search");
    assert!(outcome.verified, "restored state must verify on-chain");
    let mut ids: Vec<u64> = outcome
        .records
        .iter()
        .filter_map(RecordId::as_u64)
        .collect();
    ids.sort_unstable();
    assert_eq!(ids, vec![1, 2]);
    assert!(chain.verify_chain());
}
