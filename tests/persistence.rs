//! Persistence: cloud state and protocol messages survive a serialize /
//! deserialize round trip through the in-tree binary codec, and a restored
//! cloud keeps serving verifiable results.

use slicer_core::{BuildOutput, CloudServer, DataOwner, Query, RecordId, SlicerConfig};
use slicer_store::codec::{from_bytes, to_bytes};
use slicer_store::CloudState;

fn owner_with_data() -> (DataOwner, BuildOutput) {
    let mut owner = DataOwner::new(SlicerConfig::test_8bit(), 61);
    let db: Vec<(RecordId, u64)> = (0..40u64)
        .map(|i| (RecordId::from_u64(i), (i * 11) % 256))
        .collect();
    let out = owner.build(&db).unwrap();
    (owner, out)
}

#[test]
fn build_output_roundtrips() {
    let (_, out) = owner_with_data();
    let bytes = to_bytes(&out).expect("encodes");
    let back: BuildOutput = from_bytes(&bytes).expect("decodes");
    assert_eq!(back.entries, out.entries);
    assert_eq!(back.primes, out.primes);
    assert_eq!(back.accumulator, out.accumulator);
}

#[test]
fn restored_cloud_serves_verifiable_results() {
    let (owner, out) = owner_with_data();
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).unwrap();

    // Persist, "crash", restore.
    let bytes = to_bytes(cloud.storage()).expect("encodes");
    let state: CloudState = from_bytes(&bytes).expect("decodes");
    let mut restored = CloudServer::from_state(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
        state,
    );

    let tokens = owner.search_tokens(&Query::less_than(100));
    let resp = restored.respond(&tokens).unwrap();
    let params = &owner.config().accumulator;
    let acc = slicer_accumulator::Accumulator::from_value(params, owner.accumulator().clone());
    assert!(!resp.entries.is_empty());
    for (entry, result) in resp.entries.iter().zip(&resp.results) {
        let x = restored.prime_for(result);
        let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
        assert!(acc.verify(&x, &w), "restored cloud proves correctly");
    }
}

#[test]
fn restored_cloud_accepts_further_inserts() {
    let (mut owner, out) = owner_with_data();
    let mut cloud = CloudServer::new(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
    );
    cloud.ingest(&out).unwrap();
    let bytes = to_bytes(cloud.storage()).expect("encodes");
    let state: CloudState = from_bytes(&bytes).expect("decodes");
    let mut restored = CloudServer::from_state(
        owner.config().clone(),
        owner.keys().trapdoor().public().clone(),
        state,
    );

    let delta = owner.insert(&[(RecordId::from_u64(500), 11)]).unwrap();
    restored.ingest(&delta).unwrap();
    let tokens = owner.search_tokens(&Query::equal(11));
    let results = restored.search(&tokens);
    let total: usize = results.iter().map(|r| r.er.len()).sum();
    // Value 11 appears for i=1 (11) plus the insert.
    assert_eq!(total, 2);
}

#[test]
fn search_token_and_query_roundtrip() {
    let (owner, _) = owner_with_data();
    let tokens = owner.search_tokens(&Query::less_than(77));
    let bytes = to_bytes(&tokens).expect("encodes");
    let back: Vec<slicer_core::SearchToken> = from_bytes(&bytes).expect("decodes");
    assert_eq!(back, tokens);

    let q = Query::greater_than(5).on_attr("age");
    let back_q: Query = from_bytes(&to_bytes(&q).expect("enc")).expect("dec");
    assert_eq!(back_q, q);
}
