//! Adversarial chain-level tests: malformed calldata, gas exhaustion,
//! replay, and digest manipulation against the deployed verification
//! contract.

use slicer_chain::{
    Address, Blockchain, SlicerCall, SlicerContract, TokenOnChain, Transaction, TxStatus,
    VerifyEntry,
};
use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};

fn funded_chain_with_contract() -> (Blockchain, Address, Address) {
    let mut chain = Blockchain::new();
    let owner = Address::from_byte(1);
    chain.create_account(owner, 10_000_000);
    let out = chain
        .deploy_contract(
            owner,
            Box::new(SlicerContract::new(
                slicer_accumulator::RsaParams::fixed_512(),
                128,
                owner,
            )),
            0,
        )
        .unwrap();
    (chain, owner, out.address)
}

#[test]
fn malformed_calldata_reverts_cleanly() {
    let (mut chain, owner, contract) = funded_chain_with_contract();
    for data in [
        vec![],              // empty
        vec![0xFF],          // unknown selector
        vec![0x01, 0x00],    // truncated SetAccumulator
        vec![0x02; 10],      // truncated RequestSearch
        vec![0x03, 1, 2, 3], // truncated SubmitResult
    ] {
        let r = chain
            .send_transaction(Transaction::call(owner, contract, 0, data.clone()))
            .unwrap();
        assert!(
            matches!(r.status, TxStatus::Reverted(_)),
            "calldata {data:?} must revert"
        );
    }
    // The chain is still functional after the garbage.
    let ok = chain
        .send_transaction(Transaction::call(
            owner,
            contract,
            0,
            SlicerCall::SetAccumulator(vec![5u8; 64]).encode(),
        ))
        .unwrap();
    assert!(ok.status.is_success());
}

#[test]
fn request_id_cannot_be_reused() {
    let (mut chain, owner, contract) = funded_chain_with_contract();
    let token = TokenOnChain {
        trapdoor: vec![1u8; 64],
        j: 0,
        g1: [1; 32],
        g2: [2; 32],
    };
    let call = SlicerCall::RequestSearch {
        request_id: [7u8; 32],
        cloud: Address::from_byte(9),
        tokens: vec![token],
    };
    let first = chain
        .send_transaction(Transaction::call(owner, contract, 100, call.encode()))
        .unwrap();
    assert!(first.status.is_success());
    let second = chain
        .send_transaction(Transaction::call(owner, contract, 100, call.encode()))
        .unwrap();
    assert!(
        matches!(second.status, TxStatus::Reverted(ref r) if r.contains("already used")),
        "got {:?}",
        second.status
    );
}

#[test]
fn settled_request_cannot_be_resubmitted() {
    // A cheating cloud cannot retry after losing, nor double-claim after
    // winning: the request record is consumed at settlement.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 42);
    let db: Vec<(RecordId, u64)> = (0u64..30)
        .map(|i| (RecordId::from_u64(i), i % 256))
        .collect();
    sys.build(&db).unwrap();
    let out = sys.search(&Query::less_than(10), 100).unwrap();
    assert!(out.verified);

    // Replaying the settlement: the stored record is now "settled" and no
    // longer parses as a request → revert.
    let contract = sys.instance().contract_address();
    let (_, _, cloud_addr) = sys.instance().addresses();
    // The request id of the first search is deterministic (counter = 1).
    let call = SlicerCall::SubmitResult {
        request_id: [0u8; 32], // unknown id
        entries: vec![VerifyEntry {
            token_idx: 0,
            er: vec![],
            vo: vec![0u8; 64],
        }],
    };
    let r = sys
        .chain_mut()
        .send_transaction(Transaction::call(cloud_addr, contract, 0, call.encode()))
        .unwrap();
    assert!(matches!(r.status, TxStatus::Reverted(_)));
}

#[test]
fn verification_runs_out_of_gas_gracefully() {
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 43);
    let db: Vec<(RecordId, u64)> = (0u64..30)
        .map(|i| (RecordId::from_u64(i), i % 256))
        .collect();
    sys.build(&db).unwrap();

    // Register a request, then submit with a gas limit too small for the
    // verification's MODEXP work: the call reverts with out-of-gas, the
    // escrow stays with the contract (retriable), nothing is corrupted.
    let contract = sys.instance().contract_address();
    let (_, user, cloud) = sys.instance().addresses();
    let tokens = sys.instance().user.tokens_for(&Query::equal(5));
    assert_eq!(tokens.len(), 1);
    let call = SlicerCall::RequestSearch {
        request_id: [9u8; 32],
        cloud,
        tokens: tokens.iter().map(|t| t.to_chain(64)).collect(),
    };
    let r = sys
        .chain_mut()
        .send_transaction(Transaction::call(user, contract, 500, call.encode()))
        .unwrap();
    assert!(r.status.is_success());

    let response = sys.instance_mut().cloud.respond(&tokens).unwrap();
    let submit = SlicerCall::SubmitResult {
        request_id: [9u8; 32],
        entries: response.entries.clone(),
    };
    let mut tx = Transaction::call(cloud, contract, 0, submit.encode());
    tx.gas_limit = 30_000; // below the verification cost
    let starved = sys.chain_mut().send_transaction(tx).unwrap();
    assert!(
        matches!(starved.status, TxStatus::Reverted(ref e) if e.contains("out of gas")),
        "got {:?}",
        starved.status
    );

    // Retry with enough gas: succeeds and pays out.
    let before = sys.chain().balance(&cloud);
    let mut tx = Transaction::call(cloud, contract, 0, submit.encode());
    tx.gas_limit = 10_000_000;
    let ok = sys.chain_mut().send_transaction(tx).unwrap();
    assert!(ok.status.is_success());
    assert_eq!(ok.output, [1]);
    assert_eq!(sys.chain().balance(&cloud), before + 500);
}

#[test]
fn oversized_accumulator_value_is_stored_verbatim_but_breaks_nothing() {
    // The contract stores whatever digest the owner sets; a garbage digest
    // simply makes every verification fail (no panic, no lockup).
    let (mut chain, owner, contract) = funded_chain_with_contract();
    let r = chain
        .send_transaction(Transaction::call(
            owner,
            contract,
            0,
            SlicerCall::SetAccumulator(vec![0xFF; 200]).encode(),
        ))
        .unwrap();
    assert!(r.status.is_success());

    let token = TokenOnChain {
        trapdoor: vec![1u8; 64],
        j: 0,
        g1: [1; 32],
        g2: [2; 32],
    };
    let cloud = Address::from_byte(9);
    chain.create_account(cloud, 1_000_000);
    chain
        .send_transaction(Transaction::call(
            owner,
            contract,
            0,
            SlicerCall::RequestSearch {
                request_id: [3u8; 32],
                cloud,
                tokens: vec![token],
            }
            .encode(),
        ))
        .unwrap();
    let r = chain
        .send_transaction(Transaction::call(
            cloud,
            contract,
            0,
            SlicerCall::SubmitResult {
                request_id: [3u8; 32],
                entries: vec![VerifyEntry {
                    token_idx: 0,
                    er: vec![],
                    vo: vec![1u8; 64],
                }],
            }
            .encode(),
        ))
        .unwrap();
    assert!(r.status.is_success(), "call completes");
    assert_eq!(r.output, [0], "verification fails against garbage digest");
}

#[test]
fn receipts_and_blocks_stay_consistent_under_load() {
    let (mut chain, owner, contract) = funded_chain_with_contract();
    for i in 0..20u8 {
        let call = SlicerCall::SetAccumulator(vec![i; 64]);
        chain
            .send_transaction(Transaction::call(owner, contract, 0, call.encode()))
            .unwrap();
        if i % 3 == 0 {
            chain.seal_block();
        }
    }
    chain.seal_block();
    assert!(chain.verify_chain());
    let total: usize = chain.blocks().iter().map(|b| b.receipts.len()).sum();
    assert_eq!(total, 21, "deploy + 20 updates");
    assert_eq!(chain.logs_by_topic("AccumulatorUpdated").len(), 20);
}
