//! Multi-attribute records (Section V-F): per-attribute indexing, querying
//! and dynamic updates.

use slicer_core::{Query, Record, RecordId, SlicerConfig, SlicerSystem};

fn cohort() -> Vec<Record> {
    (0u64..60)
        .map(|i| {
            Record::with_attrs(
                RecordId::from_u64(i),
                vec![
                    ("age".into(), 20 + (i * 7) % 70),
                    ("score".into(), (i * 13) % 256),
                ],
            )
        })
        .collect()
}

fn oracle(db: &[Record], attr: &str, q: &Query) -> Vec<u64> {
    let mut v: Vec<u64> = db
        .iter()
        .filter(|r| r.attrs.iter().any(|(a, x)| a == attr && q.matches(*x)))
        .map(|r| r.id.as_u64().unwrap())
        .collect();
    v.sort_unstable();
    v
}

fn got(out: &slicer_core::SearchOutcome) -> Vec<u64> {
    let mut v: Vec<u64> = out.records.iter().map(|r| r.as_u64().unwrap()).collect();
    v.sort_unstable();
    v
}

#[test]
fn per_attribute_queries_match_oracle() {
    let db = cohort();
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 31);
    sys.build_records(&db).unwrap();
    for (attr, q) in [
        ("age", Query::less_than(40).on_attr("age")),
        ("age", Query::greater_than(60).on_attr("age")),
        ("score", Query::less_than(100).on_attr("score")),
        ("score", Query::equal(13).on_attr("score")),
    ] {
        let out = sys.search(&q, 10).unwrap();
        assert!(out.verified, "{q:?}");
        assert_eq!(got(&out), oracle(&db, attr, &q), "{q:?}");
    }
}

#[test]
fn same_value_different_attr_does_not_leak_across() {
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 32);
    let db = vec![
        Record::with_attrs(RecordId::from_u64(1), vec![("a".into(), 5)]),
        Record::with_attrs(RecordId::from_u64(2), vec![("b".into(), 5)]),
    ];
    sys.build_records(&db).unwrap();
    let out_a = sys.search(&Query::equal(5).on_attr("a"), 10).unwrap();
    assert_eq!(got(&out_a), vec![1]);
    let out_b = sys.search(&Query::equal(5).on_attr("b"), 10).unwrap();
    assert_eq!(got(&out_b), vec![2]);
    // Unindexed attribute: provably empty without touching the cloud.
    let out_c = sys.search(&Query::equal(5).on_attr("c"), 10).unwrap();
    assert!(out_c.records.is_empty() && out_c.verified);
    assert_eq!(out_c.request_gas, 0);
}

#[test]
fn multiattr_insert_flows_end_to_end() {
    let db = cohort();
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 33);
    sys.build_records(&db).unwrap();
    let newcomers: Vec<Record> = (100u64..105)
        .map(|i| {
            Record::with_attrs(
                RecordId::from_u64(i),
                vec![("age".into(), 25), ("score".into(), 250)],
            )
        })
        .collect();
    sys.insert_records(&newcomers).unwrap();

    let q = Query::greater_than(240).on_attr("score");
    let out = sys.search(&q, 10).unwrap();
    assert!(out.verified);
    let mut want = oracle(&db, "score", &q);
    want.extend(100..105);
    want.sort_unstable();
    assert_eq!(got(&out), want);
}

#[test]
fn record_with_many_attributes() {
    let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 34);
    let attrs: Vec<(String, u64)> = (0..10).map(|i| (format!("f{i}"), i * 11)).collect();
    let db = vec![Record::with_attrs(RecordId::from_u64(7), attrs)];
    sys.build_records(&db).unwrap();
    for i in 0..10u64 {
        let out = sys
            .search(&Query::equal(i * 11).on_attr(&format!("f{i}")), 5)
            .unwrap();
        assert!(out.verified);
        assert_eq!(got(&out), vec![7], "attribute f{i}");
    }
}
