//! Soak test: a longer randomized lifecycle on a single deployment —
//! interleaved inserts and verified searches at 16-bit, with the oracle
//! checked at every step and chain integrity at the end.

use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_crypto::Rng;
use slicer_workload::splitmix_stream;

#[test]
fn interleaved_16bit_lifecycle() {
    let mut sys = SlicerSystem::setup(SlicerConfig::test_16bit(), 99);
    let mut rng = splitmix_stream(2026);
    let mut model: Vec<(u64, u64)> = Vec::new();
    let mut next_id = 0u64;

    // Initial build.
    let initial: Vec<(RecordId, u64)> = (0..120)
        .map(|_| {
            let id = next_id;
            next_id += 1;
            (RecordId::from_u64(id), rng.next_u64() % 65_536)
        })
        .collect();
    model.extend(initial.iter().map(|(id, v)| (id.as_u64().unwrap(), *v)));
    sys.build(&initial).expect("16-bit domain");

    for step in 0..10 {
        // Insert a small batch.
        let batch: Vec<(RecordId, u64)> = (0..10)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                (RecordId::from_u64(id), rng.next_u64() % 65_536)
            })
            .collect();
        model.extend(batch.iter().map(|(id, v)| (id.as_u64().unwrap(), *v)));
        sys.insert(&batch).expect("16-bit domain");

        // Verified search around a random pivot drawn from the data.
        let pivot = model[(rng.next_u64() % model.len() as u64) as usize].1;
        let q = if step % 2 == 0 {
            Query::less_than(pivot)
        } else {
            Query::greater_than(pivot)
        };
        let out = sys.search(&q, 50).expect("workflow runs");
        assert!(out.verified, "step {step}");

        let mut got: Vec<u64> = out.records.iter().map(|r| r.as_u64().unwrap()).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = model
            .iter()
            .filter(|(_, v)| q.matches(*v))
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "step {step} query {q:?}");
    }

    assert!(sys.chain().verify_chain());
    // Every settlement in this run was honest: all Settled events carry 1.
    let settled = sys.chain().logs_by_topic("Settled");
    assert_eq!(settled.len(), 10);
    assert!(settled.iter().all(|l| *l.data.last().unwrap() == 1));
}
