//! Soak test: a longer randomized lifecycle on a single deployment — a
//! 1000-record initial build plus interleaved inserts and verified
//! searches at 16-bit, under a multi-worker pool, with the plaintext
//! oracle AND chain integrity checked at every step.
//!
//! The wide range queries (hundreds of matching records) push witness
//! generation down the batched root-factor path on every step, so this is
//! also the end-to-end exerciser for the product-tree membership
//! witnesses.

use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_crypto::Rng;
use slicer_workload::splitmix_stream;

#[test]
fn interleaved_16bit_lifecycle() {
    // An explicit multi-worker pool even on single-core CI boxes: the
    // deterministic fan-out must merge cross-thread results identically
    // regardless of the hardware the test lands on.
    let mut sys = SlicerSystem::setup(SlicerConfig::test_16bit().with_workers(3), 99);
    let mut rng = splitmix_stream(2026);
    let mut model: Vec<(u64, u64)> = Vec::new();
    let mut next_id = 0u64;

    // Initial build: 1000 records through the pooled build path.
    let initial: Vec<(RecordId, u64)> = (0..1000)
        .map(|_| {
            let id = next_id;
            next_id += 1;
            (RecordId::from_u64(id), rng.next_u64() % 65_536)
        })
        .collect();
    model.extend(initial.iter().map(|(id, v)| (id.as_u64().unwrap(), *v)));
    sys.build(&initial).expect("16-bit domain");

    let mut widest = 0usize;
    for step in 0..6 {
        // Insert a small batch.
        let batch: Vec<(RecordId, u64)> = (0..10)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                (RecordId::from_u64(id), rng.next_u64() % 65_536)
            })
            .collect();
        model.extend(batch.iter().map(|(id, v)| (id.as_u64().unwrap(), *v)));
        sys.insert(&batch).expect("16-bit domain");

        // Verified search around a random pivot drawn from the data.
        let pivot = model[(rng.next_u64() % model.len() as u64) as usize].1;
        let q = match step % 3 {
            0 => Query::less_than(pivot),
            1 => Query::greater_than(pivot),
            _ => Query::equal(pivot),
        };
        let out = sys.search(&q, 50).expect("workflow runs");
        assert!(out.verified, "step {step}");
        widest = widest.max(out.records.len());

        let mut got: Vec<u64> = out.records.iter().map(|r| r.as_u64().unwrap()).collect();
        got.sort_unstable();
        let mut want: Vec<u64> = model
            .iter()
            .filter(|(_, v)| q.matches(*v))
            .map(|(id, _)| *id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "step {step} query {q:?}");

        // Chain integrity after every insert + search round, not just at
        // the end: a corrupted block fails the step that broke it.
        assert!(sys.chain().verify_chain(), "chain broken after step {step}");
    }

    // At least one range query must have matched a wide swath of the 1010+
    // records — that is what routes witness generation through the batched
    // root-factor path rather than the one-at-a-time fallback.
    assert!(
        widest >= 64,
        "soak never produced a wide result set (max {widest}); batched \
         witness path not exercised"
    );

    // Every settlement in this run was honest: all Settled events carry 1.
    let settled = sys.chain().logs_by_topic("Settled");
    assert_eq!(settled.len(), 6);
    assert!(settled.iter().all(|l| *l.data.last().unwrap() == 1));
}
