/root/repo/target/debug/deps/slicer_repro-f685ca0ca1a9531e.d: src/lib.rs

/root/repo/target/debug/deps/slicer_repro-f685ca0ca1a9531e: src/lib.rs

src/lib.rs:
