/root/repo/target/debug/deps/determinism-64fb417d50d63be4.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-64fb417d50d63be4: tests/determinism.rs

tests/determinism.rs:
