/root/repo/target/debug/deps/ads_ablation-ee9c05635ef77745.d: crates/bench/benches/ads_ablation.rs

/root/repo/target/debug/deps/ads_ablation-ee9c05635ef77745: crates/bench/benches/ads_ablation.rs

crates/bench/benches/ads_ablation.rs:
