/root/repo/target/debug/deps/failure_injection-5d8a81c83d17f098.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-5d8a81c83d17f098: tests/failure_injection.rs

tests/failure_injection.rs:
