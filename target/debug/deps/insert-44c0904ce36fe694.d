/root/repo/target/debug/deps/insert-44c0904ce36fe694.d: crates/bench/benches/insert.rs

/root/repo/target/debug/deps/insert-44c0904ce36fe694: crates/bench/benches/insert.rs

crates/bench/benches/insert.rs:
