/root/repo/target/debug/deps/slicer_sore-a06f8b5d7b900316.d: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

/root/repo/target/debug/deps/slicer_sore-a06f8b5d7b900316: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

crates/sore/src/lib.rs:
crates/sore/src/baselines/mod.rs:
crates/sore/src/baselines/clww.rs:
crates/sore/src/baselines/lewi_wu.rs:
crates/sore/src/order.rs:
crates/sore/src/scheme.rs:
crates/sore/src/tuple.rs:
