/root/repo/target/debug/deps/build-7e8a816a61ca7a6a.d: crates/bench/benches/build.rs

/root/repo/target/debug/deps/build-7e8a816a61ca7a6a: crates/bench/benches/build.rs

crates/bench/benches/build.rs:
