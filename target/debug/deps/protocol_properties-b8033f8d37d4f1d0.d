/root/repo/target/debug/deps/protocol_properties-b8033f8d37d4f1d0.d: crates/core/tests/protocol_properties.rs

/root/repo/target/debug/deps/protocol_properties-b8033f8d37d4f1d0: crates/core/tests/protocol_properties.rs

crates/core/tests/protocol_properties.rs:
