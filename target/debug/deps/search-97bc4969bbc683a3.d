/root/repo/target/debug/deps/search-97bc4969bbc683a3.d: crates/bench/benches/search.rs

/root/repo/target/debug/deps/search-97bc4969bbc683a3: crates/bench/benches/search.rs

crates/bench/benches/search.rs:
