/root/repo/target/debug/deps/gas-5f15ab859cb29921.d: crates/bench/benches/gas.rs

/root/repo/target/debug/deps/gas-5f15ab859cb29921: crates/bench/benches/gas.rs

crates/bench/benches/gas.rs:
