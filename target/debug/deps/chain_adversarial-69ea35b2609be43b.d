/root/repo/target/debug/deps/chain_adversarial-69ea35b2609be43b.d: tests/chain_adversarial.rs

/root/repo/target/debug/deps/chain_adversarial-69ea35b2609be43b: tests/chain_adversarial.rs

tests/chain_adversarial.rs:
