/root/repo/target/debug/deps/dual_instance-16e2fd05fbd1a5c4.d: tests/dual_instance.rs

/root/repo/target/debug/deps/dual_instance-16e2fd05fbd1a5c4: tests/dual_instance.rs

tests/dual_instance.rs:
