/root/repo/target/debug/deps/properties-3758431bb13164ed.d: crates/mshash/tests/properties.rs

/root/repo/target/debug/deps/properties-3758431bb13164ed: crates/mshash/tests/properties.rs

crates/mshash/tests/properties.rs:
