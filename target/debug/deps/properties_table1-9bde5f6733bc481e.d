/root/repo/target/debug/deps/properties_table1-9bde5f6733bc481e.d: tests/properties_table1.rs

/root/repo/target/debug/deps/properties_table1-9bde5f6733bc481e: tests/properties_table1.rs

tests/properties_table1.rs:
