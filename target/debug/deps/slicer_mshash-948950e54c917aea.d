/root/repo/target/debug/deps/slicer_mshash-948950e54c917aea.d: crates/mshash/src/lib.rs

/root/repo/target/debug/deps/libslicer_mshash-948950e54c917aea.rlib: crates/mshash/src/lib.rs

/root/repo/target/debug/deps/libslicer_mshash-948950e54c917aea.rmeta: crates/mshash/src/lib.rs

crates/mshash/src/lib.rs:
