/root/repo/target/debug/deps/slicer_store-ece2e76e558d88db.d: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

/root/repo/target/debug/deps/slicer_store-ece2e76e558d88db: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

crates/store/src/lib.rs:
crates/store/src/codec.rs:
crates/store/src/index.rs:
crates/store/src/primes.rs:
