/root/repo/target/debug/deps/slicer_mshash-1022d03ca5eae7a0.d: crates/mshash/src/lib.rs

/root/repo/target/debug/deps/slicer_mshash-1022d03ca5eae7a0: crates/mshash/src/lib.rs

crates/mshash/src/lib.rs:
