/root/repo/target/debug/deps/stress-2c34a92de1d2d31a.d: crates/bignum/tests/stress.rs

/root/repo/target/debug/deps/stress-2c34a92de1d2d31a: crates/bignum/tests/stress.rs

crates/bignum/tests/stress.rs:
