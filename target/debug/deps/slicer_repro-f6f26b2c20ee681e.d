/root/repo/target/debug/deps/slicer_repro-f6f26b2c20ee681e.d: src/lib.rs

/root/repo/target/debug/deps/libslicer_repro-f6f26b2c20ee681e.rlib: src/lib.rs

/root/repo/target/debug/deps/libslicer_repro-f6f26b2c20ee681e.rmeta: src/lib.rs

src/lib.rs:
