/root/repo/target/debug/deps/gas_invariants-f6252fc0e0aed769.d: crates/chain/tests/gas_invariants.rs

/root/repo/target/debug/deps/gas_invariants-f6252fc0e0aed769: crates/chain/tests/gas_invariants.rs

crates/chain/tests/gas_invariants.rs:
