/root/repo/target/debug/deps/multiattr-30a275086706ec6d.d: tests/multiattr.rs

/root/repo/target/debug/deps/multiattr-30a275086706ec6d: tests/multiattr.rs

tests/multiattr.rs:
