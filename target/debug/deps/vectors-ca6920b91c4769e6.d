/root/repo/target/debug/deps/vectors-ca6920b91c4769e6.d: crates/crypto/tests/vectors.rs

/root/repo/target/debug/deps/vectors-ca6920b91c4769e6: crates/crypto/tests/vectors.rs

crates/crypto/tests/vectors.rs:
