/root/repo/target/debug/deps/ore_ablation-195f0f8b447a2241.d: crates/bench/benches/ore_ablation.rs

/root/repo/target/debug/deps/ore_ablation-195f0f8b447a2241: crates/bench/benches/ore_ablation.rs

crates/bench/benches/ore_ablation.rs:
