/root/repo/target/debug/deps/end_to_end-3e057f6bf913cb36.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-3e057f6bf913cb36: tests/end_to_end.rs

tests/end_to_end.rs:
