/root/repo/target/debug/deps/leakage_sim-7d20c55aba9f680a.d: crates/core/tests/leakage_sim.rs

/root/repo/target/debug/deps/leakage_sim-7d20c55aba9f680a: crates/core/tests/leakage_sim.rs

crates/core/tests/leakage_sim.rs:
