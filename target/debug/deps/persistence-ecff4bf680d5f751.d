/root/repo/target/debug/deps/persistence-ecff4bf680d5f751.d: tests/persistence.rs

/root/repo/target/debug/deps/persistence-ecff4bf680d5f751: tests/persistence.rs

tests/persistence.rs:
