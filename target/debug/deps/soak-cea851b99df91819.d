/root/repo/target/debug/deps/soak-cea851b99df91819.d: tests/soak.rs

/root/repo/target/debug/deps/soak-cea851b99df91819: tests/soak.rs

tests/soak.rs:
