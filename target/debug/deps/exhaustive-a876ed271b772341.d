/root/repo/target/debug/deps/exhaustive-a876ed271b772341.d: crates/sore/tests/exhaustive.rs

/root/repo/target/debug/deps/exhaustive-a876ed271b772341: crates/sore/tests/exhaustive.rs

crates/sore/tests/exhaustive.rs:
