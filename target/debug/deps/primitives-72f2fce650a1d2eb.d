/root/repo/target/debug/deps/primitives-72f2fce650a1d2eb.d: crates/bench/benches/primitives.rs

/root/repo/target/debug/deps/primitives-72f2fce650a1d2eb: crates/bench/benches/primitives.rs

crates/bench/benches/primitives.rs:
