/root/repo/target/debug/deps/slicer_workload-113d4ce8b0c2aa2b.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/slicer_workload-113d4ce8b0c2aa2b: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
