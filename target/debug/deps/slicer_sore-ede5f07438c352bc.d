/root/repo/target/debug/deps/slicer_sore-ede5f07438c352bc.d: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

/root/repo/target/debug/deps/libslicer_sore-ede5f07438c352bc.rlib: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

/root/repo/target/debug/deps/libslicer_sore-ede5f07438c352bc.rmeta: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

crates/sore/src/lib.rs:
crates/sore/src/baselines/mod.rs:
crates/sore/src/baselines/clww.rs:
crates/sore/src/baselines/lewi_wu.rs:
crates/sore/src/order.rs:
crates/sore/src/scheme.rs:
crates/sore/src/tuple.rs:
