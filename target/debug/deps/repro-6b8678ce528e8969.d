/root/repo/target/debug/deps/repro-6b8678ce528e8969.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6b8678ce528e8969: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
