/root/repo/target/debug/deps/slicer_crypto-c72fe5ce98b2ff5b.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/codec.rs crates/crypto/src/drbg.rs crates/crypto/src/error.rs crates/crypto/src/hmac_mod.rs crates/crypto/src/prf.rs crates/crypto/src/rng.rs crates/crypto/src/sha256_mod.rs crates/crypto/src/symmetric.rs

/root/repo/target/debug/deps/slicer_crypto-c72fe5ce98b2ff5b: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/codec.rs crates/crypto/src/drbg.rs crates/crypto/src/error.rs crates/crypto/src/hmac_mod.rs crates/crypto/src/prf.rs crates/crypto/src/rng.rs crates/crypto/src/sha256_mod.rs crates/crypto/src/symmetric.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/codec.rs:
crates/crypto/src/drbg.rs:
crates/crypto/src/error.rs:
crates/crypto/src/hmac_mod.rs:
crates/crypto/src/prf.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha256_mod.rs:
crates/crypto/src/symmetric.rs:
