/root/repo/target/debug/deps/slicer_testkit-d526585ad2b95351.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libslicer_testkit-d526585ad2b95351.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/libslicer_testkit-d526585ad2b95351.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
