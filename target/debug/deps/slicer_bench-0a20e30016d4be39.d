/root/repo/target/debug/deps/slicer_bench-0a20e30016d4be39.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libslicer_bench-0a20e30016d4be39.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libslicer_bench-0a20e30016d4be39.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
