/root/repo/target/debug/deps/slicer_trapdoor-d7498ae48a126390.d: crates/trapdoor/src/lib.rs

/root/repo/target/debug/deps/libslicer_trapdoor-d7498ae48a126390.rlib: crates/trapdoor/src/lib.rs

/root/repo/target/debug/deps/libslicer_trapdoor-d7498ae48a126390.rmeta: crates/trapdoor/src/lib.rs

crates/trapdoor/src/lib.rs:
