/root/repo/target/debug/deps/slicer_testkit-ef29f3e5dfffa90b.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/debug/deps/slicer_testkit-ef29f3e5dfffa90b: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
