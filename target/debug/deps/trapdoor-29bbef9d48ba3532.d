/root/repo/target/debug/deps/trapdoor-29bbef9d48ba3532.d: crates/bench/benches/trapdoor.rs

/root/repo/target/debug/deps/trapdoor-29bbef9d48ba3532: crates/bench/benches/trapdoor.rs

crates/bench/benches/trapdoor.rs:
