/root/repo/target/debug/deps/slicer_store-6bea3a924da68338.d: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

/root/repo/target/debug/deps/libslicer_store-6bea3a924da68338.rlib: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

/root/repo/target/debug/deps/libslicer_store-6bea3a924da68338.rmeta: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

crates/store/src/lib.rs:
crates/store/src/codec.rs:
crates/store/src/index.rs:
crates/store/src/primes.rs:
