/root/repo/target/debug/deps/repro-6288135ca81fd2f6.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-6288135ca81fd2f6: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
