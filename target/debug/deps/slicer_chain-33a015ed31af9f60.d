/root/repo/target/debug/deps/slicer_chain-33a015ed31af9f60.d: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/chain.rs crates/chain/src/contract.rs crates/chain/src/error.rs crates/chain/src/gas.rs crates/chain/src/slicer_contract.rs crates/chain/src/tx.rs crates/chain/src/types.rs

/root/repo/target/debug/deps/libslicer_chain-33a015ed31af9f60.rlib: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/chain.rs crates/chain/src/contract.rs crates/chain/src/error.rs crates/chain/src/gas.rs crates/chain/src/slicer_contract.rs crates/chain/src/tx.rs crates/chain/src/types.rs

/root/repo/target/debug/deps/libslicer_chain-33a015ed31af9f60.rmeta: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/chain.rs crates/chain/src/contract.rs crates/chain/src/error.rs crates/chain/src/gas.rs crates/chain/src/slicer_contract.rs crates/chain/src/tx.rs crates/chain/src/types.rs

crates/chain/src/lib.rs:
crates/chain/src/block.rs:
crates/chain/src/chain.rs:
crates/chain/src/contract.rs:
crates/chain/src/error.rs:
crates/chain/src/gas.rs:
crates/chain/src/slicer_contract.rs:
crates/chain/src/tx.rs:
crates/chain/src/types.rs:
