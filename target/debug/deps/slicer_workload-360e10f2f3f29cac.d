/root/repo/target/debug/deps/slicer_workload-360e10f2f3f29cac.d: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libslicer_workload-360e10f2f3f29cac.rlib: crates/workload/src/lib.rs

/root/repo/target/debug/deps/libslicer_workload-360e10f2f3f29cac.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
