/root/repo/target/debug/deps/slicer_bench-49d524a8de94e27c.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/slicer_bench-49d524a8de94e27c: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
