/root/repo/target/debug/deps/slicer_trapdoor-a4cc02ebc868b70f.d: crates/trapdoor/src/lib.rs

/root/repo/target/debug/deps/slicer_trapdoor-a4cc02ebc868b70f: crates/trapdoor/src/lib.rs

crates/trapdoor/src/lib.rs:
