/root/repo/target/debug/examples/public_audit-5cbb5f4b2eec1875.d: examples/public_audit.rs

/root/repo/target/debug/examples/public_audit-5cbb5f4b2eec1875: examples/public_audit.rs

examples/public_audit.rs:
