/root/repo/target/debug/examples/scratch_verify_fail-d19cdec79a9b4006.d: crates/testkit/examples/scratch_verify_fail.rs

/root/repo/target/debug/examples/scratch_verify_fail-d19cdec79a9b4006: crates/testkit/examples/scratch_verify_fail.rs

crates/testkit/examples/scratch_verify_fail.rs:
