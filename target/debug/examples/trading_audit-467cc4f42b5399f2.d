/root/repo/target/debug/examples/trading_audit-467cc4f42b5399f2.d: examples/trading_audit.rs

/root/repo/target/debug/examples/trading_audit-467cc4f42b5399f2: examples/trading_audit.rs

examples/trading_audit.rs:
