/root/repo/target/debug/examples/quickstart-322f041aa7b00d50.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-322f041aa7b00d50: examples/quickstart.rs

examples/quickstart.rs:
