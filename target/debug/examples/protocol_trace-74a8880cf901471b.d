/root/repo/target/debug/examples/protocol_trace-74a8880cf901471b.d: examples/protocol_trace.rs

/root/repo/target/debug/examples/protocol_trace-74a8880cf901471b: examples/protocol_trace.rs

examples/protocol_trace.rs:
