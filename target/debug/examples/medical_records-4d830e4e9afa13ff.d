/root/repo/target/debug/examples/medical_records-4d830e4e9afa13ff.d: examples/medical_records.rs

/root/repo/target/debug/examples/medical_records-4d830e4e9afa13ff: examples/medical_records.rs

examples/medical_records.rs:
