/root/repo/target/debug/examples/dynamic_portfolio-fdda1a2361671aff.d: examples/dynamic_portfolio.rs

/root/repo/target/debug/examples/dynamic_portfolio-fdda1a2361671aff: examples/dynamic_portfolio.rs

examples/dynamic_portfolio.rs:
