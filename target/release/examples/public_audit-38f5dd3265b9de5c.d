/root/repo/target/release/examples/public_audit-38f5dd3265b9de5c.d: examples/public_audit.rs

/root/repo/target/release/examples/public_audit-38f5dd3265b9de5c: examples/public_audit.rs

examples/public_audit.rs:
