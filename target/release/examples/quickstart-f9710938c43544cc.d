/root/repo/target/release/examples/quickstart-f9710938c43544cc.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f9710938c43544cc: examples/quickstart.rs

examples/quickstart.rs:
