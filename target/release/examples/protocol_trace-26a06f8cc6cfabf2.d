/root/repo/target/release/examples/protocol_trace-26a06f8cc6cfabf2.d: examples/protocol_trace.rs

/root/repo/target/release/examples/protocol_trace-26a06f8cc6cfabf2: examples/protocol_trace.rs

examples/protocol_trace.rs:
