/root/repo/target/release/examples/medical_records-109a9b9bf6677885.d: examples/medical_records.rs

/root/repo/target/release/examples/medical_records-109a9b9bf6677885: examples/medical_records.rs

examples/medical_records.rs:
