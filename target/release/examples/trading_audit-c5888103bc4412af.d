/root/repo/target/release/examples/trading_audit-c5888103bc4412af.d: examples/trading_audit.rs

/root/repo/target/release/examples/trading_audit-c5888103bc4412af: examples/trading_audit.rs

examples/trading_audit.rs:
