/root/repo/target/release/examples/dynamic_portfolio-d56c8042ad4f5369.d: examples/dynamic_portfolio.rs

/root/repo/target/release/examples/dynamic_portfolio-d56c8042ad4f5369: examples/dynamic_portfolio.rs

examples/dynamic_portfolio.rs:
