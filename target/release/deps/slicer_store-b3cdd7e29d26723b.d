/root/repo/target/release/deps/slicer_store-b3cdd7e29d26723b.d: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

/root/repo/target/release/deps/slicer_store-b3cdd7e29d26723b: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

crates/store/src/lib.rs:
crates/store/src/codec.rs:
crates/store/src/index.rs:
crates/store/src/primes.rs:
