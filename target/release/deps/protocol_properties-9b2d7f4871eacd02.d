/root/repo/target/release/deps/protocol_properties-9b2d7f4871eacd02.d: crates/core/tests/protocol_properties.rs

/root/repo/target/release/deps/protocol_properties-9b2d7f4871eacd02: crates/core/tests/protocol_properties.rs

crates/core/tests/protocol_properties.rs:
