/root/repo/target/release/deps/properties-e41494dde6688402.d: crates/mshash/tests/properties.rs

/root/repo/target/release/deps/properties-e41494dde6688402: crates/mshash/tests/properties.rs

crates/mshash/tests/properties.rs:
