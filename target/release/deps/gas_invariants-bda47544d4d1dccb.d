/root/repo/target/release/deps/gas_invariants-bda47544d4d1dccb.d: crates/chain/tests/gas_invariants.rs

/root/repo/target/release/deps/gas_invariants-bda47544d4d1dccb: crates/chain/tests/gas_invariants.rs

crates/chain/tests/gas_invariants.rs:
