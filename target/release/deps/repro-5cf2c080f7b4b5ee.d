/root/repo/target/release/deps/repro-5cf2c080f7b4b5ee.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-5cf2c080f7b4b5ee: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
