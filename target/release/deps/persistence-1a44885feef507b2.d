/root/repo/target/release/deps/persistence-1a44885feef507b2.d: tests/persistence.rs

/root/repo/target/release/deps/persistence-1a44885feef507b2: tests/persistence.rs

tests/persistence.rs:
