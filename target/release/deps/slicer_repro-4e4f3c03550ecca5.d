/root/repo/target/release/deps/slicer_repro-4e4f3c03550ecca5.d: src/lib.rs

/root/repo/target/release/deps/libslicer_repro-4e4f3c03550ecca5.rlib: src/lib.rs

/root/repo/target/release/deps/libslicer_repro-4e4f3c03550ecca5.rmeta: src/lib.rs

src/lib.rs:
