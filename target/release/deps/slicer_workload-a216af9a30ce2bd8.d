/root/repo/target/release/deps/slicer_workload-a216af9a30ce2bd8.d: crates/workload/src/lib.rs

/root/repo/target/release/deps/slicer_workload-a216af9a30ce2bd8: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
