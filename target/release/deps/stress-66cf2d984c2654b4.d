/root/repo/target/release/deps/stress-66cf2d984c2654b4.d: crates/bignum/tests/stress.rs

/root/repo/target/release/deps/stress-66cf2d984c2654b4: crates/bignum/tests/stress.rs

crates/bignum/tests/stress.rs:
