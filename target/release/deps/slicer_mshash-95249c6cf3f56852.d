/root/repo/target/release/deps/slicer_mshash-95249c6cf3f56852.d: crates/mshash/src/lib.rs

/root/repo/target/release/deps/libslicer_mshash-95249c6cf3f56852.rlib: crates/mshash/src/lib.rs

/root/repo/target/release/deps/libslicer_mshash-95249c6cf3f56852.rmeta: crates/mshash/src/lib.rs

crates/mshash/src/lib.rs:
