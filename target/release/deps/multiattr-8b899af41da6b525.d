/root/repo/target/release/deps/multiattr-8b899af41da6b525.d: tests/multiattr.rs

/root/repo/target/release/deps/multiattr-8b899af41da6b525: tests/multiattr.rs

tests/multiattr.rs:
