/root/repo/target/release/deps/slicer_crypto-193eee3e6a06ec31.d: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/codec.rs crates/crypto/src/drbg.rs crates/crypto/src/error.rs crates/crypto/src/hmac_mod.rs crates/crypto/src/prf.rs crates/crypto/src/rng.rs crates/crypto/src/sha256_mod.rs crates/crypto/src/symmetric.rs

/root/repo/target/release/deps/slicer_crypto-193eee3e6a06ec31: crates/crypto/src/lib.rs crates/crypto/src/aes.rs crates/crypto/src/codec.rs crates/crypto/src/drbg.rs crates/crypto/src/error.rs crates/crypto/src/hmac_mod.rs crates/crypto/src/prf.rs crates/crypto/src/rng.rs crates/crypto/src/sha256_mod.rs crates/crypto/src/symmetric.rs

crates/crypto/src/lib.rs:
crates/crypto/src/aes.rs:
crates/crypto/src/codec.rs:
crates/crypto/src/drbg.rs:
crates/crypto/src/error.rs:
crates/crypto/src/hmac_mod.rs:
crates/crypto/src/prf.rs:
crates/crypto/src/rng.rs:
crates/crypto/src/sha256_mod.rs:
crates/crypto/src/symmetric.rs:
