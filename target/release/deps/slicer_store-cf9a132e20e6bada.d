/root/repo/target/release/deps/slicer_store-cf9a132e20e6bada.d: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

/root/repo/target/release/deps/libslicer_store-cf9a132e20e6bada.rlib: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

/root/repo/target/release/deps/libslicer_store-cf9a132e20e6bada.rmeta: crates/store/src/lib.rs crates/store/src/codec.rs crates/store/src/index.rs crates/store/src/primes.rs

crates/store/src/lib.rs:
crates/store/src/codec.rs:
crates/store/src/index.rs:
crates/store/src/primes.rs:
