/root/repo/target/release/deps/failure_injection-5bfd950d5196a5ee.d: tests/failure_injection.rs

/root/repo/target/release/deps/failure_injection-5bfd950d5196a5ee: tests/failure_injection.rs

tests/failure_injection.rs:
