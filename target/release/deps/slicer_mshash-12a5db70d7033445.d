/root/repo/target/release/deps/slicer_mshash-12a5db70d7033445.d: crates/mshash/src/lib.rs

/root/repo/target/release/deps/slicer_mshash-12a5db70d7033445: crates/mshash/src/lib.rs

crates/mshash/src/lib.rs:
