/root/repo/target/release/deps/slicer_bench-c4bc248442be57fc.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/slicer_bench-c4bc248442be57fc: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
