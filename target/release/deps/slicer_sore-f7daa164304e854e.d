/root/repo/target/release/deps/slicer_sore-f7daa164304e854e.d: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

/root/repo/target/release/deps/libslicer_sore-f7daa164304e854e.rlib: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

/root/repo/target/release/deps/libslicer_sore-f7daa164304e854e.rmeta: crates/sore/src/lib.rs crates/sore/src/baselines/mod.rs crates/sore/src/baselines/clww.rs crates/sore/src/baselines/lewi_wu.rs crates/sore/src/order.rs crates/sore/src/scheme.rs crates/sore/src/tuple.rs

crates/sore/src/lib.rs:
crates/sore/src/baselines/mod.rs:
crates/sore/src/baselines/clww.rs:
crates/sore/src/baselines/lewi_wu.rs:
crates/sore/src/order.rs:
crates/sore/src/scheme.rs:
crates/sore/src/tuple.rs:
