/root/repo/target/release/deps/leakage_sim-e3b27664385fb460.d: crates/core/tests/leakage_sim.rs

/root/repo/target/release/deps/leakage_sim-e3b27664385fb460: crates/core/tests/leakage_sim.rs

crates/core/tests/leakage_sim.rs:
