/root/repo/target/release/deps/slicer_core-b036bca955315542.d: crates/core/src/lib.rs crates/core/src/cloud.rs crates/core/src/config.rs crates/core/src/dual.rs crates/core/src/error.rs crates/core/src/keys.rs crates/core/src/keyword.rs crates/core/src/leakage.rs crates/core/src/messages.rs crates/core/src/owner.rs crates/core/src/record.rs crates/core/src/state.rs crates/core/src/system.rs crates/core/src/user.rs

/root/repo/target/release/deps/slicer_core-b036bca955315542: crates/core/src/lib.rs crates/core/src/cloud.rs crates/core/src/config.rs crates/core/src/dual.rs crates/core/src/error.rs crates/core/src/keys.rs crates/core/src/keyword.rs crates/core/src/leakage.rs crates/core/src/messages.rs crates/core/src/owner.rs crates/core/src/record.rs crates/core/src/state.rs crates/core/src/system.rs crates/core/src/user.rs

crates/core/src/lib.rs:
crates/core/src/cloud.rs:
crates/core/src/config.rs:
crates/core/src/dual.rs:
crates/core/src/error.rs:
crates/core/src/keys.rs:
crates/core/src/keyword.rs:
crates/core/src/leakage.rs:
crates/core/src/messages.rs:
crates/core/src/owner.rs:
crates/core/src/record.rs:
crates/core/src/state.rs:
crates/core/src/system.rs:
crates/core/src/user.rs:
