/root/repo/target/release/deps/slicer_workload-948f7573097c86b3.d: crates/workload/src/lib.rs

/root/repo/target/release/deps/libslicer_workload-948f7573097c86b3.rlib: crates/workload/src/lib.rs

/root/repo/target/release/deps/libslicer_workload-948f7573097c86b3.rmeta: crates/workload/src/lib.rs

crates/workload/src/lib.rs:
