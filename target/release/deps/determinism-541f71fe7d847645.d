/root/repo/target/release/deps/determinism-541f71fe7d847645.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-541f71fe7d847645: tests/determinism.rs

tests/determinism.rs:
