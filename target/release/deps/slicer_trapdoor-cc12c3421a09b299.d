/root/repo/target/release/deps/slicer_trapdoor-cc12c3421a09b299.d: crates/trapdoor/src/lib.rs

/root/repo/target/release/deps/slicer_trapdoor-cc12c3421a09b299: crates/trapdoor/src/lib.rs

crates/trapdoor/src/lib.rs:
