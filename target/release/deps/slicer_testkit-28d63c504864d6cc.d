/root/repo/target/release/deps/slicer_testkit-28d63c504864d6cc.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/libslicer_testkit-28d63c504864d6cc.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/libslicer_testkit-28d63c504864d6cc.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
