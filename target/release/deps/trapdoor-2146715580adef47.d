/root/repo/target/release/deps/trapdoor-2146715580adef47.d: crates/bench/benches/trapdoor.rs

/root/repo/target/release/deps/trapdoor-2146715580adef47: crates/bench/benches/trapdoor.rs

crates/bench/benches/trapdoor.rs:
