/root/repo/target/release/deps/chain_adversarial-4afdbdb26d6bee82.d: tests/chain_adversarial.rs

/root/repo/target/release/deps/chain_adversarial-4afdbdb26d6bee82: tests/chain_adversarial.rs

tests/chain_adversarial.rs:
