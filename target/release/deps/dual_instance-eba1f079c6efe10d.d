/root/repo/target/release/deps/dual_instance-eba1f079c6efe10d.d: tests/dual_instance.rs

/root/repo/target/release/deps/dual_instance-eba1f079c6efe10d: tests/dual_instance.rs

tests/dual_instance.rs:
