/root/repo/target/release/deps/vectors-e7f1116d51a12328.d: crates/crypto/tests/vectors.rs

/root/repo/target/release/deps/vectors-e7f1116d51a12328: crates/crypto/tests/vectors.rs

crates/crypto/tests/vectors.rs:
