/root/repo/target/release/deps/slicer_accumulator-711fdae481437ad7.d: crates/accumulator/src/lib.rs crates/accumulator/src/acc.rs crates/accumulator/src/cache.rs crates/accumulator/src/hprime.rs crates/accumulator/src/merkle.rs crates/accumulator/src/nonmembership.rs crates/accumulator/src/params.rs crates/accumulator/src/witness.rs

/root/repo/target/release/deps/slicer_accumulator-711fdae481437ad7: crates/accumulator/src/lib.rs crates/accumulator/src/acc.rs crates/accumulator/src/cache.rs crates/accumulator/src/hprime.rs crates/accumulator/src/merkle.rs crates/accumulator/src/nonmembership.rs crates/accumulator/src/params.rs crates/accumulator/src/witness.rs

crates/accumulator/src/lib.rs:
crates/accumulator/src/acc.rs:
crates/accumulator/src/cache.rs:
crates/accumulator/src/hprime.rs:
crates/accumulator/src/merkle.rs:
crates/accumulator/src/nonmembership.rs:
crates/accumulator/src/params.rs:
crates/accumulator/src/witness.rs:
