/root/repo/target/release/deps/slicer_chain-031304c5becf193c.d: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/chain.rs crates/chain/src/contract.rs crates/chain/src/error.rs crates/chain/src/gas.rs crates/chain/src/slicer_contract.rs crates/chain/src/tx.rs crates/chain/src/types.rs

/root/repo/target/release/deps/libslicer_chain-031304c5becf193c.rlib: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/chain.rs crates/chain/src/contract.rs crates/chain/src/error.rs crates/chain/src/gas.rs crates/chain/src/slicer_contract.rs crates/chain/src/tx.rs crates/chain/src/types.rs

/root/repo/target/release/deps/libslicer_chain-031304c5becf193c.rmeta: crates/chain/src/lib.rs crates/chain/src/block.rs crates/chain/src/chain.rs crates/chain/src/contract.rs crates/chain/src/error.rs crates/chain/src/gas.rs crates/chain/src/slicer_contract.rs crates/chain/src/tx.rs crates/chain/src/types.rs

crates/chain/src/lib.rs:
crates/chain/src/block.rs:
crates/chain/src/chain.rs:
crates/chain/src/contract.rs:
crates/chain/src/error.rs:
crates/chain/src/gas.rs:
crates/chain/src/slicer_contract.rs:
crates/chain/src/tx.rs:
crates/chain/src/types.rs:
