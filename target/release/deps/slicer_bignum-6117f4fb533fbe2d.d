/root/repo/target/release/deps/slicer_bignum-6117f4fb533fbe2d.d: crates/bignum/src/lib.rs crates/bignum/src/arith.rs crates/bignum/src/bits.rs crates/bignum/src/codec_impl.rs crates/bignum/src/convert.rs crates/bignum/src/div.rs crates/bignum/src/fmt.rs crates/bignum/src/gcd.rs crates/bignum/src/modular.rs crates/bignum/src/montgomery.rs crates/bignum/src/prime.rs crates/bignum/src/random.rs crates/bignum/src/uint.rs

/root/repo/target/release/deps/slicer_bignum-6117f4fb533fbe2d: crates/bignum/src/lib.rs crates/bignum/src/arith.rs crates/bignum/src/bits.rs crates/bignum/src/codec_impl.rs crates/bignum/src/convert.rs crates/bignum/src/div.rs crates/bignum/src/fmt.rs crates/bignum/src/gcd.rs crates/bignum/src/modular.rs crates/bignum/src/montgomery.rs crates/bignum/src/prime.rs crates/bignum/src/random.rs crates/bignum/src/uint.rs

crates/bignum/src/lib.rs:
crates/bignum/src/arith.rs:
crates/bignum/src/bits.rs:
crates/bignum/src/codec_impl.rs:
crates/bignum/src/convert.rs:
crates/bignum/src/div.rs:
crates/bignum/src/fmt.rs:
crates/bignum/src/gcd.rs:
crates/bignum/src/modular.rs:
crates/bignum/src/montgomery.rs:
crates/bignum/src/prime.rs:
crates/bignum/src/random.rs:
crates/bignum/src/uint.rs:
