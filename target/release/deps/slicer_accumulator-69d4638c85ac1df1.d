/root/repo/target/release/deps/slicer_accumulator-69d4638c85ac1df1.d: crates/accumulator/src/lib.rs crates/accumulator/src/acc.rs crates/accumulator/src/cache.rs crates/accumulator/src/hprime.rs crates/accumulator/src/merkle.rs crates/accumulator/src/nonmembership.rs crates/accumulator/src/params.rs crates/accumulator/src/witness.rs

/root/repo/target/release/deps/libslicer_accumulator-69d4638c85ac1df1.rlib: crates/accumulator/src/lib.rs crates/accumulator/src/acc.rs crates/accumulator/src/cache.rs crates/accumulator/src/hprime.rs crates/accumulator/src/merkle.rs crates/accumulator/src/nonmembership.rs crates/accumulator/src/params.rs crates/accumulator/src/witness.rs

/root/repo/target/release/deps/libslicer_accumulator-69d4638c85ac1df1.rmeta: crates/accumulator/src/lib.rs crates/accumulator/src/acc.rs crates/accumulator/src/cache.rs crates/accumulator/src/hprime.rs crates/accumulator/src/merkle.rs crates/accumulator/src/nonmembership.rs crates/accumulator/src/params.rs crates/accumulator/src/witness.rs

crates/accumulator/src/lib.rs:
crates/accumulator/src/acc.rs:
crates/accumulator/src/cache.rs:
crates/accumulator/src/hprime.rs:
crates/accumulator/src/merkle.rs:
crates/accumulator/src/nonmembership.rs:
crates/accumulator/src/params.rs:
crates/accumulator/src/witness.rs:
