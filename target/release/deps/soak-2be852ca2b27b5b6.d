/root/repo/target/release/deps/soak-2be852ca2b27b5b6.d: tests/soak.rs

/root/repo/target/release/deps/soak-2be852ca2b27b5b6: tests/soak.rs

tests/soak.rs:
