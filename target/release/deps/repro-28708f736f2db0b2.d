/root/repo/target/release/deps/repro-28708f736f2db0b2.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-28708f736f2db0b2: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
