/root/repo/target/release/deps/exhaustive-2aae5781f237ad0a.d: crates/sore/tests/exhaustive.rs

/root/repo/target/release/deps/exhaustive-2aae5781f237ad0a: crates/sore/tests/exhaustive.rs

crates/sore/tests/exhaustive.rs:
