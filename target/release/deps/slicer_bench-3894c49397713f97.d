/root/repo/target/release/deps/slicer_bench-3894c49397713f97.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libslicer_bench-3894c49397713f97.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libslicer_bench-3894c49397713f97.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/table.rs:
