/root/repo/target/release/deps/end_to_end-5e1a4278edf58b5b.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-5e1a4278edf58b5b: tests/end_to_end.rs

tests/end_to_end.rs:
