/root/repo/target/release/deps/slicer_testkit-22bc4779fcffff4f.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

/root/repo/target/release/deps/slicer_testkit-22bc4779fcffff4f: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/prop.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/prop.rs:
