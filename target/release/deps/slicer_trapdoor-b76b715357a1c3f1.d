/root/repo/target/release/deps/slicer_trapdoor-b76b715357a1c3f1.d: crates/trapdoor/src/lib.rs

/root/repo/target/release/deps/libslicer_trapdoor-b76b715357a1c3f1.rlib: crates/trapdoor/src/lib.rs

/root/repo/target/release/deps/libslicer_trapdoor-b76b715357a1c3f1.rmeta: crates/trapdoor/src/lib.rs

crates/trapdoor/src/lib.rs:
