/root/repo/target/release/deps/properties_table1-466026f72a6ec185.d: tests/properties_table1.rs

/root/repo/target/release/deps/properties_table1-466026f72a6ec185: tests/properties_table1.rs

tests/properties_table1.rs:
