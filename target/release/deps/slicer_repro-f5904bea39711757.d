/root/repo/target/release/deps/slicer_repro-f5904bea39711757.d: src/lib.rs

/root/repo/target/release/deps/slicer_repro-f5904bea39711757: src/lib.rs

src/lib.rs:
