#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + formatting.
#
# The workspace has zero external dependencies (every workspace dependency
# is a path crate), so everything below runs with --offline from a clean
# checkout — no network, no registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace --release

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
