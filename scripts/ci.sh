#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + formatting.
#
# The workspace has zero external dependencies (every workspace dependency
# is a path crate), so everything below runs with --offline from a clean
# checkout — no network, no registry cache.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> slicer-lint --check --strict --format json (static-analysis ratchet)"
# Strict mode fails when the baseline is stale (counts shrank without
# --update-baseline), not just when they grew — the ratchet file in the
# repo must always match reality. The JSON report is the CI artifact;
# surface the status line for humans either way.
lint_out="$(cargo run -q --release --offline -p slicer-lint -- \
  --check --strict --format json)" || {
  echo "$lint_out"
  echo "slicer-lint FAILED: ratchet violation or stale baseline (see report above)" >&2
  exit 1
}
grep -q '"status":"ok"' <<<"$lint_out" || {
  echo "$lint_out"
  echo "slicer-lint FAILED: report status is not ok" >&2
  exit 1
}
echo "slicer-lint OK (strict ratchet holds)"

echo "==> cargo test -q --offline (SLICER_THREADS=1)"
SLICER_THREADS=1 cargo test -q --offline --workspace --release

echo "==> cargo test -q --offline (SLICER_THREADS=4)"
SLICER_THREADS=4 cargo test -q --offline --workspace --release

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> pool determinism (bench counters agree across SLICER_THREADS)"
# The slicer-par contract: worker count is a throughput knob, never a
# semantic one. Run the telemetry experiment single-threaded and
# four-threaded and require the non-timing metrics (the "counters"
# section of both bench transcripts) to agree byte-for-byte. Timing
# histograms legitimately differ; everything the protocol counts must not.
bench_tmp="$(mktemp -d)"
trap 'rm -rf "$bench_tmp"' EXIT
for threads in 1 4; do
  mkdir -p "$bench_tmp/t$threads"
  SLICER_THREADS=$threads cargo run -q --release --offline -p slicer-bench \
    --bin repro -- --experiment telemetry --scale 0.01 --queries 2 \
    --csv "$bench_tmp/t$threads" >/dev/null
done
for f in BENCH_build.json BENCH_search.json; do
  sed -n '/"counters"/,/}/p' "$bench_tmp/t1/$f" >"$bench_tmp/c1"
  sed -n '/"counters"/,/}/p' "$bench_tmp/t4/$f" >"$bench_tmp/c4"
  if ! diff -u "$bench_tmp/c1" "$bench_tmp/c4"; then
    echo "pool determinism FAILED: $f counters differ between SLICER_THREADS=1 and 4" >&2
    exit 1
  fi
  grep -q '"counters"' "$bench_tmp/c1" || {
    echo "pool determinism FAILED: no counters section extracted from $f" >&2
    exit 1
  }
done
echo "pool determinism OK"

echo "==> bench-diff regression gate (counters vs committed baselines)"
# The committed BENCH_*.json at the repo root are the performance
# baselines. Every counter and gauge in them is machine- and
# thread-invariant (the pool-determinism stage above proves thread
# invariance), so the gate demands exact agreement on those, while
# timing metrics (.ns / .iters) stay informational unless a tolerance
# is supplied. Reuses the single-threaded transcripts generated above.
for f in BENCH_build.json BENCH_search.json; do
  if ! ./target/release/slicer-cli bench-diff "$f" "$bench_tmp/t1/$f"; then
    echo "bench-diff gate FAILED: $f drifted from the committed baseline" >&2
    echo "  (intentional protocol change? regenerate the baseline with" >&2
    echo "   cargo run --release -p slicer-bench --bin repro -- \\" >&2
    echo "     --experiment telemetry --scale 0.01 --queries 2 --csv .)" >&2
    exit 1
  fi
done
# Negative self-test: the gate has to actually bite. Inject a gas
# regression into a copy of the candidate and require bench-diff to
# reject it with a non-zero exit.
sed 's/"phase.verify.gas": \([0-9]*\)/"phase.verify.gas": 9\1/' \
  "$bench_tmp/t1/BENCH_search.json" >"$bench_tmp/regressed.json"
if cmp -s "$bench_tmp/t1/BENCH_search.json" "$bench_tmp/regressed.json"; then
  echo "bench-diff gate FAILED: regression injection was a no-op" >&2
  exit 1
fi
if ./target/release/slicer-cli bench-diff BENCH_search.json \
  "$bench_tmp/regressed.json" >/dev/null; then
  echo "bench-diff gate FAILED: injected regression was not detected" >&2
  exit 1
fi
echo "bench-diff gate OK (clean inputs pass, injected regression fails)"

echo "==> telemetry smoke (protocol_trace phase profile + JSON export)"
trace_out="$(cargo run -q --release --offline --example protocol_trace)"
for phase in setup build token search verify settle; do
  if ! grep -q "slicer_phase_${phase}_gas" <<<"$trace_out"; then
    echo "telemetry smoke FAILED: phase '${phase}' missing from the export" >&2
    exit 1
  fi
done
# The example validates its own JSON export (slicer_telemetry::json::parse)
# and prints this marker only if parsing succeeded with all six phases.
grep -q "TELEMETRY JSON OK" <<<"$trace_out" || {
  echo "telemetry smoke FAILED: JSON export did not validate" >&2
  exit 1
}
# The Chrome trace-event export round-trips through the in-crate RFC 8259
# parser and the six protocol phases are verified as parent spans.
grep -q "CHROME TRACE OK" <<<"$trace_out" || {
  echo "telemetry smoke FAILED: Chrome trace export did not validate" >&2
  exit 1
}
# The LeakageAuditor re-derives the access pattern from span attributes
# and matches it against the declared Theorem 2 profiles.
grep -q "LEAKAGE AUDIT OK" <<<"$trace_out" || {
  echo "telemetry smoke FAILED: leakage audit did not pass" >&2
  exit 1
}
echo "telemetry smoke OK"

echo "==> slicerd smoke (kill -9 crash/restart, byte-identical digest, no rebuild)"
# Boot a daemon on a temp Unix socket, ingest + search + verify through
# the CLI, SIGKILL it mid-flight, restart on the same data directory and
# require (a) the accumulator digest to be byte-identical and (b) the
# restored index to keep serving verifiable searches — the durability
# contract of crates/persist + crates/daemon, end to end over real
# processes.
smoke_tmp="$(mktemp -d)"
slicerd_pid=""
cleanup_smoke() {
  if [ -n "$slicerd_pid" ]; then kill -9 "$slicerd_pid" 2>/dev/null || true; fi
  rm -rf "$smoke_tmp"
}
trap 'cleanup_smoke; rm -rf "$bench_tmp"' EXIT
sock="$smoke_tmp/slicerd.sock"
cli() { ./target/release/slicer-cli --connect "unix://$sock" "$@"; }
wait_ready() {
  for _ in $(seq 1 200); do
    if cli stat >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "slicerd smoke FAILED: daemon never became reachable" >&2
  exit 1
}

./target/release/slicerd --listen "unix://$sock" --data "$smoke_tmp/data" \
  --seed 11 --bits 8 >/dev/null &
slicerd_pid=$!
wait_ready
cli ingest 1:10 2:20 3:30 >/dev/null
cli search lt 25 | grep -q "verified=true" || {
  echo "slicerd smoke FAILED: first-life search not verified" >&2
  exit 1
}
cli verify | grep -q "chain_ok=true" || {
  echo "slicerd smoke FAILED: chain verification failed" >&2
  exit 1
}
digest_before="$(cli stat | grep -o 'digest=[0-9a-f]*')"

kill -9 "$slicerd_pid"
wait "$slicerd_pid" 2>/dev/null || true

./target/release/slicerd --listen "unix://$sock" --data "$smoke_tmp/data" >/dev/null &
slicerd_pid=$!
wait_ready
digest_after="$(cli stat | grep -o 'digest=[0-9a-f]*')"
if [ -z "$digest_before" ] || [ "$digest_before" != "$digest_after" ]; then
  echo "slicerd smoke FAILED: digest diverged across kill -9 restart" >&2
  echo "  before: $digest_before" >&2
  echo "  after:  $digest_after" >&2
  exit 1
fi
cli search lt 25 | grep -q "verified=true" || {
  echo "slicerd smoke FAILED: restored search not verified" >&2
  exit 1
}
cli shutdown >/dev/null
wait "$slicerd_pid"
slicerd_pid=""
echo "slicerd smoke OK"

echo "==> observability smoke (metrics scrape + tail + crash flight recorder)"
# Boot a daemon, drive traffic, scrape the Metrics surface and validate
# both exports (the CLI runs the in-crate RFC 8259 parser over the JSON
# and shape-checks the Prometheus text), read the log ring via tail, then
# SIGKILL the daemon mid-ingest and require a checksum-valid flight
# recorder segment on disk naming the in-flight request.
obs_tmp="$(mktemp -d)"
obs_pid=""
cleanup_obs() {
  if [ -n "$obs_pid" ]; then kill -9 "$obs_pid" 2>/dev/null || true; fi
  rm -rf "$obs_tmp"
}
trap 'cleanup_obs; cleanup_smoke; rm -rf "$bench_tmp"' EXIT
osock="$obs_tmp/slicerd.sock"
ocli() { ./target/release/slicer-cli --connect "unix://$osock" "$@"; }
owait_ready() {
  for _ in $(seq 1 200); do
    if ocli stat >/dev/null 2>&1; then return 0; fi
    sleep 0.05
  done
  echo "observability smoke FAILED: daemon never became reachable" >&2
  exit 1
}

./target/release/slicerd --listen "unix://$osock" --data "$obs_tmp/data" \
  --seed 11 --bits 8 >/dev/null 2>&1 &
obs_pid=$!
owait_ready
ocli ingest 1:10 2:20 3:30 >/dev/null
ocli search lt 25 >/dev/null

ocli metrics | grep -q "slicer_rpc_search_ns" || {
  echo "observability smoke FAILED: search histogram missing from scrape" >&2
  exit 1
}
check_out="$(ocli metrics --check)" || {
  echo "observability smoke FAILED: metrics --check rejected an export" >&2
  echo "$check_out" >&2
  exit 1
}
grep -q "metrics-check json=ok" <<<"$check_out" || {
  echo "observability smoke FAILED: JSON export did not validate" >&2
  exit 1
}
grep -q "metrics-check prometheus=ok" <<<"$check_out" || {
  echo "observability smoke FAILED: Prometheus export did not validate" >&2
  exit 1
}
ocli tail 50 | grep -q '"target":"slicerd.boot"' || {
  echo "observability smoke FAILED: boot record missing from tail" >&2
  exit 1
}

# Profiling plane: the live Profile RPC must render a well-formed SVG
# flamegraph and its totals must reconcile with the metrics surface —
# wall root within the rpc.*.ns histogram sums, gas total exactly equal
# to the phase.*.gas counters (slicerd never double-counts chain spans).
prof_out="$(ocli profile --check)" || {
  echo "observability smoke FAILED: profile --check rejected the profile plane" >&2
  echo "$prof_out" >&2
  exit 1
}
for marker in "profile-check svg=ok" "profile-check wall=ok" "profile-check gas=ok"; do
  grep -q "$marker" <<<"$prof_out" || {
    echo "observability smoke FAILED: missing '$marker' in profile --check" >&2
    echo "$prof_out" >&2
    exit 1
  }
done
ocli profile --svg | grep -q "</svg>" || {
  echo "observability smoke FAILED: profile --svg did not render a document" >&2
  exit 1
}
ocli profile --gas | grep -q "daemon.request" || {
  echo "observability smoke FAILED: gas profile missing the request root" >&2
  exit 1
}

# kill -9 mid-ingest. The recorder persists an in-flight entry at request
# start (atomic tmp+rename, so concurrent reads always see a whole
# segment), so the script polls the on-disk recording and pulls the
# trigger the moment the ingest shows up mid-dispatch. A large batch
# keeps the request in flight for hundreds of milliseconds — far wider
# than the poll interval — but retry with a bigger one just in case.
in_flight_ok=""
base_id=1000
for n in 2700 8000; do
  batch=""
  for i in $(seq "$base_id" $((base_id + n))); do
    batch="$batch $i:$((i % 256))"
  done
  base_id=$((base_id + n + 1))
  # shellcheck disable=SC2086
  ocli ingest $batch >/dev/null 2>&1 &
  ingest_pid=$!
  for _ in $(seq 1 400); do
    # The decoder exits 1 when something is in flight; under pipefail
    # that would mask grep's verdict, so fold it to 0 inside the pipe.
    if { ./target/release/slicer-cli flightrec "$obs_tmp/data/flightrec.slc" 2>/dev/null || true; } \
      | grep -q "kind=ingest .*outcome=in-flight"; then
      break
    fi
    sleep 0.01
  done
  kill -9 "$obs_pid" 2>/dev/null || true
  wait "$obs_pid" 2>/dev/null || true
  wait "$ingest_pid" 2>/dev/null || true
  obs_pid=""
  # Exit 1 here means "in-flight request found" — exactly what we want.
  rec_out="$(./target/release/slicer-cli flightrec "$obs_tmp/data/flightrec.slc")" || true
  if grep -q "kind=ingest .*outcome=in-flight" <<<"$rec_out"; then
    in_flight_ok=yes
    break
  fi
  ./target/release/slicerd --listen "unix://$osock" --data "$obs_tmp/data" >/dev/null 2>&1 &
  obs_pid=$!
  owait_ready
done
if [ -z "$in_flight_ok" ]; then
  echo "observability smoke FAILED: no in-flight ingest in the flight recording" >&2
  echo "$rec_out" >&2
  exit 1
fi
echo "observability smoke OK"

echo "CI OK"
