//! Quickstart: build an encrypted numerical database, run a verified range
//! query through the blockchain, and decrypt the results.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};

fn main() {
    // One call sets up all four parties: data owner, data user, cloud and
    // a blockchain running the Slicer verification contract.
    let mut system = SlicerSystem::setup(SlicerConfig::test_8bit(), 2024);

    // The owner outsources 100 encrypted records (id, value).
    let db: Vec<(RecordId, u64)> = (0u64..100)
        .map(|i| (RecordId::from_u64(i), (i * 29 + 3) % 256))
        .collect();
    system.build(&db).expect("values fit the 8-bit domain");
    println!("built encrypted index for {} records", db.len());

    // The user pays 1000 wei into escrow and asks for every record with
    // value < 50. The cloud searches, proves, and the contract verifies.
    let outcome = system
        .search(&Query::less_than(50), 1_000)
        .expect("chain accepts the workflow");

    println!(
        "query `value < 50` verified={} (request {} gas, verification {} gas)",
        outcome.verified, outcome.request_gas, outcome.verify_gas
    );
    assert!(outcome.verified, "honest cloud always verifies");

    let mut hits: Vec<u64> = outcome
        .records
        .iter()
        .map(|r| r.as_u64().expect("ids built from u64"))
        .collect();
    hits.sort_unstable();
    println!("{} matching records: {:?}", hits.len(), hits);

    // Cross-check against the plaintext.
    let expected: Vec<u64> = db
        .iter()
        .filter(|(_, v)| *v < 50)
        .map(|(id, _)| id.as_u64().expect("u64 ids"))
        .collect();
    let mut expected_sorted = expected;
    expected_sorted.sort_unstable();
    assert_eq!(hits, expected_sorted);
    println!("results match the plaintext oracle ✓");

    // Dynamic insert (forward-secure), then search again.
    system
        .insert(&[(RecordId::from_u64(1_000), 7)])
        .expect("fits the domain");
    let after = system
        .search(&Query::less_than(50), 1_000)
        .expect("chain ok");
    assert!(after.verified);
    assert_eq!(after.records.len(), hits.len() + 1);
    println!("insert visible and still verifiable ✓");
}
