//! Build-phase scaling benchmark: one deployment built under an enabled
//! telemetry context at a configurable record count, with the phase
//! registry exported as JSON.
//!
//! This is the measurement tool behind the committed
//! `results/BENCH_build_naive_10k.json` (single-thread naive baseline,
//! captured at the pre-`slicer-par` seed) and the refreshed n=10K point in
//! `results/BENCH_build_10k.json`.
//!
//! ```text
//! SLICER_BENCH_N=10000 SLICER_BENCH_BITS=16 \
//!     cargo run --release --example build_bench -- results/BENCH_build_10k.json
//! ```

use slicer_core::{RecordId, SlicerConfig, SlicerSystem};
use slicer_telemetry::{global, Clock, MonotonicClock, TelemetryHandle};
use slicer_workload::DatasetSpec;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = env_usize("SLICER_BENCH_N", 10_000);
    let bits = env_usize("SLICER_BENCH_BITS", 16) as u8;
    let out = std::env::args().nth(1);

    let db: Vec<(RecordId, u64)> = DatasetSpec::uniform(n, bits, 42)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();

    let handle = TelemetryHandle::enabled();
    global::set(handle.clone());
    let clock = MonotonicClock::new();
    let t0 = clock.now_nanos();
    let mut sys = SlicerSystem::setup_with(SlicerConfig::with_bits(bits), 42, handle.clone());
    sys.build(&db).expect("benchmark data is in-domain");
    let wall = clock.now_nanos().saturating_sub(t0);
    let snap = handle.snapshot();
    global::reset();

    let build_ns = snap
        .histogram("phase.build.ns")
        .map(|h| h.sum)
        .unwrap_or_default();
    println!("records            : {n}");
    println!("value bits         : {bits}");
    println!("phase.build.ns     : {build_ns}");
    println!("phase.build (s)    : {:.3}", build_ns as f64 / 1e9);
    println!("setup+build (s)    : {:.3}", wall as f64 / 1e9);

    if let Some(path) = out {
        let path = std::path::PathBuf::from(path);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("results directory is creatable");
        }
        std::fs::write(&path, snap.to_json()).expect("results file is writable");
        println!("wrote {}", path.display());
    }
}
