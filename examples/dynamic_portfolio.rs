//! Dynamic data with deletion and update (Section V-F's dual-instance
//! extension): a portfolio of positions where holdings are opened, closed
//! and re-priced, with every query verified on chain.
//!
//! ```text
//! cargo run --release --example dynamic_portfolio
//! ```

use slicer_core::{DualSlicer, Query, RecordId, SlicerConfig};

fn main() {
    let mut portfolio = DualSlicer::setup(SlicerConfig::test_8bit(), 2026);

    // Open five positions with sizes (in lots).
    let positions = [
        (RecordId::from_u64(1), 10u64),
        (RecordId::from_u64(2), 45),
        (RecordId::from_u64(3), 80),
        (RecordId::from_u64(4), 120),
        (RecordId::from_u64(5), 200),
    ];
    portfolio.insert(&positions).expect("8-bit domain");
    println!("opened {} positions", portfolio.live_count());

    let small = portfolio
        .search(&Query::less_than(100), 100)
        .expect("chain ok");
    assert!(small.verified);
    println!("positions < 100 lots: {:?}", ids(&small.records));
    assert_eq!(ids(&small.records), vec![1, 2, 3]);

    // Close position 2 (deletion = insert into the delete-instance).
    portfolio.delete(RecordId::from_u64(2)).expect("live id");
    let after_close = portfolio
        .search(&Query::less_than(100), 100)
        .expect("chain ok");
    assert!(after_close.verified);
    assert_eq!(ids(&after_close.records), vec![1, 3]);
    println!(
        "closed #2; positions < 100 now {:?}",
        ids(&after_close.records)
    );

    // Re-price position 4 from 120 down to 60 lots (update = delete +
    // re-insert).
    portfolio
        .update(RecordId::from_u64(4), 60)
        .expect("live id");
    let after_update = portfolio
        .search(&Query::less_than(100), 100)
        .expect("chain ok");
    assert!(after_update.verified);
    assert_eq!(ids(&after_update.records), vec![1, 3, 4]);
    println!(
        "re-priced #4 to 60; positions < 100 now {:?}",
        ids(&after_update.records)
    );

    // Double-close and double-open are rejected (the paper's uniqueness
    // rule for record IDs).
    assert!(portfolio.delete(RecordId::from_u64(2)).is_err());
    assert!(portfolio.insert(&[(RecordId::from_u64(5), 1)]).is_err());
    println!("uniqueness rules enforced ✓");

    // Both instances verified on chain for every query above.
    assert!(portfolio.chain().verify_chain());
    println!(
        "hash chain intact over {} blocks ✓",
        portfolio.chain().height()
    );
}

fn ids(records: &[RecordId]) -> Vec<u64> {
    let mut v: Vec<u64> = records
        .iter()
        .map(|r| r.as_u64().expect("u64 ids"))
        .collect();
    v.sort_unstable();
    v
}
