//! A guided walkthrough of the whole protocol on a toy database, run under
//! a live telemetry context: every phase of Fig. 1 (Setup, Build, Token,
//! Search, Verify, Settle) is profiled for wall time and gas, the gas is
//! attributed per [`slicer_chain::GasCategory`], the causal trace is
//! exported in Chrome trace-event format (load it at `chrome://tracing`
//! or <https://ui.perfetto.dev>), the observable access pattern is audited
//! against the declared leakage profiles, and the whole registry is
//! exported as Prometheus text and JSON (self-validated before printing).
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use slicer_core::{LeakageAuditor, Query, RecordId, SearchOutcome, SlicerConfig, SlicerSystem};
use slicer_telemetry::{global, Event, MemorySink, MonotonicClock, TelemetryHandle};
use std::sync::Arc;

fn ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

fn main() {
    // One enabled handle serves the whole run: the system's parties get it
    // injected, and the global facade routes the leaf-crate spans and
    // counters (SORE tuples, index lookups, chain txs, accumulator
    // witnesses) into the same registry and event stream.
    let sink = Arc::new(MemorySink::new());
    let telemetry = TelemetryHandle::with(Arc::new(MonotonicClock::new()), sink.clone() as _);
    global::set(telemetry.clone());

    println!("── Setup + Build (Algorithms 1–2) ────────────────────────");
    let mut sys = SlicerSystem::setup_with(SlicerConfig::test_8bit(), 7, telemetry.clone());
    let db: Vec<(RecordId, u64)> = (0u64..40)
        .map(|i| (RecordId::from_u64(i), (i * 13) % 256))
        .collect();
    sys.build(&db).expect("8-bit domain");
    sys.insert(&[(RecordId::from_u64(1_000), 5)])
        .expect("8-bit domain");
    println!(
        "built {} records (+1 insert); {} index entries on the cloud",
        db.len(),
        sys.instance().cloud.storage().index.len()
    );

    println!("\n── Search / Verify / Settle (Algorithms 3–5) ─────────────");
    let query = Query::less_than(60);
    let outcome: SearchOutcome = sys.search(&query, 1_000).expect("honest run");
    assert!(outcome.verified, "honest searches verify on chain");
    let mut got: Vec<u64> = outcome
        .records
        .iter()
        .map(|r| r.as_u64().unwrap())
        .collect();
    got.sort_unstable();
    println!(
        "query `value < 60` → {} verified record(s), cloud paid: {}",
        got.len(),
        outcome.paid_cloud
    );

    // ── Per-phase profile ──────────────────────────────────────────────
    // Setup and Build are per-deployment phases living in the registry;
    // the four per-search phases also ride on the outcome itself.
    println!("\n── Phase profile ─────────────────────────────────────────");
    let snapshot = telemetry.snapshot();
    println!("{:<10} {:>14} {:>14}", "phase", "wall (mean)", "gas");
    for phase in ["setup", "build", "token", "search", "verify", "settle"] {
        let hist = snapshot
            .histogram(&format!("phase.{phase}.ns"))
            .expect("every phase ran");
        let gas = snapshot
            .counter(&format!("phase.{phase}.gas"))
            .expect("every phase metered");
        println!("{phase:<10} {:>14} {gas:>14}", ms(hist.mean()));
    }
    println!(
        "search outcome totals: wall {} | gas {}",
        ms(outcome.profile.total_wall().as_nanos() as u64),
        outcome.profile.total_gas()
    );
    assert_eq!(
        outcome.profile.total_gas(),
        outcome.request_gas + outcome.verify_gas,
        "phase gas reconciles with the tx receipts"
    );

    println!("\n── Gas by category (request + submit txs) ────────────────");
    for (name, gas) in outcome.profile.gas.entries() {
        if gas > 0 {
            println!("{name:<14} {gas:>12}");
        }
    }
    assert_eq!(outcome.profile.gas.total(), outcome.profile.total_gas());

    println!("\n── Prometheus export (phase series) ──────────────────────");
    for line in snapshot
        .to_prometheus_text()
        .lines()
        .filter(|l| l.contains("phase_"))
        .take(12)
    {
        println!("{line}");
    }

    // ── JSON export, self-validated ────────────────────────────────────
    let json = snapshot.to_json();
    slicer_telemetry::json::parse(&json).expect("exporter output is valid JSON");
    for phase in ["setup", "build", "token", "search", "verify", "settle"] {
        assert!(
            json.contains(&format!("phase.{phase}.ns")),
            "JSON export covers phase {phase}"
        );
    }
    println!(
        "\nJSON export: {} bytes, all six phases present",
        json.len()
    );
    println!("TELEMETRY JSON OK");

    // ── Causal trace: Chrome trace-event export, self-validated ────────
    let events = sink.events();
    let chrome = slicer_telemetry::chrome_trace(&events);
    slicer_telemetry::json::parse(&chrome).expect("chrome trace is valid JSON");
    let span_end = |want: &str| {
        events.iter().find_map(|e| match e {
            Event::SpanEnd {
                span, parent, name, ..
            } if name == want => Some((*span, *parent)),
            _ => None,
        })
    };
    // The six protocol phases must be present as *parent* spans: the four
    // per-search phases hang off the protocol.search root, and the cloud's
    // work in turn nests under phase.search.
    let (search_root, _) = span_end("protocol.search").expect("search root span");
    for child in [
        "phase.token",
        "phase.search",
        "phase.verify",
        "phase.settle",
    ] {
        let (_, parent) = span_end(child).expect("phase span recorded");
        assert_eq!(
            parent.map(|p| p.0),
            Some(search_root.0),
            "{child} must be a child of protocol.search"
        );
    }
    for root in ["phase.setup", "phase.build"] {
        let (_, parent) = span_end(root).expect("phase span recorded");
        assert!(parent.is_none(), "{root} is a trace root");
    }
    let (search_phase, _) = span_end("phase.search").expect("search phase span");
    let (_, respond_parent) = span_end("cloud.respond").expect("cloud.respond span");
    assert_eq!(respond_parent.map(|p| p.0), Some(search_phase.0));
    println!(
        "\nChrome trace: {} bytes, {} events — open at chrome://tracing",
        chrome.len(),
        events.len()
    );
    println!("CHROME TRACE OK");

    // ── Leakage audit: the trace reveals exactly Theorem 2's profiles ──
    let auditor = LeakageAuditor::from_events(&events).expect("transcript parses");
    let report = auditor
        .verify(sys.instance().declared_leakage())
        .expect("observed access pattern matches declared leakage");
    println!(
        "Leakage audit: {} build(s), {} search(es), {} token(s) ({} distinct)",
        report.builds, report.searches, report.tokens, report.distinct_tokens
    );
    println!("LEAKAGE AUDIT OK");
    global::reset();
}
