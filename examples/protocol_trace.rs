//! A guided walkthrough of the whole protocol on a 4-bit toy database —
//! prints every artifact the paper's Algorithms 1–5 produce, mirroring the
//! worked example of Fig. 2.
//!
//! ```text
//! cargo run --release --example protocol_trace
//! ```

use slicer_core::{CloudServer, DataOwner, Query, RecordId, SlicerConfig};
use slicer_crypto::HmacDrbg;
use slicer_sore::{Order, SoreScheme};

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .take(8)
        .map(|b| format!("{b:02x}"))
        .collect::<String>()
        + "…"
}

fn main() {
    println!("── SORE on Fig. 2's example ──────────────────────────────");
    // Fig. 2: plaintexts 5 = 0101 and 8 = 1000; queries 6 = 0110, 4 = 0100.
    let sore = SoreScheme::new(b"demo key", 4);
    let mut rng = HmacDrbg::from_u64(1);

    for (x, oc) in [(6u64, Order::Greater), (4u64, Order::Greater)] {
        for y in [5u64, 8] {
            let tuples = sore.token_slice_tuples(b"", x, oc);
            let tk = sore.token(x, oc, &mut rng);
            let ct = sore.encrypt(y, &mut rng);
            println!(
                "token({x} {oc}) vs ct({y}): {} common tuple(s) → {x} {oc} {y} is {}",
                SoreScheme::common_count(&ct, &tk),
                SoreScheme::compare(&ct, &tk),
            );
            if y == 5 && x == 6 {
                println!("  token tuples for x=6 (prefix‖bit‖oc), pre-PRF:");
                for t in &tuples {
                    println!(
                        "    i={} prefix={:0w$b} bit={} op={}",
                        t.index,
                        t.prefix,
                        u8::from(t.bit),
                        t.op,
                        w = (t.index as usize).saturating_sub(1),
                    );
                }
            }
        }
    }

    println!("\n── Build (Algorithm 1) ───────────────────────────────────");
    let config = SlicerConfig::with_bits(4);
    let mut owner = DataOwner::new(config.clone(), 7);
    let db = vec![
        (RecordId::from_u64(1), 5u64),
        (RecordId::from_u64(2), 8),
        (RecordId::from_u64(3), 5),
    ];
    let out = owner.build(&db).expect("4-bit domain");
    println!(
        "records: {:?}",
        db.iter().map(|(_, v)| *v).collect::<Vec<_>>()
    );
    println!(
        "keywords (equality + slices): {}",
        owner.state().trapdoors.len()
    );
    println!("index entries (l → d):");
    for (l, d) in out.entries.iter().take(4) {
        println!("  {} → {}", hex(l), hex(d));
    }
    println!("  … {} total", out.entries.len());
    println!("prime representatives x = H_prime(t‖j‖G1‖G2‖h):");
    for x in out.primes.iter().take(3) {
        println!("  {x:#x}");
    }
    println!("accumulator Ac = g^Πx mod n: {:#x}", out.accumulator);

    println!("\n── Search (Algorithms 3–4) ───────────────────────────────");
    let mut cloud = CloudServer::new(config, owner.keys().trapdoor().public().clone());
    cloud.ingest(&out).expect("fresh cloud");
    let user = owner.delegate();
    let q = Query::less_than(6);
    let tokens = user.tokens_for(&q);
    println!("query `value < 6` → {} token(s):", tokens.len());
    for t in &tokens {
        println!(
            "  (t_j={}, j={}, G1={}, G2={})",
            hex(&t.trapdoor.to_bytes(64)),
            t.updates,
            hex(&t.g1),
            hex(&t.g2)
        );
    }
    let resp = cloud.respond(&tokens);
    for (i, r) in resp.results.iter().enumerate() {
        println!(
            "  slice {i}: {} encrypted result(s), vo = {}",
            r.er.len(),
            hex(&resp.entries[i].vo)
        );
    }

    println!("\n── Verify (Algorithm 5, off-chain replay) ────────────────");
    let params = &owner.config().accumulator;
    let acc = slicer_accumulator::Accumulator::from_value(params, owner.accumulator().clone());
    for (i, (entry, result)) in resp.entries.iter().zip(&resp.results).enumerate() {
        let x = cloud.prime_for(result);
        let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
        println!(
            "  slice {i}: recompute x = {x:#x}; VerifyMem(x, vo) = {}",
            acc.verify(&x, &w)
        );
        assert!(acc.verify(&x, &w));
    }

    let ids = user.decrypt(&resp.results).expect("honest results");
    let mut got: Vec<u64> = ids.iter().map(|r| r.as_u64().unwrap()).collect();
    got.sort_unstable();
    println!("\ndecrypted matches for `value < 6`: records {got:?} (values 5, 5) ✓");
    assert_eq!(got, vec![1, 3]);
}
