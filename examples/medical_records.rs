//! Medical-records scenario from the paper's introduction: a hospital
//! outsources encrypted patient records with multiple numerical attributes
//! (age, heart rate) and an authorized researcher runs verified range
//! queries per attribute — without the cloud ever seeing a plaintext value.
//!
//! ```text
//! cargo run --release --example medical_records
//! ```

use slicer_core::{Query, Record, RecordId, SlicerConfig, SlicerSystem};
use slicer_crypto::Rng;
use slicer_workload::splitmix_stream;

fn main() {
    let mut system = SlicerSystem::setup(SlicerConfig::test_8bit(), 7);

    // Synthesize a patient cohort: age in [20, 90), resting heart rate in
    // [45, 120).
    let mut rng = splitmix_stream(99);
    let patients: Vec<Record> = (0u64..200)
        .map(|i| {
            let age = 20 + rng.next_u64() % 70;
            let hr = 45 + rng.next_u64() % 75;
            Record::with_attrs(
                RecordId::from_u64(i),
                vec![("age".into(), age), ("heart_rate".into(), hr)],
            )
        })
        .collect();
    system
        .build_records(&patients)
        .expect("attributes fit the 8-bit domain");
    println!("outsourced {} encrypted patient records", patients.len());

    // Researcher: elderly cohort (age > 75).
    let q_age = Query::greater_than(75).on_attr("age");
    let elderly = system.search(&q_age, 500).expect("chain ok");
    assert!(elderly.verified);
    let oracle =
        |r: &Record, attr: &str, q: &Query| r.attrs.iter().any(|(a, v)| a == attr && q.matches(*v));
    let expect = patients.iter().filter(|p| oracle(p, "age", &q_age)).count();
    println!(
        "age > 75: {} patients (verified on-chain, {} gas)",
        elderly.records.len(),
        elderly.verify_gas
    );
    assert_eq!(elderly.records.len(), expect);

    // Researcher: bradycardia screen (heart rate < 50) — a different
    // attribute over the same encrypted index.
    let q_hr = Query::less_than(50).on_attr("heart_rate");
    let brady = system.search(&q_hr, 500).expect("chain ok");
    assert!(brady.verified);
    let expect = patients
        .iter()
        .filter(|p| oracle(p, "heart_rate", &q_hr))
        .count();
    println!(
        "heart_rate < 50: {} patients (verified)",
        brady.records.len()
    );
    assert_eq!(brady.records.len(), expect);

    // Attributes are cryptographically isolated: the same threshold on the
    // other attribute gives a different cohort.
    let q_cross = Query::less_than(50).on_attr("age");
    let young = system.search(&q_cross, 500).expect("chain ok");
    assert!(young.verified);
    println!(
        "age < 50: {} patients — attribute isolation holds ✓",
        young.records.len()
    );

    // New admissions arrive (forward-secure insert); a repeated query sees
    // them and still verifies against the refreshed on-chain digest.
    let admissions: Vec<Record> = (1000u64..1010)
        .map(|i| {
            Record::with_attrs(
                RecordId::from_u64(i),
                vec![("age".into(), 80), ("heart_rate".into(), 60)],
            )
        })
        .collect();
    let receipt = system.insert_records(&admissions).expect("fits the domain");
    println!(
        "admitted {} patients; on-chain digest refresh cost {} gas",
        admissions.len(),
        receipt.gas_used
    );

    let elderly2 = system.search(&q_age, 500).expect("chain ok");
    assert!(elderly2.verified);
    assert_eq!(
        elderly2.records.len(),
        elderly.records.len() + admissions.len(),
        "all admissions are age 80 > 75"
    );
    println!(
        "repeat age > 75 after admissions: {} records, still verified ✓",
        elderly2.records.len()
    );
}
