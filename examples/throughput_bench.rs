//! Sustained-throughput benchmark: N seeded searchers, Zipf query mix.
//!
//! This is the measurement tool behind the committed
//! `BENCH_throughput.json`. By default it drives a fresh in-process
//! deployment; point `SLICER_BENCH_CONNECT` at a running `slicerd`
//! endpoint to drive the daemon over the wire instead (the dataset is
//! ingested first, outside the measured window).
//!
//! ```text
//! SLICER_BENCH_N=200 SLICER_BENCH_SEARCHERS=4 SLICER_BENCH_QUERIES=8 \
//!     cargo run --release --example throughput_bench -- BENCH_throughput.json
//! ```

use slicer_workload::{run_against_daemon, run_in_process, ThroughputSpec};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let spec = ThroughputSpec {
        records: env_u64("SLICER_BENCH_N", 200) as usize,
        value_bits: env_u64("SLICER_BENCH_BITS", 8) as u8,
        seed: env_u64("SLICER_BENCH_SEED", 42),
        searchers: env_u64("SLICER_BENCH_SEARCHERS", 4) as usize,
        queries_per_searcher: env_u64("SLICER_BENCH_QUERIES", 8) as usize,
        zipf_exponent: 1.0,
        payment: 1_000,
    };
    let out = std::env::args().nth(1);

    let report = match std::env::var("SLICER_BENCH_CONNECT") {
        Ok(ep) => {
            let endpoint = slicer_daemon::Endpoint::parse(&ep).expect("valid endpoint");
            let ingested = slicer_workload::ingest_into_daemon(&spec, &endpoint)
                .expect("dataset ingests into the daemon");
            println!("target             : slicerd at {ep} ({ingested} records ingested)");
            let pool = slicer_par::Pool::new(spec.searchers);
            run_against_daemon(&spec, &endpoint, &pool).expect("daemon run succeeds")
        }
        Err(_) => {
            println!("target             : in-process SlicerSystem");
            run_in_process(&spec).expect("in-process run succeeds")
        }
    };

    println!("records            : {}", spec.records);
    println!("searchers          : {}", spec.searchers);
    println!("queries            : {}", report.searches);
    println!("verified           : {}", report.verified);
    println!("window (s)         : {:.3}", report.wall_ns as f64 / 1e9);
    println!("searches/sec       : {:.1}", report.searches_per_sec());
    println!("p99 latency (ms)   : {:.3}", report.p99_ns as f64 / 1e6);
    println!("gas/search         : {}", report.mean_gas);
    if let Some(path) = out {
        let path = std::path::PathBuf::from(path);
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("results directory is creatable");
            }
        }
        std::fs::write(&path, report.to_json()).expect("results file is writable");
        println!("wrote {}", path.display());
    }

    if report.verified == report.searches {
        println!("THROUGHPUT BENCH OK");
    } else {
        println!("THROUGHPUT BENCH UNVERIFIED");
        std::process::exit(1);
    }
}
