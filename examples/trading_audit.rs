//! Fair-exchange scenario: a trading firm outsources encrypted transaction
//! values; an auditor pays per query. The blockchain escrow makes the
//! exchange fair in both directions:
//!
//! * a **malicious cloud** that drops, forges or mis-binds results is
//!   caught by the contract and the auditor's fee is refunded;
//! * a **quasi-honest auditor** cannot repudiate a correct result — the
//!   contract, not the auditor, decides whether the cloud gets paid.
//!
//! ```text
//! cargo run --release --example trading_audit
//! ```

use slicer_core::{malicious, Query, RecordId, SlicerConfig, SlicerSystem};
use slicer_workload::DatasetSpec;

fn main() {
    let mut system = SlicerSystem::setup(SlicerConfig::test_16bit(), 31337);

    // 500 trades with 16-bit notional values.
    let trades: Vec<(RecordId, u64)> = DatasetSpec::uniform(500, 16, 8)
        .generate()
        .into_iter()
        .map(|(id, v)| (RecordId(id), v))
        .collect();
    system.build(&trades).expect("16-bit domain");
    println!("outsourced {} encrypted trades", trades.len());

    let (_, auditor, cloud) = system.instance().addresses();
    let fee = 5_000u128;
    let query = Query::greater_than(60_000); // large-trade audit

    // Round 1: honest cloud. The contract verifies and pays the fee out of
    // escrow — the auditor cannot deny the result.
    let a0 = system.chain().balance(&auditor);
    let c0 = system.chain().balance(&cloud);
    let honest = system.search(&query, fee).expect("chain ok");
    assert!(honest.verified);
    println!(
        "honest audit: {} large trades, cloud paid {} wei (auditor {} → {})",
        honest.records.len(),
        fee,
        a0,
        system.chain().balance(&auditor)
    );
    assert_eq!(system.chain().balance(&cloud), c0 + fee);

    // Round 2: the cloud suppresses one matching trade. Verification fails
    // on-chain and the fee is refunded.
    let a1 = system.chain().balance(&auditor);
    let c1 = system.chain().balance(&cloud);
    let cheated = system
        .search_with(&query, fee, malicious::drop_record)
        .expect("chain ok");
    assert!(!cheated.verified, "incomplete result must fail");
    assert_eq!(system.chain().balance(&auditor), a1, "fee refunded");
    assert_eq!(system.chain().balance(&cloud), c1, "cheating cloud unpaid");
    println!("suppressed-result attack detected; fee refunded ✓");

    // Round 3: the cloud forges an extra result.
    let forged = vec![0xAAu8; 32];
    let injected = system
        .search_with(&query, fee, move |r| malicious::inject_record(r, forged))
        .expect("chain ok");
    assert!(!injected.verified, "forged result must fail");
    println!("forged-result attack detected ✓");

    // Round 4: the cloud returns correct results but swaps which slice
    // they belong to (proof/result binding attack).
    let swapped = system
        .search_with(&query, fee, malicious::swap_results)
        .expect("chain ok");
    assert!(!swapped.verified, "mis-bound results must fail");
    println!("result/proof binding attack detected ✓");

    // Round 5: garbage witness.
    let corrupt = system
        .search_with(&query, fee, malicious::corrupt_witness)
        .expect("chain ok");
    assert!(!corrupt.verified, "corrupt witness must fail");
    println!("corrupt-witness attack detected ✓");

    println!(
        "final balances — auditor: {}, cloud: {} (exactly one honest fee moved)",
        system.chain().balance(&auditor),
        system.chain().balance(&cloud)
    );
}
