//! Public verifiability in action: a third-party auditor who holds **no
//! keys at all** replays the chain — verifying the hash chain, reading the
//! contract's settlement events and recomputing gas totals — and learns
//! exactly who was paid for which request, and nothing about the data.
//!
//! ```text
//! cargo run --release --example public_audit
//! ```

use slicer_core::{malicious, Query, RecordId, SlicerConfig, SlicerSystem};

fn main() {
    let mut system = SlicerSystem::setup(SlicerConfig::test_8bit(), 555);
    let db: Vec<(RecordId, u64)> = (0u64..80)
        .map(|i| (RecordId::from_u64(i), (i * 17) % 256))
        .collect();
    system.build(&db).expect("8-bit domain");

    // A few searches: two honest, one cheating cloud.
    system.search(&Query::less_than(64), 100).expect("chain ok");
    system
        .search_with(&Query::less_than(200), 100, malicious::drop_record)
        .expect("chain ok");
    system.search(&Query::equal(17), 100).expect("chain ok");

    // ── The auditor's view: only public chain data from here on. ──
    let chain = system.chain();

    // 1. Chain integrity.
    assert!(chain.verify_chain());
    println!(
        "auditor: hash chain verified over {} blocks",
        chain.height()
    );

    // 2. Accumulator freshness events.
    let updates = chain.logs_by_topic("AccumulatorUpdated");
    println!(
        "auditor: {} accumulator update(s) by the owner",
        updates.len()
    );
    assert_eq!(updates.len(), 1, "one build in this scenario");

    // 3. Settlement outcomes: request id → paid or refunded.
    let settlements = chain.logs_by_topic("Settled");
    assert_eq!(settlements.len(), 3);
    let mut paid = 0;
    let mut refunded = 0;
    for (i, log) in settlements.iter().enumerate() {
        let ok = *log.data.last().expect("outcome byte") == 1;
        println!(
            "auditor: request #{i} settled — {}",
            if ok { "cloud paid" } else { "user refunded" }
        );
        if ok {
            paid += 1;
        } else {
            refunded += 1;
        }
    }
    assert_eq!((paid, refunded), (2, 1));

    // 4. Requests registered vs settled must balance.
    let requests = chain.logs_by_topic("SearchRequested");
    assert_eq!(requests.len(), settlements.len());
    println!(
        "auditor: {} request(s), {} settlement(s) — books balance ✓",
        requests.len(),
        settlements.len()
    );

    // 5. Gas accounting from receipts alone.
    let total_gas: u64 = chain
        .blocks()
        .iter()
        .flat_map(|b| &b.receipts)
        .map(|r| r.gas_used)
        .sum();
    println!("auditor: total gas consumed on chain: {total_gas}");

    // The auditor saw outcomes and costs — but never a plaintext value,
    // record id, or key. That is the public-verifiability property of
    // Table I, observed end to end.
    println!("audit complete: no key material was needed ✓");
}
