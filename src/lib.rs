//! # slicer-repro
//!
//! Umbrella crate for the Slicer reproduction: re-exports the whole
//! workspace under one roof and hosts the runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! Start from [`core`] (the protocol) and the crate-level example there;
//! `DESIGN.md` maps every paper section to a module and `EXPERIMENTS.md`
//! records the reproduced evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use slicer_accumulator as accumulator;
pub use slicer_bignum as bignum;
pub use slicer_chain as chain;
pub use slicer_core as core;
pub use slicer_crypto as crypto;
pub use slicer_mshash as mshash;
pub use slicer_sore as sore;
pub use slicer_store as store;
pub use slicer_trapdoor as trapdoor;
pub use slicer_workload as workload;
