//! A compact binary serde codec (bincode-style, little-endian,
//! length-prefixed) so cloud state and protocol messages can be persisted
//! and shipped without external format crates.
//!
//! The format is *not* self-describing: decoding is driven by the target
//! type, exactly like the wire formats real SSE deployments use. Integers
//! are fixed-width little-endian; `str`/`bytes`/sequences/maps carry a
//! `u64` length prefix; options a one-byte tag; enum variants a `u32`
//! index.
//!
//! # Examples
//!
//! ```
//! use slicer_store::codec::{from_bytes, to_bytes};
//!
//! let state = slicer_store::CloudState::new();
//! let bytes = to_bytes(&state)?;
//! let back: slicer_store::CloudState = from_bytes(&bytes)?;
//! assert_eq!(back.index.len(), 0);
//! # Ok::<(), slicer_store::codec::CodecError>(())
//! ```

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::error::Error;
use std::fmt;

/// Serializes a value to bytes.
///
/// # Errors
///
/// Returns [`CodecError`] for values the format cannot represent
/// (unsized sequences).
pub fn to_bytes<T: Serialize>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut ser = BinSerializer { out: Vec::new() };
    value.serialize(&mut ser)?;
    Ok(ser.out)
}

/// Deserializes a value from bytes produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed input, or when
/// trailing bytes remain.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut de = BinDeserializer { input: bytes };
    let value = T::deserialize(&mut de)?;
    if !de.input.is_empty() {
        return Err(CodecError::msg(format!(
            "{} trailing bytes after value",
            de.input.len()
        )));
    }
    Ok(value)
}

/// Errors raised by the binary codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(String);

impl CodecError {
    fn msg(s: impl Into<String>) -> Self {
        CodecError(s.into())
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

struct BinSerializer {
    out: Vec<u8>,
}

impl BinSerializer {
    fn put_len(&mut self, len: usize) {
        self.out.extend_from_slice(&(len as u64).to_le_bytes());
    }
}

macro_rules! ser_int {
    ($method:ident, $ty:ty) => {
        fn $method(self, v: $ty) -> Result<(), CodecError> {
            self.out.extend_from_slice(&v.to_le_bytes());
            Ok(())
        }
    };
}

impl ser::Serializer for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }

    ser_int!(serialize_i8, i8);
    ser_int!(serialize_i16, i16);
    ser_int!(serialize_i32, i32);
    ser_int!(serialize_i64, i64);
    ser_int!(serialize_i128, i128);
    ser_int!(serialize_u8, u8);
    ser_int!(serialize_u16, u16);
    ser_int!(serialize_u32, u32);
    ser_int!(serialize_u64, u64);
    ser_int!(serialize_u128, u128);
    ser_int!(serialize_f32, f32);
    ser_int!(serialize_f64, f64);

    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.serialize_u32(v as u32)
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_len(v.len());
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.serialize_u32(variant_index)?;
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::msg("sequences must be sized"))?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or_else(|| CodecError::msg("maps must be sized"))?;
        self.put_len(len);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.serialize_u32(variant_index)?;
        Ok(self)
    }
}

macro_rules! ser_compound {
    ($trait:path, $elem:ident $(, $key:ident)?) => {
        impl $trait for &mut BinSerializer {
            type Ok = ();
            type Error = CodecError;

            fn $elem<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }

            $(
                fn $key<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                    value.serialize(&mut **self)
                }
            )?

            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

ser_compound!(ser::SerializeSeq, serialize_element);
ser_compound!(ser::SerializeTuple, serialize_element);
ser_compound!(ser::SerializeTupleStruct, serialize_field);
ser_compound!(ser::SerializeTupleVariant, serialize_field);
ser_compound!(ser::SerializeMap, serialize_value, serialize_key);

impl ser::SerializeStruct for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut BinSerializer {
    type Ok = ();
    type Error = CodecError;

    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }

    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

struct BinDeserializer<'de> {
    input: &'de [u8],
}

impl<'de> BinDeserializer<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::msg("truncated input"));
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let b = self.take(8)?;
        let len = u64::from_le_bytes(b.try_into().expect("len 8"));
        usize::try_from(len).map_err(|_| CodecError::msg("length overflow"))
    }
}

macro_rules! de_int {
    ($method:ident, $visit:ident, $ty:ty, $n:expr) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let b = self.take($n)?;
            visitor.$visit(<$ty>::from_le_bytes(b.try_into().expect("sized")))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut BinDeserializer<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::msg("format is not self-describing"))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError::msg(format!("invalid bool byte {b}"))),
        }
    }

    de_int!(deserialize_i8, visit_i8, i8, 1);
    de_int!(deserialize_i16, visit_i16, i16, 2);
    de_int!(deserialize_i32, visit_i32, i32, 4);
    de_int!(deserialize_i64, visit_i64, i64, 8);
    de_int!(deserialize_i128, visit_i128, i128, 16);
    de_int!(deserialize_u8, visit_u8, u8, 1);
    de_int!(deserialize_u16, visit_u16, u16, 2);
    de_int!(deserialize_u32, visit_u32, u32, 4);
    de_int!(deserialize_u64, visit_u64, u64, 8);
    de_int!(deserialize_u128, visit_u128, u128, 16);
    de_int!(deserialize_f32, visit_f32, f32, 4);
    de_int!(deserialize_f64, visit_f64, f64, 8);

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let b = self.take(4)?;
        let code = u32::from_le_bytes(b.try_into().expect("len 4"));
        visitor.visit_char(char::from_u32(code).ok_or_else(|| CodecError::msg("invalid char"))?)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        visitor
            .visit_borrowed_str(std::str::from_utf8(bytes).map_err(|e| CodecError::msg(e.to_string()))?)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError::msg(format!("invalid option tag {b}"))),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(Counted { de: self, left: len })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(Counted { de: self, left: len })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumReader { de: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::msg("identifiers are not encoded"))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::msg("cannot skip values in a non-self-describing format"))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct Counted<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
    left: usize,
}

impl<'de> de::SeqAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

impl<'de> de::MapAccess<'de> for Counted<'_, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.left == 0 {
            return Ok(None);
        }
        self.left -= 1;
        seed.deserialize(&mut *self.de).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.de)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.left)
    }
}

struct EnumReader<'a, 'de> {
    de: &'a mut BinDeserializer<'de>,
}

impl<'de> de::EnumAccess<'de> for EnumReader<'_, 'de> {
    type Error = CodecError;
    type Variant = Self;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self), CodecError> {
        let b = self.de.take(4)?;
        let index = u32::from_le_bytes(b.try_into().expect("len 4"));
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((value, self))
    }
}

impl<'de> de::VariantAccess<'de> for EnumReader<'_, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.de)
    }

    fn tuple_variant<V: Visitor<'de>>(self, len: usize, visitor: V) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.de, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::HashMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(v: T) {
        let bytes = to_bytes(&v).expect("encodes");
        let back: T = from_bytes(&bytes).expect("decodes");
        assert_eq!(back, v);
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Sample {
        Unit,
        Newtype(u64),
        Tuple(u8, String),
        Struct { a: Option<bool>, b: Vec<u16> },
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Nested {
        map: HashMap<String, Vec<u8>>,
        arr: [u8; 4],
        pair: (i32, char),
        opt: Option<Box<Nested>>,
        variant: Sample,
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(0xDEAD_BEEFu32);
        roundtrip(-12345i64);
        roundtrip(u128::MAX);
        roundtrip(3.5f64);
        roundtrip('λ');
        roundtrip(String::from("hello, 世界"));
        roundtrip(Option::<u8>::None);
        roundtrip(Some(7u8));
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Sample::Unit);
        roundtrip(Sample::Newtype(99));
        roundtrip(Sample::Tuple(1, "x".into()));
        roundtrip(Sample::Struct {
            a: Some(false),
            b: vec![1, 2, 3],
        });
    }

    #[test]
    fn nested_structures_roundtrip() {
        let mut map = HashMap::new();
        map.insert("k".to_string(), vec![9u8, 8, 7]);
        roundtrip(Nested {
            map,
            arr: [1, 2, 3, 4],
            pair: (-5, 'z'),
            opt: Some(Box::new(Nested {
                map: HashMap::new(),
                arr: [0; 4],
                pair: (0, 'a'),
                opt: None,
                variant: Sample::Unit,
            })),
            variant: Sample::Newtype(3),
        });
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&12345u64).expect("encodes");
        let err = from_bytes::<u64>(&bytes[..4]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&1u8).expect("encodes");
        bytes.push(0);
        assert!(from_bytes::<u8>(&bytes).is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
    }

    #[test]
    fn cloud_state_roundtrip() {
        use crate::CloudState;
        let mut state = CloudState::new();
        state.index.put([3u8; 32], vec![1, 2, 3]).expect("fresh");
        state.primes.push(slicer_bignum::BigUint::from(101u64));
        state.accumulator = Some(slicer_bignum::BigUint::from(0xFFFFu64));
        let bytes = to_bytes(&state).expect("encodes");
        let mut back: CloudState = from_bytes(&bytes).expect("decodes");
        assert_eq!(back.index.get(&[3u8; 32]), Some([1u8, 2, 3].as_slice()));
        assert_eq!(back.primes.position(&slicer_bignum::BigUint::from(101u64)), Some(0));
        assert_eq!(back.accumulator, state.accumulator);
    }
}
