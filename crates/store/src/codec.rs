//! Binary persistence entry points for cloud state and protocol messages.
//!
//! The actual wire format lives in [`slicer_crypto::codec`] (fixed-width
//! little-endian integers, `u64` length prefixes, one-byte option tags,
//! `u32` enum variant indices); this module re-exports it under the
//! historical `slicer_store::codec` path so persistence call sites keep a
//! storage-flavoured import.
//!
//! The format is *not* self-describing: decoding is driven by the target
//! type, exactly like the wire formats real SSE deployments use.
//!
//! # Examples
//!
//! ```
//! use slicer_store::codec::{from_bytes, to_bytes};
//!
//! let state = slicer_store::CloudState::new();
//! let bytes = to_bytes(&state)?;
//! let back: slicer_store::CloudState = from_bytes(&bytes)?;
//! assert_eq!(back.index.len(), 0);
//! # Ok::<(), slicer_store::codec::CodecError>(())
//! ```

pub use slicer_crypto::codec::{from_bytes, to_bytes, CodecError, Decode, Encode, Reader};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CloudState, PrimeList};
    use slicer_bignum::BigUint;

    #[test]
    fn cloud_state_roundtrips() {
        let mut s = CloudState::new();
        s.index.put([3u8; 32], vec![9, 9, 9]).unwrap();
        s.primes.push(BigUint::from(101u64));
        s.accumulator = Some(BigUint::from(0xDEADu64));
        let bytes = to_bytes(&s).unwrap();
        let back: CloudState = from_bytes(&bytes).unwrap();
        assert_eq!(back.index.get(&[3u8; 32]), Some([9, 9, 9].as_slice()));
        assert_eq!(back.primes.as_slice(), s.primes.as_slice());
        assert_eq!(back.accumulator, s.accumulator);
    }

    #[test]
    fn restored_prime_list_lookup_works() {
        let mut list: PrimeList = (0u64..8).map(|i| BigUint::from(100 + i)).collect();
        let bytes = to_bytes(&list).unwrap();
        let mut back: PrimeList = from_bytes(&bytes).unwrap();
        assert_eq!(
            back.position(&BigUint::from(105u64)),
            list.position(&BigUint::from(105u64))
        );
        // Idempotent push still finds the existing slot after a restore.
        assert_eq!(back.push(BigUint::from(100u64)), 0);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u64).unwrap();
        bytes.push(0);
        assert!(from_bytes::<u64>(&bytes).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = to_bytes(&7u64).unwrap();
        assert!(from_bytes::<u64>(&bytes[..4]).is_err());
    }
}
