//! The history-independent encrypted index `I`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Width of an index label `l = F(G1, t ‖ c)` (a full PRF output).
pub const INDEX_LABEL_LEN: usize = 32;

/// An index label.
pub type IndexLabel = [u8; INDEX_LABEL_LEN];

/// Error raised when the owner ships a label that already exists — labels
/// are PRF outputs over unique `(trapdoor, counter)` pairs, so a collision
/// indicates either corruption or a misbehaving owner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateLabelError {
    label: IndexLabel,
}

impl fmt::Display for DuplicateLabelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "index label {:02x}{:02x}… already present",
            self.label[0], self.label[1]
        )
    }
}

impl Error for DuplicateLabelError {}

/// The encrypted index: a dictionary from PRF labels to masked record
/// ciphertexts `d = F(G2, t‖c) ⊕ Enc(K_R, R)`.
///
/// Backed by an ordered map keyed on the PRF label, which is *history
/// independent* in the sense relevant to Section VI-A: the layout is a pure
/// function of the label set, revealing nothing about insertion order, and
/// the server only ever addresses entries through PRF labels it derives
/// from search tokens. Label ordering also makes iteration (and the codec
/// bytes and persistence checksums derived from it) deterministic.
#[derive(Debug, Clone, Default)]
pub struct EncryptedIndex {
    entries: BTreeMap<IndexLabel, Vec<u8>>,
    value_bytes: usize,
}

slicer_crypto::impl_codec!(EncryptedIndex {
    entries,
    value_bytes,
});

impl EncryptedIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `label → data`.
    ///
    /// # Errors
    ///
    /// Returns [`DuplicateLabelError`] if the label is already present.
    pub fn put(&mut self, label: IndexLabel, data: Vec<u8>) -> Result<(), DuplicateLabelError> {
        if self.entries.contains_key(&label) {
            return Err(DuplicateLabelError { label });
        }
        self.value_bytes += data.len();
        self.entries.insert(label, data);
        Ok(())
    }

    /// Looks up a label (`I.find(l)` / `I.get(l)` in Algorithm 4).
    pub fn get(&self, label: &IndexLabel) -> Option<&[u8]> {
        let hit = self.entries.get(label).map(Vec::as_slice);
        if hit.is_some() {
            slicer_telemetry::global::count("store.index.lookup.hit", 1);
        } else {
            slicer_telemetry::global::count("store.index.lookup.miss", 1);
        }
        hit
    }

    /// Whether a label exists.
    pub fn contains(&self, label: &IndexLabel) -> bool {
        self.entries.contains_key(label)
    }

    /// Number of entries `p`.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges a batch of new entries (the `Insert` protocol's index delta).
    ///
    /// # Errors
    ///
    /// Returns the first duplicate label encountered; entries before the
    /// failure remain applied (the protocol treats this as fatal corruption
    /// and re-syncs).
    pub fn extend(
        &mut self,
        batch: impl IntoIterator<Item = (IndexLabel, Vec<u8>)>,
    ) -> Result<(), DuplicateLabelError> {
        let mut span = slicer_telemetry::global::span("store.extend");
        let mut count = 0u64;
        for (l, d) in batch {
            self.put(l, d)?;
            count += 1;
        }
        span.attr("entries", count);
        Ok(())
    }

    /// Storage footprint in bytes (labels + stored values).
    pub fn size_bytes(&self) -> usize {
        self.entries.len() * INDEX_LABEL_LEN + self.value_bytes
    }

    /// All entries in ascending label order. Persistence chunks the index
    /// into segments through this, so segment contents (and their
    /// checksums) are identical across runs.
    pub fn sorted_entries(&self) -> Vec<(&IndexLabel, &Vec<u8>)> {
        self.entries.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut idx = EncryptedIndex::new();
        idx.put([7u8; 32], vec![1, 2, 3]).unwrap();
        assert_eq!(idx.get(&[7u8; 32]), Some([1, 2, 3].as_slice()));
        assert_eq!(idx.get(&[8u8; 32]), None);
    }

    #[test]
    fn duplicate_labels_rejected() {
        let mut idx = EncryptedIndex::new();
        idx.put([7u8; 32], vec![1]).unwrap();
        let err = idx.put([7u8; 32], vec![2]).unwrap_err();
        assert!(err.to_string().contains("already present"));
        // Original value untouched.
        assert_eq!(idx.get(&[7u8; 32]), Some([1].as_slice()));
    }

    #[test]
    fn size_tracks_labels_and_values() {
        let mut idx = EncryptedIndex::new();
        idx.put([1u8; 32], vec![0u8; 48]).unwrap();
        idx.put([2u8; 32], vec![0u8; 48]).unwrap();
        assert_eq!(idx.size_bytes(), 2 * (32 + 48));
    }

    #[test]
    fn extend_batch() {
        let mut idx = EncryptedIndex::new();
        idx.extend((0u8..10).map(|i| ([i; 32], vec![i]))).unwrap();
        assert_eq!(idx.len(), 10);
    }

    #[test]
    fn sorted_entries_are_label_ordered() {
        let mut idx = EncryptedIndex::new();
        idx.extend((0u8..10).rev().map(|i| ([i; 32], vec![i])))
            .unwrap();
        let labels: Vec<u8> = idx.sorted_entries().iter().map(|(l, _)| l[0]).collect();
        assert_eq!(labels, (0u8..10).collect::<Vec<_>>());
    }
}
