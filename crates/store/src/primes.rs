//! The prime list `X` held by the cloud for witness generation.

use slicer_bignum::BigUint;
use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use std::collections::HashMap;

/// An append-only list of prime representatives with O(1) index lookup.
///
/// Algorithm 2 never removes primes — superseded keyword states stay
/// accumulated, and freshness is enforced by the *user's* token pointing at
/// the newest `(t_j, j)` state (whose prime is the only one the contract
/// will recompute).
#[derive(Debug, Clone, Default)]
pub struct PrimeList {
    primes: Vec<BigUint>,
    positions: HashMap<BigUint, usize>,
}

impl Encode for PrimeList {
    fn encode(&self, out: &mut Vec<u8>) {
        // Only the primes travel; the lookup table is derived state.
        self.primes.encode(out);
    }
}

impl Decode for PrimeList {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let primes = Vec::<BigUint>::decode(reader)?;
        let positions = primes
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), i))
            .collect();
        Ok(PrimeList { primes, positions })
    }
}

impl PrimeList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a prime, returning its index. Re-adding an existing prime
    /// returns the original index without duplicating it.
    pub fn push(&mut self, prime: BigUint) -> usize {
        self.rebuild_if_needed();
        if let Some(&i) = self.positions.get(&prime) {
            return i;
        }
        let i = self.primes.len();
        self.positions.insert(prime.clone(), i);
        self.primes.push(prime);
        i
    }

    /// Index of a prime, if present.
    pub fn position(&mut self, prime: &BigUint) -> Option<usize> {
        self.rebuild_if_needed();
        self.positions.get(prime).copied()
    }

    /// The primes in insertion order.
    pub fn as_slice(&self) -> &[BigUint] {
        &self.primes
    }

    /// Number of primes `q`.
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// True when no primes are stored.
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.primes
            .iter()
            .map(|p| p.bit_len().div_ceil(8) as usize)
            .sum()
    }

    /// Restores the lookup table after deserialization (only the primes travel).
    fn rebuild_if_needed(&mut self) {
        if self.positions.len() != self.primes.len() {
            self.positions = self
                .primes
                .iter()
                .enumerate()
                .map(|(i, p)| (p.clone(), i))
                .collect();
        }
    }
}

impl FromIterator<BigUint> for PrimeList {
    fn from_iter<I: IntoIterator<Item = BigUint>>(iter: I) -> Self {
        let mut list = PrimeList::new();
        for p in iter {
            list.push(p);
        }
        list
    }
}

impl Extend<BigUint> for PrimeList {
    fn extend<I: IntoIterator<Item = BigUint>>(&mut self, iter: I) {
        for p in iter {
            self.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn push_and_lookup() {
        let mut list = PrimeList::new();
        assert_eq!(list.push(p(101)), 0);
        assert_eq!(list.push(p(103)), 1);
        assert_eq!(list.position(&p(101)), Some(0));
        assert_eq!(list.position(&p(999)), None);
    }

    #[test]
    fn idempotent_push() {
        let mut list = PrimeList::new();
        list.push(p(101));
        assert_eq!(list.push(p(101)), 0);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn collects_from_iterator() {
        let list: PrimeList = (0u64..5).map(|i| p(100 + i)).collect();
        assert_eq!(list.len(), 5);
    }

    #[test]
    fn size_counts_bytes() {
        let mut list = PrimeList::new();
        list.push(p(0xFFFF)); // 2 bytes
        list.push(p(0xFF)); // 1 byte
        assert_eq!(list.size_bytes(), 3);
    }
}
