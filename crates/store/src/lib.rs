//! # slicer-store
//!
//! Cloud-side storage for the Slicer protocol: the encrypted index `I`, the
//! prime list `X` and the cached accumulation value `Ac` that the data owner
//! ships to the cloud in Algorithms 1 and 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod index;
mod primes;

pub use index::{DuplicateLabelError, EncryptedIndex, IndexLabel, INDEX_LABEL_LEN};
pub use primes::PrimeList;

use slicer_bignum::BigUint;

/// Everything the cloud persists for one Slicer instance.
///
/// # Examples
///
/// ```
/// use slicer_store::CloudState;
/// let state = CloudState::new();
/// assert_eq!(state.index.len(), 0);
/// assert_eq!(state.primes.len(), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CloudState {
    /// The encrypted index `I` (label → masked record ciphertext).
    pub index: EncryptedIndex,
    /// The prime list `X` backing witness generation.
    pub primes: PrimeList,
    /// The latest accumulation value `Ac` (mirrors the on-chain digest).
    pub accumulator: Option<BigUint>,
}

slicer_crypto::impl_codec!(CloudState {
    index,
    primes,
    accumulator,
});

impl CloudState {
    /// An empty cloud state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total storage footprint in bytes (index entries + prime list),
    /// the quantity plotted in Fig. 4.
    pub fn storage_bytes(&self) -> usize {
        self.index.size_bytes() + self.primes.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_accounts_both_components() {
        let mut s = CloudState::new();
        s.index.put([1u8; 32], vec![0u8; 32]).unwrap();
        s.primes.push(BigUint::from(97u64));
        // 32-byte label + 32-byte value + 1-byte prime.
        assert_eq!(s.storage_bytes(), 65);
    }
}
