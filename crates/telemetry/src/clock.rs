//! Injectable time sources.
//!
//! Spans measure durations through a [`Clock`] rather than calling
//! [`std::time::Instant`] directly, so tests can substitute a
//! [`LogicalClock`] and obtain byte-identical telemetry transcripts from
//! same-seed runs — real wall-clock readings would differ between runs
//! even when the protocol itself is deterministic.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds elapsed since an arbitrary (per-clock) origin.
    fn now_nanos(&self) -> u64;
}

/// Real wall-clock time, anchored at clock construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // Saturate instead of wrapping: a process does not run 585 years.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic clock: every reading advances a counter by a fixed
/// step, so a run's sequence of timestamps depends only on the sequence
/// of telemetry calls — exactly what same-seed reproducibility needs.
#[derive(Debug)]
pub struct LogicalClock {
    ticks: AtomicU64,
    step: u64,
}

impl LogicalClock {
    /// A logical clock advancing 1 ns per reading.
    pub fn new() -> Self {
        Self::with_step(1)
    }

    /// A logical clock advancing `step` ns per reading.
    pub fn with_step(step: u64) -> Self {
        LogicalClock {
            ticks: AtomicU64::new(0),
            step,
        }
    }
}

impl Default for LogicalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for LogicalClock {
    fn now_nanos(&self) -> u64 {
        self.ticks.fetch_add(self.step, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_monotonic() {
        let c = MonotonicClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn logical_clock_is_deterministic() {
        let a = LogicalClock::with_step(3);
        let b = LogicalClock::with_step(3);
        for _ in 0..5 {
            assert_eq!(a.now_nanos(), b.now_nanos());
        }
        assert_eq!(a.now_nanos(), 15);
    }
}
