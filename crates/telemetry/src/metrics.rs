//! The metrics registry: counters, gauges and fixed-bucket histograms.
//!
//! Everything is lock-free on the hot path: registration takes a write
//! lock once per name, after which recording is a handful of relaxed
//! atomic operations. Names are dot-separated paths
//! (`"phase.search.ns"`, `"cloud.index.hits"`); the exporters map them to
//! output-format-legal identifiers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of histogram buckets: one per possible bit length of a `u64`
/// observation, plus a dedicated zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` observations (typically
/// nanoseconds). Bucket `0` holds zeros; bucket `i ≥ 1` holds values with
/// bit length `i`, i.e. the range `[2^(i-1), 2^i - 1]`. Power-of-two
/// buckets keep recording branch-free and still resolve latency
/// distributions to within 2×, which is what phase profiling needs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value: its bit length (0 for 0).
pub(crate) fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub(crate) fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (`None` before the first observation).
    pub fn min(&self) -> Option<u64> {
        let m = self.min.load(Ordering::Relaxed);
        (self.count() > 0).then_some(m)
    }

    /// Largest observation (`None` before the first observation).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then_some(self.max.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), estimated by rank
    /// interpolation inside the bucket containing the target rank, with
    /// the bucket's bounds first clamped to the observed `[min, max]`
    /// range. Returns `None` before the first observation.
    ///
    /// The clamp-then-interpolate order matters: a 2-observation
    /// histogram whose values share one power-of-two bucket used to
    /// report p50 == max (the bucket's upper bound clamped to max);
    /// interpolating rank 1-of-2 across the clamped `[min, max]` span
    /// returns their midpoint instead — never above the mean for n = 2.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        if target == count {
            // The top rank is the largest observation — exact, so skip
            // interpolation (which could round it down by one step).
            return self.max();
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let mut cumulative = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if cumulative + n >= target {
                let lo = bucket_lower_bound(i).max(min);
                let hi = bucket_upper_bound(i).min(max);
                if hi <= lo {
                    return Some(lo);
                }
                // `pos` is the target's 1-based rank within this bucket;
                // u128 keeps `width * pos` overflow-free for the full
                // u64 value range.
                let pos = target - cumulative;
                let width = (hi - lo) as u128;
                let value = lo as u128 + width * pos as u128 / n as u128;
                return Some(value as u64);
            }
            cumulative += n;
        }
        self.max()
    }

    /// Raw bucket counts (for exporters).
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// A registry of named counters, gauges and histograms.
///
/// Counters only go up; gauges are set to the latest value; histograms
/// accumulate latency-style observations. Lookup order is a `BTreeMap`
/// so exports are deterministically sorted by name.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map.read().expect("metrics lock poisoned").get(name) {
        return Arc::clone(v);
    }
    let mut w = map.write().expect("metrics lock poisoned");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (registering it if new).
    pub fn count(&self, name: &str, delta: u64) {
        intern(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Sets the gauge `name` to `value` (registering it if new).
    pub fn gauge(&self, name: &str, value: u64) {
        intern(&self.gauges, name).store(value, Ordering::Relaxed);
    }

    /// Records `value` into the histogram `name` (registering it if new).
    pub fn observe(&self, name: &str, value: u64) {
        intern(&self.histograms, name).observe(value);
    }

    /// Current value of a counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .read()
            .expect("metrics lock poisoned")
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
    }

    /// Current value of a gauge, if registered.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        self.gauges
            .read()
            .expect("metrics lock poisoned")
            .get(name)
            .map(|g| g.load(Ordering::Relaxed))
    }

    /// A handle to the histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<Arc<Histogram>> {
        self.histograms
            .read()
            .expect("metrics lock poisoned")
            .get(name)
            .map(Arc::clone)
    }

    /// Sorted `(name, value)` pairs of every counter.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sorted `(name, value)` pairs of every gauge.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        self.gauges
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Sorted `(name, histogram)` pairs of every histogram.
    pub fn histograms(&self) -> Vec<(String, Arc<Histogram>)> {
        self.histograms
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_cover_their_index() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 65_535, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "value {v} above bound");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "value {v} below bucket");
            }
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::default();
        for v in [10u64, 20, 30, 40, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1100);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn quantiles_land_in_correct_buckets() {
        let h = Histogram::default();
        // 100 observations, values 1..=100: p50 rank is 50 (bucket of
        // bit length 6, bound 63); p99 rank is 99 (bucket bound 127,
        // clamped to observed max 100).
        for v in 1..=100u64 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((32..=63).contains(&p50), "p50 {p50}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((64..=100).contains(&p90), "p90 {p90}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p90..=100).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(1.0), Some(100), "q=1 is exactly max");
        assert_eq!(h.quantile(0.0), Some(1), "q=0 clamps to min");
    }

    #[test]
    fn small_n_quantiles_interpolate_instead_of_reporting_max() {
        // Regression for the BENCH_search.json skew: two same-bucket
        // observations (these are the actual nanosecond values from the
        // skewed bench run, both in bucket [2^22, 2^23 - 1]) reported
        // p50 == max. Rank 1-of-2 must interpolate to the midpoint.
        let h = Histogram::default();
        h.observe(5_155_578);
        h.observe(5_369_210);
        let mean = (5_155_578 + 5_369_210) / 2;
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= mean, "p50 {p50} above mean {mean}");
        assert!(p50 >= 5_155_578, "p50 {p50} below min");
        assert!(p50 < 5_369_210, "p50 {p50} still pinned to max");
        assert_eq!(p50, mean, "rank 1 of 2 lands on the exact midpoint");
        // The top rank stays exact.
        assert_eq!(h.quantile(0.99), Some(5_369_210));
        assert_eq!(h.quantile(1.0), Some(5_369_210));

        // Small n generally: quantiles stay inside [min, max], are
        // monotone in q, and p50 no longer saturates at max.
        let h = Histogram::default();
        for v in [40u64, 50, 60] {
            h.observe(v);
        }
        let mut prev = 0u64;
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((40..=60).contains(&v), "q={q} escaped [min,max]: {v}");
            assert!(v >= prev, "quantiles must be monotone in q");
            prev = v;
        }
        assert!(h.quantile(0.5).unwrap() < 60, "p50 of 3 must be below max");
    }

    #[test]
    fn huge_value_quantiles_do_not_overflow() {
        let h = Histogram::default();
        h.observe(u64::MAX - 1);
        h.observe(u64::MAX);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 >= u64::MAX - 1);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn single_observation_quantiles_are_exact() {
        let h = Histogram::default();
        h.observe(42);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42));
        }
    }

    #[test]
    fn zero_observations_use_the_zero_bucket() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(0);
        h.observe(8);
        assert_eq!(h.quantile(0.5), Some(0));
        assert_eq!(h.quantile(1.0), Some(8));
    }

    #[test]
    fn registry_registers_and_accumulates() {
        let m = Metrics::new();
        m.count("a.b", 2);
        m.count("a.b", 3);
        m.gauge("g", 7);
        m.gauge("g", 9);
        m.observe("h", 100);
        assert_eq!(m.counter_value("a.b"), Some(5));
        assert_eq!(m.counter_value("missing"), None);
        assert_eq!(m.gauge_value("g"), Some(9));
        assert_eq!(m.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn listings_are_sorted_by_name() {
        let m = Metrics::new();
        m.count("z", 1);
        m.count("a", 1);
        m.count("m", 1);
        let names: Vec<String> = m.counters().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.count("thread.hits", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter_value("thread.hits"), Some(4000));
    }
}
