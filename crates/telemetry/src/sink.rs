//! Pluggable event sinks.
//!
//! Aggregated metrics answer "how much / how fast overall"; the event
//! stream answers "what happened, in order". A [`Sink`] receives one
//! [`Event`] per span end, counter bump and gauge set. The default
//! [`NullSink`] drops everything (aggregation still happens in the
//! registry); [`MemorySink`] records for tests; [`JsonLinesSink`] writes
//! one JSON object per line for offline analysis.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json;
use crate::trace::{write_attrs_json, Attrs, SpanId, TraceId};

/// One telemetry occurrence, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened. Emitted before any child activity so sinks see
    /// the causal tree in pre-order.
    SpanStart {
        /// The trace this span belongs to (root span id of the trace).
        trace: TraceId,
        /// This span's sequence-assigned identity.
        span: SpanId,
        /// The enclosing span at open time, if any.
        parent: Option<SpanId>,
        /// Span name, e.g. `"phase.search"`.
        name: String,
        /// Clock reading when the span opened.
        start_ns: u64,
    },
    /// A span closed: `name` ran from `start_ns` for `duration_ns`
    /// (both in the active [`Clock`](crate::Clock)'s timeline).
    SpanEnd {
        /// The trace this span belongs to (root span id of the trace).
        trace: TraceId,
        /// This span's sequence-assigned identity.
        span: SpanId,
        /// The enclosing span at open time, if any.
        parent: Option<SpanId>,
        /// Span name, e.g. `"owner.build"`.
        name: String,
        /// Clock reading when the span opened.
        start_ns: u64,
        /// Clock delta between open and close.
        duration_ns: u64,
        /// Structured attributes accumulated via
        /// [`Span::attr`](crate::Span::attr), in insertion order.
        attrs: Attrs,
    },
    /// A counter was incremented by `delta`.
    Counter {
        /// Counter name.
        name: String,
        /// Increment applied.
        delta: u64,
    },
    /// A gauge was set to `value`.
    Gauge {
        /// Gauge name.
        name: String,
        /// New value.
        value: u64,
    },
}

impl Event {
    /// The event as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        match self {
            Event::SpanStart {
                trace,
                span,
                parent,
                name,
                start_ns,
            } => {
                s.push_str("{\"type\":\"span_start\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"trace\":{trace},\"span\":{span},\"parent\":"));
                match parent {
                    Some(p) => s.push_str(&p.to_string()),
                    None => s.push_str("null"),
                }
                s.push_str(&format!(",\"start_ns\":{start_ns}}}"));
            }
            Event::SpanEnd {
                trace,
                span,
                parent,
                name,
                start_ns,
                duration_ns,
                attrs,
            } => {
                s.push_str("{\"type\":\"span\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"trace\":{trace},\"span\":{span},\"parent\":"));
                match parent {
                    Some(p) => s.push_str(&p.to_string()),
                    None => s.push_str("null"),
                }
                s.push_str(&format!(
                    ",\"start_ns\":{start_ns},\"duration_ns\":{duration_ns},\"attrs\":"
                ));
                write_attrs_json(&mut s, attrs);
                s.push('}');
            }
            Event::Counter { name, delta } => {
                s.push_str("{\"type\":\"counter\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"delta\":{delta}}}"));
            }
            Event::Gauge { name, value } => {
                s.push_str("{\"type\":\"gauge\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"value\":{value}}}"));
            }
        }
        s
    }
}

/// Receives the ordered event stream from a
/// [`TelemetryHandle`](crate::TelemetryHandle).
pub trait Sink: Send + Sync + fmt::Debug {
    /// Called once per event, in program order.
    fn record(&self, event: Event);
}

/// Discards every event. Aggregated metrics are unaffected.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: Event) {}
}

/// Buffers events in memory — unbounded via [`MemorySink::new`] for
/// tests and determinism comparisons, or as a fixed-capacity ring via
/// [`MemorySink::with_capacity`] so a long-running daemon can retain a
/// recent event window without unbounded growth (mirroring
/// [`MemoryLogSink`](crate::MemoryLogSink)). When the ring is full the
/// oldest event is evicted and counted in [`MemorySink::dropped`].
#[derive(Debug)]
pub struct MemorySink {
    events: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Default for MemorySink {
    fn default() -> Self {
        Self::new()
    }
}

impl MemorySink {
    /// An empty, effectively unbounded sink (the test/determinism
    /// configuration — nothing is ever evicted).
    pub fn new() -> Self {
        Self::with_capacity(usize::MAX)
    }

    /// An empty ring retaining the most recent `capacity` events
    /// (minimum 1). Older events are evicted and counted as dropped.
    pub fn with_capacity(capacity: usize) -> Self {
        MemorySink {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Telemetry must never take the process down: recover the buffer
    /// from a poisoned lock instead of propagating the panic.
    fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<Event>> {
        match self.events.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A copy of every retained event, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.locked().iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The retained transcript as JSON lines — a canonical byte string
    /// for byte-identical determinism assertions.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for e in self.locked().iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        let mut events = self.locked();
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }
}

/// Duplicates every event to each wrapped sink, in order — how `slicerd`
/// feeds one span stream to both its
/// [`ProfileAggregator`](crate::ProfileAggregator) and its bounded event
/// ring.
#[derive(Debug, Default)]
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A sink fanning out to `sinks` in the given order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: Event) {
        if let Some((last, rest)) = self.sinks.split_last() {
            for sink in rest {
                sink.record(event.clone());
            }
            last.record(event);
        }
    }
}

/// Writes one JSON object per event to a writer (typically stderr).
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; each event becomes one line.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }
}

impl JsonLinesSink<std::io::Stderr> {
    /// A sink writing JSON lines to stderr.
    pub fn stderr() -> Self {
        Self::new(std::io::stderr())
    }
}

impl<W: Write + Send> fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock().expect("sink lock poisoned");
        // Telemetry must never take the process down: ignore I/O errors.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        sink.record(Event::Counter {
            name: "a".into(),
            delta: 1,
        });
        sink.record(Event::Gauge {
            name: "b".into(),
            value: 2,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Counter { .. }));
        assert!(matches!(events[1], Event::Gauge { .. }));
    }

    #[test]
    fn event_json_is_valid_and_escaped() {
        let e = Event::SpanEnd {
            trace: TraceId(1),
            span: SpanId(2),
            parent: Some(SpanId(1)),
            name: "owner.\"build\"".into(),
            start_ns: 5,
            duration_ns: 10,
            attrs: vec![("entries", crate::AttrValue::Str("a\"b".into()))],
        };
        let j = e.to_json();
        assert!(json::parse(&j).is_ok(), "invalid JSON: {j}");
        assert!(j.contains("\\\"build\\\""));
        assert!(j.contains("\"trace\":1"));
        assert!(j.contains("\"parent\":1"));
        assert!(j.contains("a\\\"b"), "attr strings must be escaped: {j}");

        let s = Event::SpanStart {
            trace: TraceId(1),
            span: SpanId(2),
            parent: None,
            name: "root".into(),
            start_ns: 0,
        };
        let j = s.to_json();
        assert!(json::parse(&j).is_ok(), "invalid JSON: {j}");
        assert!(j.contains("\"parent\":null"));
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(Event::Counter {
            name: "x".into(),
            delta: 3,
        });
        sink.record(Event::Counter {
            name: "y".into(),
            delta: 4,
        });
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(json::parse(line).is_ok(), "invalid JSON line: {line}");
        }
    }

    #[test]
    fn bounded_memory_sink_evicts_oldest_and_counts_drops() {
        let sink = MemorySink::with_capacity(2);
        for i in 0..5u64 {
            sink.record(Event::Counter {
                name: format!("c{i}"),
                delta: i,
            });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let names: Vec<String> = sink
            .events()
            .iter()
            .map(|e| match e {
                Event::Counter { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, vec!["c3", "c4"], "oldest evicted first");
        // The unbounded configuration never drops.
        let unbounded = MemorySink::new();
        for i in 0..5u64 {
            unbounded.record(Event::Counter {
                name: "x".into(),
                delta: i,
            });
        }
        assert_eq!(unbounded.len(), 5);
        assert_eq!(unbounded.dropped(), 0);
    }

    #[test]
    fn fanout_sink_duplicates_to_every_sink_in_order() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink::new(vec![a.clone() as _, b.clone() as _]);
        fan.record(Event::Counter {
            name: "n".into(),
            delta: 7,
        });
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 1);
        // An empty fanout is inert, not a panic.
        FanoutSink::default().record(Event::Counter {
            name: "n".into(),
            delta: 1,
        });
    }

    #[test]
    fn transcript_is_canonical() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        for s in [&a, &b] {
            s.record(Event::SpanEnd {
                trace: TraceId(1),
                span: SpanId(1),
                parent: None,
                name: "p".into(),
                start_ns: 0,
                duration_ns: 1,
                attrs: Vec::new(),
            });
        }
        assert_eq!(a.transcript(), b.transcript());
        assert!(!a.transcript().is_empty());
    }
}
