//! Pluggable event sinks.
//!
//! Aggregated metrics answer "how much / how fast overall"; the event
//! stream answers "what happened, in order". A [`Sink`] receives one
//! [`Event`] per span end, counter bump and gauge set. The default
//! [`NullSink`] drops everything (aggregation still happens in the
//! registry); [`MemorySink`] records for tests; [`JsonLinesSink`] writes
//! one JSON object per line for offline analysis.

use std::fmt;
use std::io::Write;
use std::sync::Mutex;

use crate::json;
use crate::trace::{write_attrs_json, Attrs, SpanId, TraceId};

/// One telemetry occurrence, in program order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A span opened. Emitted before any child activity so sinks see
    /// the causal tree in pre-order.
    SpanStart {
        /// The trace this span belongs to (root span id of the trace).
        trace: TraceId,
        /// This span's sequence-assigned identity.
        span: SpanId,
        /// The enclosing span at open time, if any.
        parent: Option<SpanId>,
        /// Span name, e.g. `"phase.search"`.
        name: String,
        /// Clock reading when the span opened.
        start_ns: u64,
    },
    /// A span closed: `name` ran from `start_ns` for `duration_ns`
    /// (both in the active [`Clock`](crate::Clock)'s timeline).
    SpanEnd {
        /// The trace this span belongs to (root span id of the trace).
        trace: TraceId,
        /// This span's sequence-assigned identity.
        span: SpanId,
        /// The enclosing span at open time, if any.
        parent: Option<SpanId>,
        /// Span name, e.g. `"owner.build"`.
        name: String,
        /// Clock reading when the span opened.
        start_ns: u64,
        /// Clock delta between open and close.
        duration_ns: u64,
        /// Structured attributes accumulated via
        /// [`Span::attr`](crate::Span::attr), in insertion order.
        attrs: Attrs,
    },
    /// A counter was incremented by `delta`.
    Counter {
        /// Counter name.
        name: String,
        /// Increment applied.
        delta: u64,
    },
    /// A gauge was set to `value`.
    Gauge {
        /// Gauge name.
        name: String,
        /// New value.
        value: u64,
    },
}

impl Event {
    /// The event as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        match self {
            Event::SpanStart {
                trace,
                span,
                parent,
                name,
                start_ns,
            } => {
                s.push_str("{\"type\":\"span_start\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"trace\":{trace},\"span\":{span},\"parent\":"));
                match parent {
                    Some(p) => s.push_str(&p.to_string()),
                    None => s.push_str("null"),
                }
                s.push_str(&format!(",\"start_ns\":{start_ns}}}"));
            }
            Event::SpanEnd {
                trace,
                span,
                parent,
                name,
                start_ns,
                duration_ns,
                attrs,
            } => {
                s.push_str("{\"type\":\"span\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"trace\":{trace},\"span\":{span},\"parent\":"));
                match parent {
                    Some(p) => s.push_str(&p.to_string()),
                    None => s.push_str("null"),
                }
                s.push_str(&format!(
                    ",\"start_ns\":{start_ns},\"duration_ns\":{duration_ns},\"attrs\":"
                ));
                write_attrs_json(&mut s, attrs);
                s.push('}');
            }
            Event::Counter { name, delta } => {
                s.push_str("{\"type\":\"counter\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"delta\":{delta}}}"));
            }
            Event::Gauge { name, value } => {
                s.push_str("{\"type\":\"gauge\",\"name\":");
                json::write_string(&mut s, name);
                s.push_str(&format!(",\"value\":{value}}}"));
            }
        }
        s
    }
}

/// Receives the ordered event stream from a
/// [`TelemetryHandle`](crate::TelemetryHandle).
pub trait Sink: Send + Sync + fmt::Debug {
    /// Called once per event, in program order.
    fn record(&self, event: Event);
}

/// Discards every event. Aggregated metrics are unaffected.
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: Event) {}
}

/// Buffers events in memory, for tests and determinism comparisons.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of every event recorded so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink lock poisoned").clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The whole transcript as JSON lines — a canonical byte string for
    /// byte-identical determinism assertions.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().expect("sink lock poisoned").iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl Sink for MemorySink {
    fn record(&self, event: Event) {
        self.events.lock().expect("sink lock poisoned").push(event);
    }
}

/// Writes one JSON object per event to a writer (typically stderr).
pub struct JsonLinesSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLinesSink<W> {
    /// Wraps `writer`; each event becomes one line.
    pub fn new(writer: W) -> Self {
        JsonLinesSink {
            writer: Mutex::new(writer),
        }
    }
}

impl JsonLinesSink<std::io::Stderr> {
    /// A sink writing JSON lines to stderr.
    pub fn stderr() -> Self {
        Self::new(std::io::stderr())
    }
}

impl<W: Write + Send> fmt::Debug for JsonLinesSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonLinesSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> Sink for JsonLinesSink<W> {
    fn record(&self, event: Event) {
        let mut w = self.writer.lock().expect("sink lock poisoned");
        // Telemetry must never take the process down: ignore I/O errors.
        let _ = writeln!(w, "{}", event.to_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_preserves_order() {
        let sink = MemorySink::new();
        sink.record(Event::Counter {
            name: "a".into(),
            delta: 1,
        });
        sink.record(Event::Gauge {
            name: "b".into(),
            value: 2,
        });
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], Event::Counter { .. }));
        assert!(matches!(events[1], Event::Gauge { .. }));
    }

    #[test]
    fn event_json_is_valid_and_escaped() {
        let e = Event::SpanEnd {
            trace: TraceId(1),
            span: SpanId(2),
            parent: Some(SpanId(1)),
            name: "owner.\"build\"".into(),
            start_ns: 5,
            duration_ns: 10,
            attrs: vec![("entries", crate::AttrValue::Str("a\"b".into()))],
        };
        let j = e.to_json();
        assert!(json::parse(&j).is_ok(), "invalid JSON: {j}");
        assert!(j.contains("\\\"build\\\""));
        assert!(j.contains("\"trace\":1"));
        assert!(j.contains("\"parent\":1"));
        assert!(j.contains("a\\\"b"), "attr strings must be escaped: {j}");

        let s = Event::SpanStart {
            trace: TraceId(1),
            span: SpanId(2),
            parent: None,
            name: "root".into(),
            start_ns: 0,
        };
        let j = s.to_json();
        assert!(json::parse(&j).is_ok(), "invalid JSON: {j}");
        assert!(j.contains("\"parent\":null"));
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let sink = JsonLinesSink::new(Vec::new());
        sink.record(Event::Counter {
            name: "x".into(),
            delta: 3,
        });
        sink.record(Event::Counter {
            name: "y".into(),
            delta: 4,
        });
        let buf = sink.writer.into_inner().unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(json::parse(line).is_ok(), "invalid JSON line: {line}");
        }
    }

    #[test]
    fn transcript_is_canonical() {
        let a = MemorySink::new();
        let b = MemorySink::new();
        for s in [&a, &b] {
            s.record(Event::SpanEnd {
                trace: TraceId(1),
                span: SpanId(1),
                parent: None,
                name: "p".into(),
                start_ns: 0,
                duration_ns: 1,
                attrs: Vec::new(),
            });
        }
        assert_eq!(a.transcript(), b.transcript());
        assert!(!a.transcript().is_empty());
    }
}
