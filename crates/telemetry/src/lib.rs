//! # slicer-telemetry
//!
//! Zero-dependency tracing, metrics and protocol-phase profiling for the
//! Slicer pipeline. The paper's evaluation is entirely quantitative (SORE
//! token cost, search latency vs. record count, per-operation gas), so the
//! reproduction needs a way to observe where time and gas go inside a
//! live run — this crate is that observability layer.
//!
//! Design constraints, in order:
//!
//! 1. **Hermetic** — std only, matching the workspace's zero-registry
//!    dependency policy.
//! 2. **Deterministic when asked** — the [`Clock`] behind span timing is
//!    injectable, so determinism tests drive a [`LogicalClock`] and
//!    same-seed telemetry transcripts are byte-identical. Telemetry never
//!    feeds back into protocol state, so enabling it cannot perturb
//!    protocol transcripts either.
//! 3. **Free when disabled** — [`TelemetryHandle::disabled`] is an
//!    `Option::None` behind the scenes: every operation is a branch on a
//!    niche-optimized pointer. The process-global facade ([`global`]) used
//!    by leaf crates guards with one relaxed atomic load.
//!
//! # Architecture
//!
//! * [`Metrics`] — a registry of named counters, gauges and fixed-bucket
//!   latency histograms (power-of-two buckets, p50/p90/p99 summaries).
//! * [`TelemetryHandle`] — a cheaply clonable handle bundling a registry,
//!   a [`Clock`] and a [`Sink`]; [`TelemetryHandle::span`] returns a guard
//!   that records a latency observation when dropped.
//! * [`Sink`] — a pluggable event stream: [`MemorySink`] for tests,
//!   [`JsonLinesSink`] for stderr tracing, [`NullSink`] when only the
//!   aggregated registry matters.
//! * Structured logs — [`TelemetryHandle::log`] emits leveled
//!   [`LogRecord`]s (same `'static`-keyed [`AttrValue`] fields as span
//!   attributes, timestamped on the handle's clock) to pluggable
//!   [`LogSink`]s: the ring-buffered [`MemoryLogSink`] for tests and the
//!   daemon's `Tail`/flight-recorder surface, [`WriterLogSink`] for
//!   stderr in text or JSON-lines form.
//! * [`Snapshot`] — a point-in-time copy of the registry, exportable as
//!   Prometheus text ([`Snapshot::to_prometheus_text`]) or JSON
//!   ([`Snapshot::to_json`]).
//! * [`global`] — a process-wide default handle for leaf crates (SORE
//!   tuple counts, index lookup hit rates, witness-cache hit rates) that
//!   cannot reasonably thread a handle through their APIs.
//! * Causal traces — every live span carries a [`SpanContext`]
//!   ([`TraceId`] + [`SpanId`], sequence-counter assigned so same-seed
//!   transcripts stay byte-identical) and parents implicitly on the
//!   innermost open span; [`Span::attr`] attaches structured key/value
//!   attributes, and [`chrome_trace`] renders a [`MemorySink`] event
//!   stream as a `chrome://tracing` / Perfetto document.
//!
//! # Examples
//!
//! ```
//! use slicer_telemetry::TelemetryHandle;
//!
//! let telemetry = TelemetryHandle::enabled();
//! {
//!     let _span = telemetry.span("sore.encrypt");
//!     // ... work ...
//! }
//! telemetry.count("sore.ciphertexts", 1);
//! let snap = telemetry.snapshot();
//! assert_eq!(snap.counter("sore.ciphertexts"), Some(1));
//! assert!(snap.to_json().contains("sore.encrypt"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod export;
pub mod global;
mod handle;
pub mod json;
mod log;
mod metrics;
mod profile;
mod sink;
mod trace;
pub mod xml;

pub use clock::{Clock, LogicalClock, MonotonicClock};
pub use export::{HistogramSummary, Snapshot};
pub use handle::{Span, TelemetryHandle};
pub use log::{
    Level, LogFormat, LogRecord, LogSink, MemoryLogSink, NullLogSink, WriterLogSink,
    DEFAULT_LOG_RING,
};
pub use metrics::{Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use profile::{
    fold_events, Profile, ProfileAggregator, ProfileEntry, ProfileMode, DEFAULT_MAX_STACKS,
    GAS_ATTR,
};
pub use sink::{Event, FanoutSink, JsonLinesSink, MemorySink, NullSink, Sink};
pub use trace::{chrome_trace, AttrValue, Attrs, SpanContext, SpanId, TraceId};
