//! Point-in-time snapshots and exporters.
//!
//! A [`Snapshot`] is an owned, immutable copy of a [`Metrics`] registry:
//! counters and gauges by value, histograms reduced to
//! [`HistogramSummary`] (count/sum/min/max + p50/p90/p99). Snapshots are
//! what crosses process boundaries — as Prometheus exposition text or as
//! a single JSON document. The JSON schema is shared by the metrics
//! exporter, the testkit micro-bench reporter and the `results/BENCH_*`
//! baseline files, so every measurement in the repo diffs the same way.

use crate::json;
use crate::metrics::Metrics;

/// Reduced view of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }
}

/// An immutable copy of a registry, ready for export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Captures the current state of `metrics`. Entries are sorted by
    /// name, so two snapshots of identical registries compare equal.
    pub fn of(metrics: &Metrics) -> Self {
        let histograms = metrics
            .histograms()
            .into_iter()
            .map(|(name, h)| {
                let summary = HistogramSummary {
                    count: h.count(),
                    sum: h.sum(),
                    min: h.min().unwrap_or(0),
                    max: h.max().unwrap_or(0),
                    p50: h.quantile(0.50).unwrap_or(0),
                    p90: h.quantile(0.90).unwrap_or(0),
                    p99: h.quantile(0.99).unwrap_or(0),
                };
                (name, summary)
            })
            .collect();
        Snapshot {
            counters: metrics.counters(),
            gauges: metrics.gauges(),
            histograms,
        }
    }

    /// Value of counter `name` at snapshot time.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name).copied()
    }

    /// Value of gauge `name` at snapshot time.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name).copied()
    }

    /// Summary of histogram `name` at snapshot time.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        lookup(&self.histograms, name)
    }

    /// Sorted `(name, value)` counter pairs.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Sorted `(name, value)` gauge pairs.
    pub fn gauges(&self) -> &[(String, u64)] {
        &self.gauges
    }

    /// Sorted `(name, summary)` histogram pairs.
    pub fn histograms(&self) -> &[(String, HistogramSummary)] {
        &self.histograms
    }

    /// The snapshot in Prometheus exposition format. Dots in metric
    /// names become underscores and a `slicer_` prefix is added;
    /// histograms export as summaries with `quantile` labels.
    pub fn to_prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
        }
        for (name, h) in &self.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// The snapshot as one JSON document:
    /// `{"counters": {..}, "gauges": {..}, "histograms": {name:
    /// {count, sum, min, max, mean, p50, p90, p99}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        write_scalar_map(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        write_scalar_map(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            json::write_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50,
                h.p90,
                h.p99
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn lookup<'a, T>(pairs: &'a [(String, T)], name: &str) -> Option<&'a T> {
    pairs
        .binary_search_by(|(n, _)| n.as_str().cmp(name))
        .ok()
        .map(|i| &pairs[i].1)
}

/// Maps a dotted metric name to a Prometheus-legal identifier.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("slicer_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn write_scalar_map(out: &mut String, pairs: &[(String, u64)]) {
    for (i, (name, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        json::write_string(out, name);
        out.push_str(&format!(": {value}"));
    }
    if !pairs.is_empty() {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let m = Metrics::new();
        m.count("phase.search.gas", 120);
        m.gauge("db.records", 24);
        for v in [100u64, 200, 300] {
            m.observe("phase.search.ns", v);
        }
        Snapshot::of(&m)
    }

    #[test]
    fn snapshot_lookups_match_registry() {
        let s = sample();
        assert_eq!(s.counter("phase.search.gas"), Some(120));
        assert_eq!(s.gauge("db.records"), Some(24));
        let h = s.histogram("phase.search.ns").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 600);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 300);
        assert_eq!(h.mean(), 200);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn json_export_is_valid_json() {
        let j = sample().to_json();
        assert!(json::parse(&j).is_ok(), "invalid JSON:\n{j}");
        assert!(j.contains("\"phase.search.gas\": 120"));
        assert!(j.contains("\"p50\""));
    }

    #[test]
    fn empty_snapshot_exports_valid_json() {
        let j = Snapshot::of(&Metrics::new()).to_json();
        assert!(json::parse(&j).is_ok(), "invalid JSON:\n{j}");
    }

    #[test]
    fn prometheus_text_uses_legal_names() {
        let text = sample().to_prometheus_text();
        assert!(text.contains("# TYPE slicer_phase_search_gas counter"));
        assert!(text.contains("slicer_phase_search_gas 120"));
        assert!(text.contains("# TYPE slicer_db_records gauge"));
        assert!(text.contains("slicer_phase_search_ns{quantile=\"0.5\"}"));
        assert!(text.contains("slicer_phase_search_ns_count 3"));
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "illegal metric name: {name}"
            );
        }
    }

    #[test]
    fn snapshots_of_identical_registries_are_equal() {
        assert_eq!(sample(), sample());
    }
}
