//! The telemetry handle threaded through the protocol actors, and the
//! span guard it hands out.

use std::sync::Arc;

use crate::clock::{Clock, MonotonicClock};
use crate::export::Snapshot;
use crate::metrics::Metrics;
use crate::sink::{Event, NullSink, Sink};

#[derive(Debug)]
struct Inner {
    metrics: Metrics,
    clock: Arc<dyn Clock>,
    sink: Arc<dyn Sink>,
}

/// A cheaply clonable telemetry context: a [`Metrics`] registry plus the
/// [`Clock`] and [`Sink`] every recording goes through.
///
/// The disabled handle is `None` behind the scenes, so a disabled
/// recording is a single branch on a niche-optimized pointer — cheap
/// enough to leave instrumentation unconditionally in protocol code.
/// Clones share the same registry, clock and sink.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Inner>>,
}

impl TelemetryHandle {
    /// A no-op handle: every operation returns immediately, spans are
    /// inert, snapshots are empty. This is the default everywhere.
    pub fn disabled() -> Self {
        Self::const_disabled()
    }

    /// `disabled()` as a `const fn`, so the [`global`](crate::global)
    /// facade can live in a `static` initializer.
    pub(crate) const fn const_disabled() -> Self {
        TelemetryHandle { inner: None }
    }

    /// A live handle with real wall-clock timing and no event stream —
    /// the usual choice for profiling runs.
    pub fn enabled() -> Self {
        Self::with(Arc::new(MonotonicClock::new()), Arc::new(NullSink))
    }

    /// A live handle with an explicit clock and sink — determinism tests
    /// pass a [`LogicalClock`](crate::LogicalClock) and a
    /// [`MemorySink`](crate::MemorySink) here.
    pub fn with(clock: Arc<dyn Clock>, sink: Arc<dyn Sink>) -> Self {
        TelemetryHandle {
            inner: Some(Arc::new(Inner {
                metrics: Metrics::new(),
                clock,
                sink,
            })),
        }
    }

    /// Whether recordings reach a registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name` and emits a
    /// [`Event::Counter`] to the sink.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.count(name, delta);
            inner.sink.record(Event::Counter {
                name: name.to_string(),
                delta,
            });
        }
    }

    /// Sets gauge `name` to `value` and emits a [`Event::Gauge`] to the
    /// sink.
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name, value);
            inner.sink.record(Event::Gauge {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Records `nanos` into histogram `name`. No sink event: callers of
    /// this method time with externally measured (wall-clock) durations,
    /// which must not leak into deterministic sink transcripts — spans
    /// are the event-producing timing path.
    pub fn observe_ns(&self, name: &str, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, nanos);
        }
    }

    /// Opens a span named `name`. When the returned guard drops, the
    /// clock delta lands in histogram `name` and a [`Event::SpanEnd`]
    /// goes to the sink. On a disabled handle the guard is inert.
    pub fn span(&self, name: &str) -> Span {
        Span {
            inner: self.inner.as_ref().map(|inner| SpanInner {
                handle: Arc::clone(inner),
                name: name.to_string(),
                start_ns: inner.clock.now_nanos(),
            }),
        }
    }

    /// The current clock reading, or 0 on a disabled handle.
    pub fn now_nanos(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_nanos())
    }

    /// A point-in-time copy of the registry (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .as_ref()
            .map_or_else(Snapshot::default, |i| Snapshot::of(&i.metrics))
    }

    /// Current value of counter `name`, if recorded.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.as_ref()?.metrics.counter_value(name)
    }
}

#[derive(Debug)]
struct SpanInner {
    handle: Arc<Inner>,
    name: String,
    start_ns: u64,
}

/// Drop guard returned by [`TelemetryHandle::span`]. Records the elapsed
/// clock delta when dropped.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(span) = self.inner.take() {
            let end = span.handle.clock.now_nanos();
            let duration_ns = end.saturating_sub(span.start_ns);
            span.handle.metrics.observe(&span.name, duration_ns);
            span.handle.sink.record(Event::SpanEnd {
                name: span.name,
                start_ns: span.start_ns,
                duration_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TelemetryHandle::disabled();
        assert!(!t.is_enabled());
        t.count("a", 1);
        t.gauge("b", 2);
        t.observe_ns("c", 3);
        drop(t.span("d"));
        assert_eq!(t.snapshot(), Snapshot::default());
        assert_eq!(t.counter_value("a"), None);
    }

    #[test]
    fn span_records_clock_delta() {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::with_step(10)), sink.clone() as _);
        drop(t.span("work"));
        let snap = t.snapshot();
        let h = snap.histogram("work").unwrap();
        assert_eq!(h.count, 1);
        // LogicalClock: open reads 0, close reads 10 → duration 10.
        assert_eq!(h.sum, 10);
        let events = sink.events();
        assert_eq!(
            events,
            vec![Event::SpanEnd {
                name: "work".into(),
                start_ns: 0,
                duration_ns: 10,
            }]
        );
    }

    #[test]
    fn counters_reach_registry_and_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::new()), sink.clone() as _);
        t.count("hits", 2);
        t.count("hits", 3);
        t.gauge("size", 7);
        assert_eq!(t.counter_value("hits"), Some(5));
        assert_eq!(t.snapshot().gauge("size"), Some(7));
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn clones_share_one_registry() {
        let t = TelemetryHandle::enabled();
        let u = t.clone();
        t.count("shared", 1);
        u.count("shared", 1);
        assert_eq!(t.counter_value("shared"), Some(2));
    }

    #[test]
    fn logical_clock_transcripts_are_byte_identical() {
        let run = || {
            let sink = Arc::new(MemorySink::new());
            let t = TelemetryHandle::with(Arc::new(LogicalClock::new()), sink.clone() as _);
            {
                let _outer = t.span("outer");
                drop(t.span("inner"));
                t.count("steps", 1);
            }
            sink.transcript()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
    }
}
