//! The telemetry handle threaded through the protocol actors, and the
//! span guard it hands out.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::clock::{Clock, MonotonicClock};
use crate::export::Snapshot;
use crate::log::{Level, LogRecord, LogSink};
use crate::metrics::Metrics;
use crate::sink::{Event, NullSink, Sink};
use crate::trace::{AttrValue, Attrs, SpanContext, SpanId, TraceId};

/// Mutable logging configuration of a handle: the minimum level and the
/// installed sinks. Behind an `RwLock` because sinks are installed after
/// construction (the daemon adds its `Tail` ring once it knows its
/// config) while records flow from many clones concurrently.
#[derive(Debug)]
struct LogState {
    level: Level,
    sinks: Vec<Arc<dyn LogSink>>,
}

#[derive(Debug)]
struct Inner {
    metrics: Metrics,
    clock: Arc<dyn Clock>,
    sink: Arc<dyn Sink>,
    log: RwLock<LogState>,
    /// Next trace/span id. Sequence-counter assignment (no wall clock,
    /// no randomness) keeps same-seed transcripts byte-identical.
    /// Starts at 1; id 0 means "no trace".
    ids: AtomicU64,
    /// Open spans, innermost last. New spans parent on the top entry,
    /// which makes nesting implicit for LIFO scope guards without
    /// growing every protocol signature by a context parameter.
    stack: Mutex<Vec<SpanContext>>,
}

/// A cheaply clonable telemetry context: a [`Metrics`] registry plus the
/// [`Clock`] and [`Sink`] every recording goes through.
///
/// The disabled handle is `None` behind the scenes, so a disabled
/// recording is a single branch on a niche-optimized pointer — cheap
/// enough to leave instrumentation unconditionally in protocol code.
/// Clones share the same registry, clock, sink, id sequence and span
/// stack.
#[derive(Debug, Clone, Default)]
pub struct TelemetryHandle {
    inner: Option<Arc<Inner>>,
}

impl TelemetryHandle {
    /// A no-op handle: every operation returns immediately, spans are
    /// inert, snapshots are empty. This is the default everywhere.
    pub fn disabled() -> Self {
        Self::const_disabled()
    }

    /// `disabled()` as a `const fn`, so the [`global`](crate::global)
    /// facade can live in a `static` initializer.
    pub(crate) const fn const_disabled() -> Self {
        TelemetryHandle { inner: None }
    }

    /// A live handle with real wall-clock timing and no event stream —
    /// the usual choice for profiling runs.
    pub fn enabled() -> Self {
        Self::with(Arc::new(MonotonicClock::new()), Arc::new(NullSink))
    }

    /// A live handle with an explicit clock and sink — determinism tests
    /// pass a [`LogicalClock`](crate::LogicalClock) and a
    /// [`MemorySink`](crate::MemorySink) here.
    pub fn with(clock: Arc<dyn Clock>, sink: Arc<dyn Sink>) -> Self {
        TelemetryHandle {
            inner: Some(Arc::new(Inner {
                metrics: Metrics::new(),
                clock,
                sink,
                log: RwLock::new(LogState {
                    level: Level::Info,
                    sinks: Vec::new(),
                }),
                ids: AtomicU64::new(1),
                stack: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether recordings reach a registry.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to counter `name` and emits a
    /// [`Event::Counter`] to the sink.
    pub fn count(&self, name: &str, delta: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.count(name, delta);
            inner.sink.record(Event::Counter {
                name: name.to_string(),
                delta,
            });
        }
    }

    /// Sets gauge `name` to `value` and emits a [`Event::Gauge`] to the
    /// sink.
    pub fn gauge(&self, name: &str, value: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.gauge(name, value);
            inner.sink.record(Event::Gauge {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Records `nanos` into histogram `name`. No sink event: callers of
    /// this method time with externally measured (wall-clock) durations,
    /// which must not leak into deterministic sink transcripts — spans
    /// are the event-producing timing path.
    pub fn observe_ns(&self, name: &str, nanos: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.observe(name, nanos);
        }
    }

    /// Opens a span named `name`, parented on the innermost open span of
    /// this handle (a root span of a fresh trace otherwise). Emits an
    /// [`Event::SpanStart`]; when the returned guard drops, the clock
    /// delta lands in histogram `{name}.ns` and an [`Event::SpanEnd`]
    /// carrying the span's attributes goes to the sink.
    ///
    /// On a disabled handle the guard is inert and nothing — id, name,
    /// attribute — is allocated.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = self.inner.as_ref() else {
            return Span::disabled();
        };
        let id = SpanId(inner.ids.fetch_add(1, Ordering::Relaxed));
        let (ctx, parent) = {
            let mut stack = inner.stack.lock().expect("span stack poisoned");
            let parent = stack.last().copied();
            let ctx = SpanContext {
                trace: parent.map_or(TraceId(id.0), |p| p.trace),
                span: id,
            };
            stack.push(ctx);
            (ctx, parent)
        };
        let start_ns = inner.clock.now_nanos();
        inner.sink.record(Event::SpanStart {
            trace: ctx.trace,
            span: ctx.span,
            parent: parent.map(|p| p.span),
            name: name.to_string(),
            start_ns,
        });
        Span {
            inner: Some(SpanInner {
                handle: Arc::clone(inner),
                name: name.to_string(),
                start_ns,
                ctx,
                parent: parent.map(|p| p.span),
                attrs: Vec::new(),
            }),
        }
    }

    /// Opens a *root* span that adopts an externally supplied trace id
    /// instead of minting one — remote trace propagation: a daemon opens
    /// its per-request span with the trace id carried in the request
    /// envelope, so client- and server-side spans correlate into one
    /// trace. A zero trace id (the "no trace" sentinel) falls back to a
    /// fresh trace named by the span's own id, exactly like
    /// [`TelemetryHandle::span`] on an empty stack.
    ///
    /// Unlike [`TelemetryHandle::span`], the innermost open span is *not*
    /// used as parent: the remote caller is the logical parent, and its
    /// spans live in another process.
    pub fn span_in_trace(&self, name: &str, trace: TraceId) -> Span {
        let Some(inner) = self.inner.as_ref() else {
            return Span::disabled();
        };
        let id = SpanId(inner.ids.fetch_add(1, Ordering::Relaxed));
        let ctx = SpanContext {
            trace: if trace.0 == 0 { TraceId(id.0) } else { trace },
            span: id,
        };
        {
            let mut stack = inner.stack.lock().expect("span stack poisoned");
            stack.push(ctx);
        }
        let start_ns = inner.clock.now_nanos();
        inner.sink.record(Event::SpanStart {
            trace: ctx.trace,
            span: ctx.span,
            parent: None,
            name: name.to_string(),
            start_ns,
        });
        Span {
            inner: Some(SpanInner {
                handle: Arc::clone(inner),
                name: name.to_string(),
                start_ns,
                ctx,
                parent: None,
                attrs: Vec::new(),
            }),
        }
    }

    /// The innermost open span's context, if any.
    pub fn current_span(&self) -> Option<SpanContext> {
        let inner = self.inner.as_ref()?;
        let stack = inner.stack.lock().expect("span stack poisoned");
        stack.last().copied()
    }

    /// The handle's clock, for callers that want protocol-side timing on
    /// the same timeline as the spans (and therefore deterministic under
    /// a [`LogicalClock`](crate::LogicalClock)). `None` when disabled.
    pub fn clock(&self) -> Option<Arc<dyn Clock>> {
        self.inner.as_ref().map(|i| Arc::clone(&i.clock))
    }

    /// The current clock reading, or 0 on a disabled handle.
    pub fn now_nanos(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.clock.now_nanos())
    }

    /// A point-in-time copy of the registry (empty when disabled).
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .as_ref()
            .map_or_else(Snapshot::default, |i| Snapshot::of(&i.metrics))
    }

    /// Current value of counter `name`, if recorded.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.as_ref()?.metrics.counter_value(name)
    }

    /// Installs a structured-log sink. Records at or above the current
    /// level fan out to every installed sink in installation order.
    pub fn add_log_sink(&self, sink: Arc<dyn LogSink>) {
        if let Some(inner) = &self.inner {
            match inner.log.write() {
                Ok(mut state) => state.sinks.push(sink),
                Err(poisoned) => poisoned.into_inner().sinks.push(sink),
            }
        }
    }

    /// Sets the minimum level a record needs to reach the sinks.
    /// Defaults to [`Level::Info`].
    pub fn set_log_level(&self, level: Level) {
        if let Some(inner) = &self.inner {
            match inner.log.write() {
                Ok(mut state) => state.level = level,
                Err(poisoned) => poisoned.into_inner().level = level,
            }
        }
    }

    /// Whether a record at `level` would reach at least one sink. Guard
    /// expensive message/field construction on this.
    pub fn log_enabled(&self, level: Level) -> bool {
        let Some(inner) = &self.inner else {
            return false;
        };
        let state = match inner.log.read() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        level >= state.level && !state.sinks.is_empty()
    }

    /// Emits a structured log record: timestamped on the handle's
    /// [`Clock`] (deterministic under a
    /// [`LogicalClock`](crate::LogicalClock)), leveled, targeted at a
    /// subsystem, with ordered `'static`-keyed fields. Dropped without
    /// reading the clock when disabled, below the level, or sink-less,
    /// so filtered logging cannot perturb a logical-clock timeline.
    pub fn log(
        &self,
        level: Level,
        target: &'static str,
        message: impl Into<String>,
        fields: Attrs,
    ) {
        let Some(inner) = &self.inner else {
            return;
        };
        let state = match inner.log.read() {
            Ok(s) => s,
            Err(poisoned) => poisoned.into_inner(),
        };
        if level < state.level || state.sinks.is_empty() {
            return;
        }
        let record = LogRecord {
            ts_ns: inner.clock.now_nanos(),
            level,
            target,
            message: message.into(),
            fields,
        };
        for sink in &state.sinks {
            sink.log(&record);
        }
    }
}

#[derive(Debug)]
struct SpanInner {
    handle: Arc<Inner>,
    name: String,
    start_ns: u64,
    ctx: SpanContext,
    parent: Option<SpanId>,
    attrs: Attrs,
}

/// Drop guard returned by [`TelemetryHandle::span`]. Records the elapsed
/// clock delta when dropped.
#[derive(Debug)]
#[must_use = "a span measures until it is dropped; binding it to _ drops it immediately"]
pub struct Span {
    inner: Option<SpanInner>,
}

impl Span {
    /// An inert span, identical to one from a disabled handle.
    pub(crate) const fn disabled() -> Self {
        Span { inner: None }
    }

    /// Whether this span reaches a sink. Guard expensive attribute
    /// construction (hex encoding, hashing) on this.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The span's trace/span identity, or `None` when inert.
    pub fn ctx(&self) -> Option<SpanContext> {
        self.inner.as_ref().map(|s| s.ctx)
    }

    /// Attaches a structured attribute, carried on the
    /// [`Event::SpanEnd`]. No-op (and no allocation — conversion happens
    /// inside the branch) on an inert span.
    pub fn attr(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(s) = self.inner.as_mut() {
            s.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(mut span) = self.inner.take() {
            let end = span.handle.clock.now_nanos();
            let duration_ns = end.saturating_sub(span.start_ns);
            let mut hist = String::with_capacity(span.name.len() + 3);
            hist.push_str(&span.name);
            hist.push_str(".ns");
            span.handle.metrics.observe(&hist, duration_ns);
            {
                let mut stack = span.handle.stack.lock().expect("span stack poisoned");
                // Remove our own entry (not blindly the top): a guard
                // dropped out of LIFO order must not unwind someone
                // else's parent context.
                if let Some(pos) = stack.iter().rposition(|c| c.span == span.ctx.span) {
                    stack.remove(pos);
                }
            }
            span.handle.sink.record(Event::SpanEnd {
                trace: span.ctx.trace,
                span: span.ctx.span,
                parent: span.parent,
                name: std::mem::take(&mut span.name),
                start_ns: span.start_ns,
                duration_ns,
                attrs: std::mem::take(&mut span.attrs),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::sink::MemorySink;

    #[test]
    fn disabled_handle_is_inert() {
        let t = TelemetryHandle::disabled();
        assert!(!t.is_enabled());
        t.count("a", 1);
        t.gauge("b", 2);
        t.observe_ns("c", 3);
        let mut s = t.span("d");
        assert!(!s.is_recording());
        assert_eq!(s.ctx(), None);
        s.attr("k", 1u64);
        drop(s);
        assert_eq!(t.current_span(), None);
        assert!(t.clock().is_none());
        assert_eq!(t.snapshot(), Snapshot::default());
        assert_eq!(t.counter_value("a"), None);
    }

    #[test]
    fn span_records_clock_delta() {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::with_step(10)), sink.clone() as _);
        let mut s = t.span("work");
        s.attr("items", 3u64);
        drop(s);
        let snap = t.snapshot();
        let h = snap.histogram("work.ns").unwrap();
        assert_eq!(h.count, 1);
        // LogicalClock: open reads 0, close reads 10 → duration 10.
        assert_eq!(h.sum, 10);
        let events = sink.events();
        assert_eq!(
            events,
            vec![
                Event::SpanStart {
                    trace: TraceId(1),
                    span: SpanId(1),
                    parent: None,
                    name: "work".into(),
                    start_ns: 0,
                },
                Event::SpanEnd {
                    trace: TraceId(1),
                    span: SpanId(1),
                    parent: None,
                    name: "work".into(),
                    start_ns: 0,
                    duration_ns: 10,
                    attrs: vec![("items", AttrValue::U64(3))],
                }
            ]
        );
    }

    #[test]
    fn spans_nest_and_ids_are_sequential() {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::new()), sink.clone() as _);
        let outer = t.span("outer");
        let outer_ctx = outer.ctx().unwrap();
        assert_eq!(outer_ctx.trace, TraceId(1));
        assert_eq!(outer_ctx.span, SpanId(1));
        assert_eq!(t.current_span(), Some(outer_ctx));
        {
            let inner = t.span("inner");
            let inner_ctx = inner.ctx().unwrap();
            assert_eq!(inner_ctx.trace, TraceId(1), "child shares the trace");
            assert_eq!(inner_ctx.span, SpanId(2));
            assert_eq!(t.current_span(), Some(inner_ctx));
        }
        assert_eq!(t.current_span(), Some(outer_ctx));
        drop(outer);
        // A fresh root starts a fresh trace named by its own span id.
        let next = t.span("next");
        assert_eq!(
            next.ctx().unwrap(),
            SpanContext {
                trace: TraceId(3),
                span: SpanId(3)
            }
        );
        drop(next);
        let parents: Vec<Option<SpanId>> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnd { parent, .. } => Some(*parent),
                _ => None,
            })
            .collect();
        assert_eq!(parents, vec![Some(SpanId(1)), None, None]);
    }

    #[test]
    fn out_of_order_drop_unwinds_only_itself() {
        let t = TelemetryHandle::enabled();
        let a = t.span("a");
        let b = t.span("b");
        let a_ctx = a.ctx().unwrap();
        drop(a); // dropped before its child closes
        assert_eq!(t.current_span(), Some(b.ctx().unwrap()));
        drop(b);
        assert_eq!(t.current_span(), None);
        assert_ne!(a_ctx.span, SpanId(0));
    }

    #[test]
    fn span_in_trace_adopts_remote_trace_id() {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::new()), sink.clone() as _);
        let remote = TraceId(777);
        let s = t.span_in_trace("daemon.request", remote);
        let ctx = s.ctx().unwrap();
        assert_eq!(ctx.trace, remote);
        // Children nest under it and inherit the remote trace.
        let child = t.span("inner");
        assert_eq!(child.ctx().unwrap().trace, remote);
        drop(child);
        drop(s);
        // Zero is the "no trace" sentinel: fall back to a fresh trace.
        let fallback = t.span_in_trace("daemon.request", TraceId(0));
        let f = fallback.ctx().unwrap();
        assert_eq!(f.trace.0, f.span.0);
        drop(fallback);
    }

    #[test]
    fn counters_reach_registry_and_sink() {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::new()), sink.clone() as _);
        t.count("hits", 2);
        t.count("hits", 3);
        t.gauge("size", 7);
        assert_eq!(t.counter_value("hits"), Some(5));
        assert_eq!(t.snapshot().gauge("size"), Some(7));
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn clones_share_one_registry_and_id_sequence() {
        let t = TelemetryHandle::enabled();
        let u = t.clone();
        t.count("shared", 1);
        u.count("shared", 1);
        assert_eq!(t.counter_value("shared"), Some(2));
        let outer = t.span("outer");
        let inner = u.span("inner");
        assert_eq!(
            inner.ctx().unwrap().trace,
            outer.ctx().unwrap().trace,
            "clones share the span stack, so nesting crosses clones"
        );
        drop(inner);
        drop(outer);
    }

    #[test]
    fn log_records_are_leveled_filtered_and_clock_stamped() {
        use crate::log::MemoryLogSink;

        let ring = Arc::new(MemoryLogSink::new());
        let t = TelemetryHandle::with(Arc::new(LogicalClock::with_step(10)), Arc::new(NullSink));
        // No sink installed yet: dropped, and the clock is not read.
        t.log(Level::Info, "t", "before sinks", vec![]);
        assert!(!t.log_enabled(Level::Error));
        t.add_log_sink(ring.clone() as _);
        assert!(t.log_enabled(Level::Info));
        assert!(!t.log_enabled(Level::Debug), "default level is info");

        t.log(Level::Debug, "t", "filtered", vec![]);
        t.log(Level::Info, "t", "first", vec![("n", AttrValue::U64(1))]);
        t.log(Level::Warn, "t", "second", vec![]);
        let records = ring.records();
        assert_eq!(records.len(), 2);
        // Filtered/sink-less calls never read the clock: the first real
        // record gets the first reading.
        assert_eq!(records[0].ts_ns, 0);
        assert_eq!(records[1].ts_ns, 10);
        assert_eq!(records[0].message, "first");
        assert_eq!(records[0].fields, vec![("n", AttrValue::U64(1))]);

        t.set_log_level(Level::Error);
        t.log(Level::Warn, "t", "now filtered", vec![]);
        assert_eq!(ring.len(), 2);
        t.set_log_level(Level::Debug);
        assert!(t.log_enabled(Level::Debug));

        // Disabled handles stay inert.
        let d = TelemetryHandle::disabled();
        d.add_log_sink(ring.clone() as _);
        d.log(Level::Error, "t", "nope", vec![]);
        assert!(!d.log_enabled(Level::Error));
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn log_sinks_are_shared_across_clones() {
        use crate::log::MemoryLogSink;

        let ring = Arc::new(MemoryLogSink::new());
        let t = TelemetryHandle::enabled();
        let u = t.clone();
        t.add_log_sink(ring.clone() as _);
        u.log(Level::Info, "t", "via clone", vec![]);
        assert_eq!(ring.len(), 1, "clone shares the installed sinks");
    }

    #[test]
    fn logical_clock_transcripts_are_byte_identical() {
        let run = || {
            let sink = Arc::new(MemorySink::new());
            let t = TelemetryHandle::with(Arc::new(LogicalClock::new()), sink.clone() as _);
            {
                let mut outer = t.span("outer");
                outer.attr("round", 1u64);
                drop(t.span("inner"));
                t.count("steps", 1);
            }
            sink.transcript()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
        assert!(a.contains("\"type\":\"span_start\""));
        assert!(a.contains("\"attrs\":{\"round\":1}"));
    }
}
