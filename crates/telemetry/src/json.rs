//! Minimal JSON utilities: string escaping for the writers and a
//! recursive-descent validator for smoke tests.
//!
//! The workspace is hermetic (no serde), so the exporters assemble JSON
//! by hand. That makes "does the output actually parse" a real risk, so
//! this module also ships a small RFC 8259 validator used by unit tests
//! and the `protocol_trace` CI smoke step to check the exporters' output
//! without external tooling.

use std::fmt;

/// Appends `value` to `out` as a JSON string literal (with quotes),
/// escaping per RFC 8259.
pub fn write_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Validates that `input` is a single well-formed JSON value. Returns
/// `Ok(())` or the first error encountered. Does not build a value tree —
/// callers needing field access should use targeted substring checks
/// after validation.
pub fn parse(input: &str) -> Result<(), JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"hi\\nthere\"",
            "[]",
            "{}",
            "[1, 2, {\"a\": [false, null]}]",
            "{\"k\": {\"nested\": [1.0, \"s\"]}}",
        ] {
            assert!(parse(doc).is_ok(), "rejected valid: {doc}");
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a': 1}",
            "01",
            "1 2",
            "\"unterminated",
            "{\"a\" 1}",
            "nul",
        ] {
            assert!(parse(doc).is_err(), "accepted invalid: {doc}");
        }
    }

    #[test]
    fn write_string_round_trips_through_parse() {
        let mut s = String::new();
        write_string(&mut s, "a\"b\\c\nd\te\u{1}");
        assert!(parse(&s).is_ok(), "escaped string invalid: {s}");
    }

    #[test]
    fn error_reports_offset() {
        let e = parse("[1, }").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }
}
