//! Process-global telemetry facade for leaf crates.
//!
//! The protocol actors (`DataOwner`, `CloudServer`, …) carry an injected
//! [`TelemetryHandle`], but the leaf crates expose pure functions
//! (SORE tuple generation, index lookups, witness-cache access) whose
//! signatures should not grow a telemetry parameter. Those call sites use
//! this facade instead: a process-wide handle installed by whoever owns
//! the run (e.g. `SlicerInstance::setup_with`), guarded by one relaxed
//! atomic load so the disabled path costs a predictable branch.
//!
//! The global handle is process state: parallel tests that install
//! different handles would observe each other. Tests that assert on
//! global counters should therefore install a fresh handle, read it, and
//! [`reset`] within one test function.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::RwLock;

use crate::handle::TelemetryHandle;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: RwLock<TelemetryHandle> = RwLock::new(TelemetryHandle::const_disabled());

/// Installs `handle` as the process-global telemetry context.
pub fn set(handle: TelemetryHandle) {
    let enabled = handle.is_enabled();
    *GLOBAL.write().expect("global telemetry lock poisoned") = handle;
    ENABLED.store(enabled, Ordering::Release);
}

/// Replaces the global handle with a disabled one.
pub fn reset() {
    set(TelemetryHandle::disabled());
}

/// Whether a live handle is installed. One relaxed atomic load — the
/// fast path every facade call guards on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// A clone of the current global handle (disabled if none installed).
pub fn handle() -> TelemetryHandle {
    GLOBAL
        .read()
        .expect("global telemetry lock poisoned")
        .clone()
}

/// Adds `delta` to counter `name` on the global handle, if enabled.
pub fn count(name: &str, delta: u64) {
    if enabled() {
        GLOBAL
            .read()
            .expect("global telemetry lock poisoned")
            .count(name, delta);
    }
}

/// Sets gauge `name` to `value` on the global handle, if enabled.
pub fn gauge(name: &str, value: u64) {
    if enabled() {
        GLOBAL
            .read()
            .expect("global telemetry lock poisoned")
            .gauge(name, value);
    }
}

/// Opens a span on the global handle, if enabled; an inert guard
/// otherwise. The span parents on the global handle's innermost open
/// span, so leaf-crate work (chain transactions, witness batches) nests
/// under the protocol phase that caused it when the orchestrator
/// installed its own handle globally.
pub fn span(name: &str) -> crate::Span {
    if enabled() {
        GLOBAL
            .read()
            .expect("global telemetry lock poisoned")
            .span(name)
    } else {
        crate::Span::disabled()
    }
}

/// Emits a structured log record through the global handle, if enabled.
/// Same semantics as [`TelemetryHandle::log`]: level-filtered, dropped
/// when no log sink is installed.
pub fn log(
    level: crate::Level,
    target: &'static str,
    message: impl Into<String>,
    fields: crate::Attrs,
) {
    if enabled() {
        GLOBAL
            .read()
            .expect("global telemetry lock poisoned")
            .log(level, target, message, fields);
    }
}

/// Records `nanos` into histogram `name` on the global handle, if
/// enabled.
pub fn observe_ns(name: &str, nanos: u64) {
    if enabled() {
        GLOBAL
            .read()
            .expect("global telemetry lock poisoned")
            .observe_ns(name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test function: the global handle is process state, and cargo
    // runs tests in this binary concurrently.
    #[test]
    fn facade_lifecycle() {
        assert!(!enabled());
        count("early", 1); // dropped: nothing installed
        let inert = span("leaf.early");
        assert!(!inert.is_recording());
        drop(inert);

        let t = TelemetryHandle::enabled();
        set(t.clone());
        assert!(enabled());
        {
            let mut s = span("leaf.op");
            assert!(s.is_recording());
            s.attr("n", 1u64);
        }
        assert_eq!(t.snapshot().histogram("leaf.op.ns").unwrap().count, 1);
        count("leaf.hits", 2);
        count("leaf.hits", 3);
        gauge("leaf.size", 9);
        observe_ns("leaf.latency", 40);
        let ring = std::sync::Arc::new(crate::MemoryLogSink::new());
        t.add_log_sink(ring.clone() as _);
        log(crate::Level::Info, "leaf", "through facade", vec![]);
        assert_eq!(ring.len(), 1);
        assert_eq!(t.counter_value("leaf.hits"), Some(5));
        assert_eq!(t.snapshot().gauge("leaf.size"), Some(9));
        assert_eq!(t.snapshot().histogram("leaf.latency").unwrap().count, 1);
        assert_eq!(t.counter_value("early"), None);
        assert!(handle().is_enabled());

        reset();
        assert!(!enabled());
        count("leaf.hits", 100);
        assert_eq!(t.counter_value("leaf.hits"), Some(5), "post-reset drop");
    }
}
