//! Minimal XML well-formedness checker, mirroring the RFC 8259 JSON
//! validator in [`json`](crate::json).
//!
//! The flamegraph renderer in [`profile`](crate::profile) assembles SVG
//! by hand (the workspace is hermetic — no XML library), so "does the
//! output actually parse" is a real risk, exactly as it was for the JSON
//! exporters. This module ships a small recursive-descent checker used
//! by unit tests and the `slicer-cli profile --check` smoke path. It
//! validates *well-formedness* (XML 1.0 §2.1): prolog, one root element,
//! balanced and properly nested tags, attribute syntax, entity and
//! character references, comments. It does not validate against a DTD or
//! schema.

use std::fmt;

/// Where and why validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Appends `value` to `out` with the five XML special characters escaped
/// — the writer-side counterpart of the checker, used by the SVG
/// renderer for attribute values and text content.
pub fn write_escaped(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            c => out.push(c),
        }
    }
}

/// Validates that `input` is one well-formed XML document: optional
/// declaration and misc, exactly one root element, nothing but misc
/// after it. Returns `Ok(())` or the first error encountered. Does not
/// build a tree.
///
/// # Errors
///
/// [`XmlError`] carrying the byte offset and reason of the first
/// violation.
pub fn check(input: &str) -> Result<(), XmlError> {
    let mut p = Checker {
        bytes: input.as_bytes(),
        pos: 0,
    };
    if p.bytes.starts_with("\u{feff}".as_bytes()) {
        p.pos += 3; // tolerate a UTF-8 BOM
    }
    p.skip_misc(true)?;
    p.element()?;
    p.skip_misc(false)?;
    if p.pos != p.bytes.len() {
        return Err(p.err("content after the root element"));
    }
    Ok(())
}

struct Checker<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Checker<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    /// Whitespace, comments, processing instructions — and, when
    /// `allow_decl`, the `<?xml ...?>` declaration (prolog position
    /// only).
    fn skip_misc(&mut self, allow_decl: bool) -> Result<(), XmlError> {
        let mut first = true;
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.comment()?;
            } else if self.starts_with("<?") {
                if self.starts_with("<?xml") && !(allow_decl && first) {
                    return Err(self.err("xml declaration not at document start"));
                }
                self.processing_instruction()?;
            } else {
                return Ok(());
            }
            first = false;
        }
    }

    fn comment(&mut self) -> Result<(), XmlError> {
        self.pos += 4; // past "<!--"
        loop {
            if self.starts_with("--") {
                return if self.starts_with("-->") {
                    self.pos += 3;
                    Ok(())
                } else {
                    Err(self.err("'--' inside a comment"))
                };
            }
            if self.peek().is_none() {
                return Err(self.err("unterminated comment"));
            }
            self.pos += 1;
        }
    }

    fn processing_instruction(&mut self) -> Result<(), XmlError> {
        self.pos += 2; // past "<?"
        while !self.starts_with("?>") {
            if self.peek().is_none() {
                return Err(self.err("unterminated processing instruction"));
            }
            self.pos += 1;
        }
        self.pos += 2;
        Ok(())
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' || c == b':' => self.pos += 1,
            _ => return Err(self.err("expected a name")),
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b'-' | b'.' | b'_' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    /// An entity (`&amp;` etc.) or character (`&#…;` / `&#x…;`)
    /// reference, positioned on the `&`.
    fn reference(&mut self) -> Result<(), XmlError> {
        self.pos += 1; // past '&'
        if self.peek() == Some(b'#') {
            self.pos += 1;
            let hex = self.peek() == Some(b'x');
            if hex {
                self.pos += 1;
            }
            let mut digits = 0;
            while let Some(c) = self.peek() {
                let ok = if hex {
                    c.is_ascii_hexdigit()
                } else {
                    c.is_ascii_digit()
                };
                if !ok {
                    break;
                }
                self.pos += 1;
                digits += 1;
            }
            if digits == 0 || self.peek() != Some(b';') {
                return Err(self.err("bad character reference"));
            }
            self.pos += 1;
            return Ok(());
        }
        let name = self.name().map_err(|_| self.err("bad entity reference"))?;
        if !matches!(name.as_str(), "amp" | "lt" | "gt" | "quot" | "apos") {
            return Err(self.err(&format!("unknown entity &{name};")));
        }
        if self.peek() != Some(b';') {
            return Err(self.err("entity reference missing ';'"));
        }
        self.pos += 1;
        Ok(())
    }

    fn attribute_value(&mut self) -> Result<(), XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted attribute value")),
        };
        self.pos += 1;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(q) if q == quote => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'<') => return Err(self.err("raw '<' in attribute value")),
                Some(b'&') => self.reference()?,
                Some(_) => self.pos += 1,
            }
        }
    }

    /// One element, positioned on its opening `<`. Recurses into
    /// children; validates that the closing tag matches.
    fn element(&mut self) -> Result<(), XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected an element"));
        }
        self.pos += 1;
        let open = self.name()?;
        // Attributes until `>` or `/>`.
        loop {
            let before = self.pos;
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(()); // self-closing
                }
                Some(_) => {
                    if before == self.pos {
                        return Err(self.err("expected whitespace before attribute"));
                    }
                    self.name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' after attribute name"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    self.attribute_value()?;
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content: text, references, comments, child elements.
        loop {
            match self.peek() {
                None => return Err(self.err(&format!("unterminated element <{open}>"))),
                Some(b'<') => {
                    if self.starts_with("</") {
                        self.pos += 2;
                        let close = self.name()?;
                        if close != open {
                            return Err(self
                                .err(&format!("mismatched closing tag </{close}> for <{open}>")));
                        }
                        self.skip_ws();
                        if self.peek() != Some(b'>') {
                            return Err(self.err("expected '>' in closing tag"));
                        }
                        self.pos += 1;
                        return Ok(());
                    } else if self.starts_with("<!--") {
                        self.comment()?;
                    } else if self.starts_with("<?") {
                        self.processing_instruction()?;
                    } else {
                        self.element()?;
                    }
                }
                Some(b'&') => self.reference()?,
                Some(_) => self.pos += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_documents() {
        for doc in [
            "<a/>",
            "<a></a>",
            "<?xml version=\"1.0\"?><svg xmlns=\"http://www.w3.org/2000/svg\"><rect/></svg>",
            "<a b=\"1\" c='two'><d>text &amp; &#38; &#x26; more</d><!-- note --></a>",
            "  <!-- leading --> <root><nested><deep/></nested>tail</root> ",
            "<a:b xmlns:a=\"urn:x\"/>",
        ] {
            check(doc).unwrap_or_else(|e| panic!("rejected well-formed: {doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "plain text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a b></a>",
            "<a b=1></a>",
            "<a b=\"unterminated></a>",
            "<a>&unknown;</a>",
            "<a>&#;</a>",
            "<a>bare & ampersand</a>",
            "<a/><b/>",
            "<a><!-- -- --></a>",
            "<a></a> trailing",
            "<a attr=\"<\"></a>",
        ] {
            assert!(check(doc).is_err(), "accepted malformed: {doc}");
        }
    }

    #[test]
    fn write_escaped_round_trips_through_check() {
        let mut body = String::new();
        write_escaped(&mut body, "a<b & \"c\" 'd' >e");
        let doc = format!("<t name=\"{body}\">{body}</t>");
        check(&doc).unwrap_or_else(|e| panic!("escaped text invalid: {e}\n{doc}"));
    }

    #[test]
    fn error_reports_offset() {
        let e = check("<a><b></c></a>").unwrap_err();
        assert!(e.to_string().contains("byte"));
        assert!(e.message.contains("mismatched"));
    }
}
