//! Causal trace model: trace/span identities, structured attributes and
//! the Chrome trace-event exporter.
//!
//! Identity assignment is a per-handle sequence counter — no wall clock,
//! no randomness — so two same-seed runs allocate identical IDs and a
//! [`MemorySink`](crate::MemorySink) transcript (IDs, nesting and
//! attributes included) is byte-identical across runs. A root span's
//! trace id reuses its own span id, so a trace is named by the span that
//! opened it.

use crate::json;
use crate::sink::Event;
use std::fmt;

/// Identity of one causal trace (one protocol request / deployment op).
///
/// Equal to the root span's [`SpanId`] value. Sequence-counter assigned;
/// `TraceId(0)` is never allocated and means "no trace" (disabled
/// telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// Identity of one span within a handle's event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The (trace, span) pair identifying where in the causal tree a span
/// lives. Returned by [`Span::ctx`](crate::Span::ctx).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's own identity.
    pub span: SpanId,
}

/// A structured attribute value attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// An unsigned integer (counts, sizes, gas, fingerprints).
    U64(u64),
    /// A short string (tx hashes, gas categories).
    Str(String),
    /// A boolean (verification outcomes).
    Bool(bool),
}

impl AttrValue {
    /// Appends the value as JSON to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            AttrValue::U64(v) => out.push_str(&v.to_string()),
            AttrValue::Str(s) => json::write_string(out, s),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(u64::from(v))
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Ordered key/value attributes on a span. Keys are `'static` so the
/// disabled path never allocates for them.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// Appends `attrs` as a JSON object (`{"k":v,...}`) to `out`.
pub(crate) fn write_attrs_json(out: &mut String, attrs: &Attrs) {
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_string(out, k);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

/// Nanoseconds → Chrome trace microseconds with sub-µs precision
/// (`"12.345"`), using integer math only.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders `events` as a Chrome trace-event JSON document, loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Each [`Event::SpanEnd`] becomes one complete (`"ph":"X"`) event with
/// the trace id as its track (`tid`) and the span/parent ids plus every
/// structured attribute under `args`. Counter and gauge events carry no
/// timestamps and are omitted. The output parses under the in-crate
/// RFC 8259 validator ([`json::parse`]).
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for event in events {
        let Event::SpanEnd {
            trace,
            span,
            parent,
            name,
            start_ns,
            duration_ns,
            attrs,
        } = event
        else {
            continue;
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        json::write_string(&mut out, name);
        out.push_str(",\"cat\":\"slicer\",\"ph\":\"X\",\"ts\":");
        out.push_str(&micros(*start_ns));
        out.push_str(",\"dur\":");
        out.push_str(&micros(*duration_ns));
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&trace.to_string());
        out.push_str(",\"args\":{\"span\":");
        out.push_str(&span.to_string());
        out.push_str(",\"parent\":");
        match parent {
            Some(p) => out.push_str(&p.to_string()),
            None => out.push_str("null"),
        }
        for (k, v) in attrs {
            out.push(',');
            json::write_string(&mut out, k);
            out.push(':');
            v.write_json(&mut out);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_end(trace: u64, span: u64, parent: Option<u64>) -> Event {
        Event::SpanEnd {
            trace: TraceId(trace),
            span: SpanId(span),
            parent: parent.map(SpanId),
            name: "phase.token".into(),
            start_ns: 1_500,
            duration_ns: 2_250,
            attrs: vec![
                ("tokens", AttrValue::U64(8)),
                ("tx.hash", AttrValue::Str("0x\"ab\"".into())),
                ("verified", AttrValue::Bool(true)),
            ],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let doc = chrome_trace(&[
            sample_end(1, 2, Some(1)),
            Event::Counter {
                name: "x".into(),
                delta: 1,
            },
            sample_end(1, 1, None),
        ]);
        json::parse(&doc).unwrap_or_else(|e| panic!("invalid chrome trace: {e}\n{doc}"));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"dur\":2.250"));
        assert!(doc.contains("\"parent\":1"));
        assert!(doc.contains("\"parent\":null"));
        assert!(doc.contains("\\\"ab\\\""), "attr strings must be escaped");
    }

    #[test]
    fn chrome_trace_skips_counters_and_gauges() {
        let doc = chrome_trace(&[
            Event::Counter {
                name: "hits".into(),
                delta: 3,
            },
            Event::Gauge {
                name: "size".into(),
                value: 9,
            },
        ]);
        assert_eq!(doc, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
        json::parse(&doc).unwrap();
    }

    #[test]
    fn micros_is_integer_math() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn attr_value_conversions() {
        assert_eq!(AttrValue::from(3u64), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from("s"), AttrValue::Str("s".into()));
    }
}
