//! Collapsed-stack profile aggregation and flamegraph rendering.
//!
//! The span model (PR 5) records *causal* structure — every
//! [`Event::SpanEnd`] carries its parent span id — but answering "where
//! does the time/gas go" requires folding those parent chains into
//! collapsed stacks, the `root;child;leaf <weight>` format popularised by
//! Brendan Gregg's flamegraph tooling. [`ProfileAggregator`] is a
//! [`Sink`] that does this fold incrementally as events arrive, so a
//! long-running `slicerd` can serve its live profile at any moment
//! without retaining the raw event stream.
//!
//! Two weightings are maintained side by side over the same stacks:
//!
//! * **wall** — the span's *self* time in nanoseconds: its duration
//!   minus the summed durations of its direct children, so a stack's
//!   weight is time spent in exactly that frame, and the root frame's
//!   inclusive total equals the sum of all its stacks.
//! * **gas** — the span's *self* gas: the sum of its `gas.used`
//!   attributes minus gas claimed by its children's `gas.used` attrs.
//!   Spans without gas attributes contribute zero weight but still
//!   shape the stacks, so gas flamegraphs share frame geometry with
//!   wall ones.
//!
//! Cross-process adoption (`span_in_trace`) is bridged: when a span's
//! parent is `None` but its trace's root span is open in this process
//! (the in-process client case) the fold grafts it under that root, so
//! client and daemon halves of one trace land in one stack.
//!
//! Rendering is hermetic: [`Profile::to_folded`] emits the text format,
//! [`Profile::to_svg`] a self-contained SVG flamegraph validated by the
//! in-crate [`xml`](crate::xml) well-formedness checker.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::sink::{Event, Sink};
use crate::trace::AttrValue;

/// Span attribute key carrying gas consumption (set by `crates/chain`
/// transaction spans and the protocol phase spans in `crates/core`).
pub const GAS_ATTR: &str = "gas.used";

/// Default cap on distinct collapsed stacks retained by an aggregator.
pub const DEFAULT_MAX_STACKS: usize = 4096;

/// Which weighting of a [`Profile`] to export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileMode {
    /// Self wall-clock nanoseconds per stack.
    Wall,
    /// Self gas per stack (from `gas.used` span attributes).
    Gas,
}

impl ProfileMode {
    /// Human-readable unit suffix (`"ns"` / `"gas"`).
    pub fn unit(self) -> &'static str {
        match self {
            ProfileMode::Wall => "ns",
            ProfileMode::Gas => "gas",
        }
    }
}

/// One collapsed stack with both weightings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Semicolon-joined frame names, root first (`a;b;c`).
    pub stack: String,
    /// Self wall-nanoseconds attributed to exactly this stack.
    pub wall_ns: u64,
    /// Self gas attributed to exactly this stack.
    pub gas: u64,
    /// Number of span ends that landed on this stack.
    pub count: u64,
}

/// A point-in-time collapsed-stack profile: every distinct stack seen,
/// sorted lexicographically for deterministic output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Profile {
    /// The stacks, sorted by `stack`.
    pub entries: Vec<ProfileEntry>,
    /// Stacks discarded because the aggregator hit its cap.
    pub dropped_stacks: u64,
}

impl Profile {
    /// Total weight across all stacks under `mode` — for wall this is
    /// the inclusive time of all roots, for gas the total attributed
    /// gas.
    pub fn total(&self, mode: ProfileMode) -> u64 {
        self.entries.iter().map(|e| e.weight(mode)).sum()
    }

    /// Inclusive weight of one root frame: the sum over every stack
    /// whose first frame is `root`.
    pub fn root_total(&self, root: &str, mode: ProfileMode) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.stack.split(';').next() == Some(root))
            .map(|e| e.weight(mode))
            .sum()
    }

    /// The collapsed-stack text export: one `stack weight` line per
    /// entry with a nonzero weight under `mode`, sorted by stack.
    /// Feedable to any external flamegraph tool.
    pub fn to_folded(&self, mode: ProfileMode) -> String {
        let mut out = String::new();
        for e in &self.entries {
            let w = e.weight(mode);
            if w == 0 {
                continue;
            }
            out.push_str(&e.stack);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }

    /// Renders a self-contained SVG flamegraph (icicle layout, root at
    /// the top) of the `mode` weighting. The output is valid against
    /// [`xml::check`](crate::xml::check) and needs no external assets.
    pub fn to_svg(&self, mode: ProfileMode, title: &str) -> String {
        render_svg(self, mode, title)
    }
}

impl ProfileEntry {
    /// The entry's weight under `mode`.
    pub fn weight(&self, mode: ProfileMode) -> u64 {
        match mode {
            ProfileMode::Wall => self.wall_ns,
            ProfileMode::Gas => self.gas,
        }
    }
}

/// A span currently open (SpanStart seen, SpanEnd not yet), accumulating
/// its children's inclusive weights so self weight can be derived.
#[derive(Debug, Clone)]
struct OpenSpan {
    name: String,
    parent: Option<u64>,
    child_wall_ns: u64,
    child_gas: u64,
}

#[derive(Debug, Default)]
struct AggState {
    /// Open spans by span id.
    open: BTreeMap<u64, OpenSpan>,
    /// Accumulated (wall, gas, count) per collapsed stack.
    stacks: BTreeMap<String, (u64, u64, u64)>,
    /// Span ends discarded because `stacks` was full.
    dropped: u64,
}

/// Incremental collapsed-stack aggregator; plug it into a
/// [`TelemetryHandle`](crate::TelemetryHandle) as its [`Sink`] (fan out
/// with [`FanoutSink`](crate::FanoutSink) to keep other sinks) and call
/// [`snapshot`](ProfileAggregator::snapshot) at any time.
#[derive(Debug)]
pub struct ProfileAggregator {
    state: Mutex<AggState>,
    max_stacks: usize,
}

impl Default for ProfileAggregator {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileAggregator {
    /// An aggregator retaining up to [`DEFAULT_MAX_STACKS`] distinct
    /// stacks.
    pub fn new() -> Self {
        Self::with_max_stacks(DEFAULT_MAX_STACKS)
    }

    /// An aggregator retaining up to `max_stacks` distinct stacks
    /// (minimum 1); span ends whose stack is novel beyond the cap are
    /// counted in [`dropped_stacks`](ProfileAggregator::dropped_stacks)
    /// instead of growing memory without bound.
    pub fn with_max_stacks(max_stacks: usize) -> Self {
        ProfileAggregator {
            state: Mutex::new(AggState::default()),
            max_stacks: max_stacks.max(1),
        }
    }

    /// Telemetry must never take the process down: recover the state
    /// from a poisoned lock instead of propagating the panic.
    fn locked(&self) -> std::sync::MutexGuard<'_, AggState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Stacks discarded so far because the cap was hit.
    pub fn dropped_stacks(&self) -> u64 {
        self.locked().dropped
    }

    /// A copy of the accumulated profile, deterministically ordered.
    pub fn snapshot(&self) -> Profile {
        let state = self.locked();
        Profile {
            entries: state
                .stacks
                .iter()
                .map(|(stack, &(wall_ns, gas, count))| ProfileEntry {
                    stack: stack.clone(),
                    wall_ns,
                    gas,
                    count,
                })
                .collect(),
            dropped_stacks: state.dropped,
        }
    }

    fn on_span_end(
        &self,
        trace: u64,
        span: u64,
        parent: Option<u64>,
        name: &str,
        duration_ns: u64,
        attrs: &[(&'static str, AttrValue)],
    ) {
        let own_gas: u64 = attrs
            .iter()
            .filter(|(k, _)| *k == GAS_ATTR)
            .filter_map(|(_, v)| match v {
                AttrValue::U64(g) => Some(*g),
                _ => None,
            })
            .sum();

        let mut state = self.locked();
        let (child_wall, child_gas) = match state.open.remove(&span) {
            Some(o) => (o.child_wall_ns, o.child_gas),
            // SpanEnd without a matching SpanStart (aggregator attached
            // mid-span): treat it as leaf-only.
            None => (0, 0),
        };
        let self_wall = duration_ns.saturating_sub(child_wall);
        let self_gas = own_gas.saturating_sub(child_gas);

        // Build the stack root-first by walking the open parent chain.
        // The cycle guard bounds the walk: parent ids are sequence-
        // assigned so real chains are acyclic, but a sink must not trust
        // its input with its own termination.
        let mut frames = vec![sanitize_frame(name)];
        let mut cursor = parent;
        let mut last_span = span;
        for _ in 0..MAX_DEPTH {
            match cursor {
                Some(p) => match state.open.get(&p) {
                    Some(o) => {
                        frames.push(sanitize_frame(&o.name));
                        last_span = p;
                        cursor = o.parent;
                    }
                    // Ancestor already closed or never seen: the chain
                    // is cut here and the stack is rooted at this frame.
                    None => break,
                },
                None => {
                    // Adoption bridge: a root-of-trace span has
                    // `span == trace`; a parentless span whose id is
                    // *not* the trace id was adopted via
                    // `span_in_trace`. If the trace's true root is open
                    // here (in-process client), graft under it.
                    if last_span != trace {
                        if let Some(root) = state.open.get(&trace) {
                            frames.push(sanitize_frame(&root.name));
                        }
                    }
                    break;
                }
            }
        }

        // Credit this span's inclusive weights to its effective parent
        // so the parent's self weight excludes them.
        let effective_parent = match parent {
            Some(p) => Some(p),
            None if span != trace => Some(trace),
            None => None,
        };
        if let Some(p) = effective_parent {
            if let Some(po) = state.open.get_mut(&p) {
                po.child_wall_ns = po.child_wall_ns.saturating_add(duration_ns);
                po.child_gas = po.child_gas.saturating_add(own_gas);
            }
        }

        frames.reverse();
        let stack = frames.join(";");
        if let Some(slot) = state.stacks.get_mut(&stack) {
            slot.0 = slot.0.saturating_add(self_wall);
            slot.1 = slot.1.saturating_add(self_gas);
            slot.2 += 1;
        } else if state.stacks.len() < self.max_stacks {
            state.stacks.insert(stack, (self_wall, self_gas, 1));
        } else {
            state.dropped += 1;
        }
    }
}

/// Upper bound on stack depth during the parent walk.
const MAX_DEPTH: usize = 512;

impl Sink for ProfileAggregator {
    fn record(&self, event: Event) {
        match event {
            Event::SpanStart {
                span, parent, name, ..
            } => {
                self.locked().open.insert(
                    span.0,
                    OpenSpan {
                        name,
                        parent: parent.map(|p| p.0),
                        child_wall_ns: 0,
                        child_gas: 0,
                    },
                );
            }
            Event::SpanEnd {
                trace,
                span,
                parent,
                name,
                duration_ns,
                attrs,
                ..
            } => {
                self.on_span_end(
                    trace.0,
                    span.0,
                    parent.map(|p| p.0),
                    &name,
                    duration_ns,
                    &attrs,
                );
            }
            Event::Counter { .. } | Event::Gauge { .. } => {}
        }
    }
}

/// Folds a recorded event stream (e.g. [`MemorySink::events`]
/// (crate::MemorySink::events)) into a [`Profile`] in one shot — the
/// offline counterpart of attaching a live [`ProfileAggregator`].
pub fn fold_events(events: &[Event]) -> Profile {
    let agg = ProfileAggregator::new();
    for e in events {
        agg.record(e.clone());
    }
    agg.snapshot()
}

/// Frame names must not contain the folded-format separators; replace
/// `;`, whitespace and control characters with `_`.
fn sanitize_frame(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// SVG rendering
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct FrameNode {
    /// Inclusive weight (self + descendants).
    total: u64,
    /// Weight attributed to exactly this frame.
    self_weight: u64,
    /// Span-end count for stacks terminating here.
    count: u64,
    children: BTreeMap<String, FrameNode>,
}

const SVG_WIDTH: f64 = 1200.0;
const FRAME_HEIGHT: f64 = 17.0;
const TEXT_PAD: f64 = 3.0;
/// Approximate glyph advance for the 12px monospace label font.
const CHAR_WIDTH: f64 = 7.2;
/// Frames narrower than this are drawn but unlabeled.
const MIN_LABEL_WIDTH: f64 = 3.0 * CHAR_WIDTH;

fn render_svg(profile: &Profile, mode: ProfileMode, title: &str) -> String {
    // Assemble the frame tree.
    let mut root = FrameNode::default();
    for e in &profile.entries {
        let w = e.weight(mode);
        if w == 0 {
            continue;
        }
        root.total = root.total.saturating_add(w);
        let mut node = &mut root;
        for frame in e.stack.split(';') {
            node = node.children.entry(frame.to_string()).or_default();
            node.total = node.total.saturating_add(w);
        }
        node.self_weight = node.self_weight.saturating_add(w);
        node.count += e.count;
    }

    let depth = tree_depth(&root);
    let rows = depth.max(1) as f64 + 1.0; // +1 for the synthetic "all" row
    let header = 26.0;
    let height = header + rows * FRAME_HEIGHT + 8.0;

    let mut svg = String::new();
    svg.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{SVG_WIDTH}\" \
         height=\"{height}\" viewBox=\"0 0 {SVG_WIDTH} {height}\" \
         font-family=\"monospace\" font-size=\"12\">\n"
    ));
    svg.push_str(&format!(
        "<rect x=\"0\" y=\"0\" width=\"{SVG_WIDTH}\" height=\"{height}\" fill=\"#f8f8f8\"/>\n"
    ));
    let mut escaped_title = String::new();
    crate::xml::write_escaped(&mut escaped_title, title);
    svg.push_str(&format!(
        "<text x=\"{TEXT_PAD}\" y=\"17\" font-size=\"14\">{escaped_title} \
         ({} total, unit={})</text>\n",
        root.total,
        mode.unit()
    ));

    if root.total == 0 {
        svg.push_str(&format!(
            "<text x=\"{TEXT_PAD}\" y=\"{}\">no samples</text>\n",
            header + FRAME_HEIGHT
        ));
    } else {
        // Synthetic root frame spanning the whole width.
        draw_frame(
            &mut svg, "all", root.total, root.total, 0, 0.0, SVG_WIDTH, header, mode,
        );
        draw_children(
            &mut svg,
            &root,
            root.total,
            0.0,
            SVG_WIDTH,
            header + FRAME_HEIGHT,
            mode,
        );
    }
    svg.push_str("</svg>\n");
    svg
}

fn tree_depth(node: &FrameNode) -> usize {
    1 + node.children.values().map(tree_depth).max().unwrap_or(0)
}

fn draw_children(
    svg: &mut String,
    node: &FrameNode,
    grand_total: u64,
    x: f64,
    width: f64,
    y: f64,
    mode: ProfileMode,
) {
    let denom = node.total.max(1) as f64;
    let mut cursor = x;
    for (name, child) in &node.children {
        let w = width * (child.total as f64 / denom);
        draw_frame(
            svg,
            name,
            child.total,
            grand_total,
            child.count,
            cursor,
            w,
            y,
            mode,
        );
        draw_children(svg, child, grand_total, cursor, w, y + FRAME_HEIGHT, mode);
        cursor += w;
    }
}

#[allow(clippy::too_many_arguments)]
fn draw_frame(
    svg: &mut String,
    name: &str,
    total: u64,
    grand_total: u64,
    count: u64,
    x: f64,
    width: f64,
    y: f64,
    mode: ProfileMode,
) {
    let (r, g, b) = frame_color(name);
    let pct = 100.0 * total as f64 / grand_total.max(1) as f64;
    let mut label = String::new();
    crate::xml::write_escaped(&mut label, name);
    svg.push_str(&format!(
        "<g><title>{label}: {total} {} ({pct:.2}%, {count} ends)</title>\n",
        mode.unit()
    ));
    svg.push_str(&format!(
        "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
         fill=\"rgb({r},{g},{b})\" stroke=\"#f8f8f8\" stroke-width=\"0.5\"/>\n",
        width.max(0.2),
        FRAME_HEIGHT - 1.0
    ));
    if width >= MIN_LABEL_WIDTH {
        let budget = ((width - 2.0 * TEXT_PAD) / CHAR_WIDTH) as usize;
        let shown: String = if name.chars().count() > budget {
            name.chars()
                .take(budget.saturating_sub(1))
                .collect::<String>()
                + "…"
        } else {
            name.to_string()
        };
        let mut text = String::new();
        crate::xml::write_escaped(&mut text, &shown);
        svg.push_str(&format!(
            "<text x=\"{:.2}\" y=\"{:.2}\">{text}</text>\n",
            x + TEXT_PAD,
            y + FRAME_HEIGHT - 5.0
        ));
    }
    svg.push_str("</g>\n");
}

/// Deterministic warm-palette color from an FNV-1a hash of the frame
/// name, so the same frame is the same color in every render.
fn frame_color(name: &str) -> (u8, u8, u8) {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let r = 205 + (h % 50) as u8;
    let g = 60 + ((h >> 8) % 120) as u8;
    let b = ((h >> 16) % 40) as u8;
    (r, g, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LogicalClock, MemorySink, TelemetryHandle};
    use std::sync::Arc;

    /// Drives real spans through a handle and folds the recorded stream.
    fn folded_fixture() -> Profile {
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(
            Arc::new(LogicalClock::with_step(100)),
            Arc::clone(&sink) as Arc<dyn Sink>,
        );
        {
            let mut root = t.span("request");
            root.attr(GAS_ATTR, 1000u64);
            {
                let mut child = t.span("token");
                child.attr(GAS_ATTR, 300u64);
            }
            {
                let _leafless = t.span("verify");
            }
        }
        fold_events(&sink.events())
    }

    #[test]
    fn folds_parent_chains_into_stacks() {
        let p = folded_fixture();
        let stacks: Vec<&str> = p.entries.iter().map(|e| e.stack.as_str()).collect();
        assert_eq!(stacks, vec!["request", "request;token", "request;verify"]);
    }

    #[test]
    fn wall_self_time_excludes_children() {
        let p = folded_fixture();
        let by_stack = |s: &str| p.entries.iter().find(|e| e.stack == s).unwrap();
        // LogicalClock advances 100 per reading. Child spans consume
        // readings inside the root, so root self < root inclusive, and
        // the root frame's inclusive total reconstructs the full span.
        let root = by_stack("request");
        let token = by_stack("request;token");
        let verify = by_stack("request;verify");
        assert!(root.wall_ns > 0);
        assert!(token.wall_ns > 0);
        assert!(verify.wall_ns > 0);
        // Inclusive root total = sum of all self weights under it.
        let inclusive = p.root_total("request", ProfileMode::Wall);
        assert_eq!(inclusive, root.wall_ns + token.wall_ns + verify.wall_ns);
    }

    #[test]
    fn gas_self_weight_subtracts_child_gas() {
        let p = folded_fixture();
        let by_stack = |s: &str| p.entries.iter().find(|e| e.stack == s).unwrap();
        assert_eq!(by_stack("request").gas, 700); // 1000 own − 300 child
        assert_eq!(by_stack("request;token").gas, 300);
        assert_eq!(by_stack("request;verify").gas, 0);
        assert_eq!(p.root_total("request", ProfileMode::Gas), 1000);
    }

    #[test]
    fn folded_text_skips_zero_weights_and_is_sorted() {
        let p = folded_fixture();
        let folded = p.to_folded(ProfileMode::Gas);
        // `request;verify` has zero gas: absent from the gas folding.
        assert!(!folded.contains("request;verify"));
        assert!(folded.contains("request 700\n"));
        assert!(folded.contains("request;token 300\n"));
        let lines: Vec<&str> = folded.lines().collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn adopted_spans_graft_under_the_open_trace_root() {
        // Simulates the daemon case: the client opens `cli.search`, the
        // daemon adopts the trace via span_in_trace (parent=None, span id
        // != trace id) while the client span is still open.
        let sink = Arc::new(MemorySink::new());
        let t = TelemetryHandle::with(
            Arc::new(LogicalClock::with_step(10)),
            Arc::clone(&sink) as Arc<dyn Sink>,
        );
        {
            let _client = t.span("cli.search");
            let trace = _client.ctx().expect("enabled span has a context").trace;
            {
                let _adopted = t.span_in_trace("daemon.request", trace);
                let _inner = t.span("protocol.search");
            }
        }
        let p = fold_events(&sink.events());
        let stacks: Vec<&str> = p.entries.iter().map(|e| e.stack.as_str()).collect();
        assert!(
            stacks.contains(&"cli.search;daemon.request;protocol.search"),
            "stacks: {stacks:?}"
        );
        assert!(
            stacks.contains(&"cli.search;daemon.request"),
            "stacks: {stacks:?}"
        );
    }

    #[test]
    fn orphan_adopted_span_roots_its_own_stack() {
        // The real cross-process case: the trace root lives in another
        // process, so there is nothing to graft under.
        use crate::{SpanId, TraceId};
        let events = vec![Event::SpanEnd {
            trace: TraceId(999),
            span: SpanId(5),
            parent: None,
            name: "daemon.request".into(),
            start_ns: 0,
            duration_ns: 50,
            attrs: Vec::new(),
        }];
        let p = fold_events(&events);
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.entries[0].stack, "daemon.request");
        assert_eq!(p.entries[0].wall_ns, 50);
    }

    #[test]
    fn stack_cap_counts_dropped() {
        let agg = ProfileAggregator::with_max_stacks(1);
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            agg.record(Event::SpanEnd {
                trace: crate::TraceId(i as u64 + 1),
                span: crate::SpanId(i as u64 + 1),
                parent: None,
                name: (*name).into(),
                start_ns: 0,
                duration_ns: 1,
                attrs: Vec::new(),
            });
        }
        let p = agg.snapshot();
        assert_eq!(p.entries.len(), 1);
        assert_eq!(p.dropped_stacks, 2);
        assert_eq!(agg.dropped_stacks(), 2);
    }

    #[test]
    fn frame_names_are_sanitized() {
        let events = vec![Event::SpanEnd {
            trace: crate::TraceId(1),
            span: crate::SpanId(1),
            parent: None,
            name: "weird name;with\tseps".into(),
            start_ns: 0,
            duration_ns: 1,
            attrs: Vec::new(),
        }];
        let p = fold_events(&events);
        assert_eq!(p.entries[0].stack, "weird_name_with_seps");
    }

    #[test]
    fn svg_is_well_formed_xml_in_both_modes() {
        let p = folded_fixture();
        for mode in [ProfileMode::Wall, ProfileMode::Gas] {
            let svg = p.to_svg(mode, "test <&> profile");
            crate::xml::check(&svg).unwrap_or_else(|e| panic!("invalid SVG ({mode:?}): {e}"));
            assert!(svg.contains("http://www.w3.org/2000/svg"));
            assert!(svg.contains("request"));
        }
    }

    #[test]
    fn empty_profile_renders_well_formed_svg() {
        let p = Profile::default();
        let svg = p.to_svg(ProfileMode::Wall, "empty");
        crate::xml::check(&svg).unwrap();
        assert!(svg.contains("no samples"));
    }

    #[test]
    fn totals_reconcile_with_mode() {
        let p = folded_fixture();
        assert_eq!(p.total(ProfileMode::Gas), 1000);
        assert_eq!(
            p.total(ProfileMode::Wall),
            p.root_total("request", ProfileMode::Wall)
        );
    }
}
