//! Structured, leveled logging: the "what happened, in words" half of
//! the operations plane.
//!
//! Metrics aggregate and spans trace, but an operator tailing a daemon
//! needs discrete, human-meaningful records: "slow request", "connection
//! dropped", "restored generation 7". A [`LogRecord`] is that unit —
//! leveled, targeted at a subsystem, carrying the same `&'static
//! str`-keyed [`AttrValue`] fields spans use, and timestamped through
//! the handle's injectable [`Clock`](crate::Clock) so a
//! [`LogicalClock`](crate::LogicalClock) run produces byte-identical
//! log transcripts.
//!
//! Two encoders ship with the record: [`LogRecord::to_json_line`]
//! (RFC 8259-valid JSON lines, validated by [`crate::json::parse`] in
//! tests) for machines, and [`LogRecord::to_text`] for humans. Sinks are
//! pluggable: [`MemoryLogSink`] is a fixed-capacity ring for tests and
//! for the daemon's `Tail` endpoint / crash flight recorder;
//! [`WriterLogSink`] streams to stderr (or any writer) in either
//! encoding.

use std::collections::VecDeque;
use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json;
use crate::trace::{write_attrs_json, Attrs};

/// Severity of a [`LogRecord`]. Orders naturally: `Debug < Info < Warn <
/// Error`, so a minimum-level filter is one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Diagnostic detail, off by default.
    Debug,
    /// Normal operational events (boot, commit, shutdown).
    Info,
    /// Degraded-but-serving conditions (slow request, retried I/O).
    Warn,
    /// Failures worth paging over (corrupt frame, serve-loop error).
    Error,
}

impl Level {
    /// Lowercase name, as used in the JSON encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name (case-insensitive), for CLI flags.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One structured log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Clock reading when the record was made (the handle's [`Clock`]
    /// timeline — deterministic under a `LogicalClock`).
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, e.g. `"slicerd.rpc"`. `'static` so the
    /// disabled path never allocates for it.
    pub target: &'static str,
    /// Human-readable event description.
    pub message: String,
    /// Structured fields, in insertion order — same shape as span
    /// attributes.
    pub fields: Attrs,
}

impl LogRecord {
    /// The record as one RFC 8259-valid JSON object (no trailing
    /// newline): `{"ts_ns":..,"level":"..","target":"..","msg":"..",
    /// "fields":{..}}`.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(64 + self.message.len());
        s.push_str("{\"ts_ns\":");
        s.push_str(&self.ts_ns.to_string());
        s.push_str(",\"level\":\"");
        s.push_str(self.level.as_str());
        s.push_str("\",\"target\":");
        json::write_string(&mut s, self.target);
        s.push_str(",\"msg\":");
        json::write_string(&mut s, &self.message);
        s.push_str(",\"fields\":");
        write_attrs_json(&mut s, &self.fields);
        s.push('}');
        s
    }

    /// The record as one human-readable line (no trailing newline):
    /// `[         123ns] WARN  slicerd.rpc: slow request rpc.kind=search`.
    pub fn to_text(&self) -> String {
        let mut s = format!(
            "[{:>12}ns] {:<5} {}: {}",
            self.ts_ns,
            self.level.as_str().to_ascii_uppercase(),
            self.target,
            self.message
        );
        for (k, v) in &self.fields {
            s.push(' ');
            s.push_str(k);
            s.push('=');
            v.write_json(&mut s);
        }
        s
    }
}

/// Receives log records from a [`TelemetryHandle`](crate::TelemetryHandle).
pub trait LogSink: Send + Sync + fmt::Debug {
    /// Called once per record that passes the level filter, in program
    /// order.
    fn log(&self, record: &LogRecord);
}

/// Discards every record.
#[derive(Debug, Default)]
pub struct NullLogSink;

impl LogSink for NullLogSink {
    fn log(&self, _record: &LogRecord) {}
}

/// A fixed-capacity ring of the most recent records.
///
/// This is the test sink, the backing store of the daemon's `Tail`
/// endpoint, and the log half of the crash flight recorder: bounded
/// memory, newest-wins, cheap to snapshot.
#[derive(Debug)]
pub struct MemoryLogSink {
    capacity: usize,
    ring: Mutex<VecDeque<LogRecord>>,
    /// Records evicted to make room (total - retained).
    dropped: AtomicU64,
}

/// Default ring capacity: enough context for a post-mortem without
/// unbounded growth.
pub const DEFAULT_LOG_RING: usize = 256;

impl Default for MemoryLogSink {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_LOG_RING)
    }
}

impl MemoryLogSink {
    /// A ring retaining the last [`DEFAULT_LOG_RING`] records.
    pub fn new() -> Self {
        Self::default()
    }

    /// A ring retaining the last `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        MemoryLogSink {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, VecDeque<LogRecord>> {
        // Telemetry must never take the process down — recover from a
        // panicked writer instead of propagating the poison.
        match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// A copy of every retained record, oldest first.
    pub fn records(&self) -> Vec<LogRecord> {
        self.locked().iter().cloned().collect()
    }

    /// The last `n` retained records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<LogRecord> {
        let ring = self.locked();
        ring.iter()
            .skip(ring.len().saturating_sub(n))
            .cloned()
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Every retained record as JSON lines — the canonical byte string
    /// determinism tests compare.
    pub fn transcript(&self) -> String {
        let mut out = String::new();
        for r in self.locked().iter() {
            out.push_str(&r.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl LogSink for MemoryLogSink {
    fn log(&self, record: &LogRecord) {
        let mut ring = self.locked();
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record.clone());
    }
}

/// How a [`WriterLogSink`] encodes records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// One [`LogRecord::to_text`] line per record.
    Text,
    /// One [`LogRecord::to_json_line`] object per record.
    JsonLines,
}

/// Streams records to a writer, one line each.
pub struct WriterLogSink<W: Write + Send> {
    writer: Mutex<W>,
    format: LogFormat,
}

impl<W: Write + Send> WriterLogSink<W> {
    /// Wraps `writer` with the given encoding.
    pub fn new(writer: W, format: LogFormat) -> Self {
        WriterLogSink {
            writer: Mutex::new(writer),
            format,
        }
    }
}

impl WriterLogSink<std::io::Stderr> {
    /// Human-readable lines to stderr — the daemon's default.
    pub fn stderr_text() -> Self {
        Self::new(std::io::stderr(), LogFormat::Text)
    }

    /// JSON lines to stderr, for log shippers.
    pub fn stderr_json() -> Self {
        Self::new(std::io::stderr(), LogFormat::JsonLines)
    }
}

impl<W: Write + Send> fmt::Debug for WriterLogSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WriterLogSink")
            .field("format", &self.format)
            .finish_non_exhaustive()
    }
}

impl<W: Write + Send> LogSink for WriterLogSink<W> {
    fn log(&self, record: &LogRecord) {
        let line = match self.format {
            LogFormat::Text => record.to_text(),
            LogFormat::JsonLines => record.to_json_line(),
        };
        let mut w = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Logging must never take the process down: ignore I/O errors.
        let _ = writeln!(w, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AttrValue;

    fn rec(ts: u64, level: Level, msg: &str) -> LogRecord {
        LogRecord {
            ts_ns: ts,
            level,
            target: "test.target",
            message: msg.to_string(),
            fields: vec![
                ("count", AttrValue::U64(3)),
                ("name", AttrValue::Str("a\"b".into())),
                ("ok", AttrValue::Bool(true)),
            ],
        }
    }

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("info"), Some(Level::Info));
        assert_eq!(Level::parse("nope"), None);
        assert_eq!(Level::Error.to_string(), "error");
    }

    #[test]
    fn json_line_is_valid_and_escaped() {
        let line = rec(42, Level::Warn, "bad \"thing\"\nhappened").to_json_line();
        json::parse(&line).unwrap_or_else(|e| panic!("invalid JSON: {e}\n{line}"));
        assert!(line.contains("\"ts_ns\":42"));
        assert!(line.contains("\"level\":\"warn\""));
        assert!(line.contains("\\\"thing\\\""));
        assert!(line.contains("\\n"));
        assert!(line.contains("\"fields\":{\"count\":3,"));
        assert!(line.contains("a\\\"b"), "field strings must be escaped");
    }

    #[test]
    fn text_line_is_readable() {
        let line = rec(1500, Level::Info, "committed").to_text();
        assert!(line.contains("INFO"));
        assert!(line.contains("test.target: committed"));
        assert!(line.contains("count=3"));
        assert!(line.contains("ok=true"));
    }

    #[test]
    fn memory_ring_evicts_oldest() {
        let sink = MemoryLogSink::with_capacity(3);
        for i in 0..5u64 {
            sink.log(&rec(i, Level::Info, &format!("m{i}")));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<u64> = sink.records().iter().map(|r| r.ts_ns).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        let tail: Vec<u64> = sink.tail(2).iter().map(|r| r.ts_ns).collect();
        assert_eq!(tail, vec![3, 4]);
        assert_eq!(sink.tail(99).len(), 3);
        assert!(!sink.is_empty());
    }

    #[test]
    fn transcript_is_json_lines() {
        let sink = MemoryLogSink::new();
        sink.log(&rec(1, Level::Info, "a"));
        sink.log(&rec(2, Level::Error, "b"));
        let t = sink.transcript();
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            json::parse(line).unwrap_or_else(|e| panic!("invalid JSON line: {e}\n{line}"));
        }
    }

    #[test]
    fn writer_sink_writes_both_formats() {
        for (format, needle) in [
            (LogFormat::Text, "INFO"),
            (LogFormat::JsonLines, "\"level\":\"info\""),
        ] {
            let sink = WriterLogSink::new(Vec::new(), format);
            sink.log(&rec(7, Level::Info, "x"));
            let buf = match sink.writer.into_inner() {
                Ok(b) => b,
                Err(p) => p.into_inner(),
            };
            let text = String::from_utf8(buf).expect("utf8");
            assert!(text.contains(needle), "{format:?}: {text}");
            assert!(text.ends_with('\n'));
        }
    }
}
