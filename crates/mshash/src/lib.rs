//! # slicer-mshash
//!
//! The incremental multiset hash of Clarke et al. (MSet-Mu-Hash), used by
//! Slicer to bind each keyword's result set to a single field element.
//!
//! `H(M) = ∏_{b ∈ B} H(b)^{M_b}` over a prime field `GF(q)`: hashing a
//! multiset multiplies together the hash-to-field images of its elements, so
//! the hash is
//!
//! * **incremental** — `H(M ∪ N) = H(M) ·_q H(N)` ([`MsetHash::combine`]),
//! * **order-independent** — any permutation of the same multiset hashes
//!   identically, and
//! * **collision resistant** under the discrete-log assumption in `GF(q)`.
//!
//! The field modulus is a fixed 1024-bit safe prime baked into the crate
//! (generated once for the reproduction; see `FIELD_PRIME_HEX`).
//!
//! # Examples
//!
//! ```
//! use slicer_mshash::MsetHash;
//!
//! let mut h1 = MsetHash::empty();
//! h1.insert(b"record-1");
//! h1.insert(b"record-2");
//!
//! let mut h2 = MsetHash::empty();
//! h2.insert(b"record-2");
//! h2.insert(b"record-1");
//!
//! assert_eq!(h1, h2); // order independent
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slicer_bignum::{BigUint, MontgomeryCtx};
use slicer_crypto::Sha256;
use std::sync::OnceLock;

/// Hex encoding of the 1024-bit safe prime `q` defining `GF(q)`.
pub const FIELD_PRIME_HEX: &str = "895b5adc066c43eea6e7f77cd69c1d183edcb7e6ccb33ded38d1c1340417b168795be33eaa53607aefc524b013a93a3d304e876d789a7629c973ad19afe54e306ba5f489425aa202571abf3dfe719b651f433c8a51fdc57941faf25673df29e3f4db7ca5c3dd061d75b6e302cca68a41fda23a4cdf14db6ef3f46742715ead8b";

fn field() -> &'static MontgomeryCtx {
    static CTX: OnceLock<MontgomeryCtx> = OnceLock::new();
    CTX.get_or_init(|| {
        let p = BigUint::from_hex(FIELD_PRIME_HEX).expect("valid baked-in hex");
        MontgomeryCtx::new(&p).expect("field prime is odd")
    })
}

/// The field modulus `q`.
pub fn field_prime() -> &'static BigUint {
    field().modulus()
}

/// Maps arbitrary bytes to a nonzero element of `GF(q)`.
///
/// Hashes the input to a 32-byte seed, expands the seed with
/// counter-separated SHA-256 blocks to 1152 bits (128 bits beyond the
/// modulus, so the bias from the final reduction is negligible), then
/// reduces mod `q`. Zero maps to one so every image is a unit.
///
/// The prehash keeps every expansion block a single compression — the
/// counter input `counter ‖ seed` is 33 bytes regardless of `data` — and
/// collision resistance composes: colliding images need either a seed
/// collision or a collision inside the expansion.
pub fn hash_to_field(data: &[u8]) -> BigUint {
    let v = field().mul_wide(&BigUint::one(), &expand_wide(data));
    if v.is_zero() {
        BigUint::one()
    } else {
        v
    }
}

/// The 1152-bit seed-then-counter digest expansion feeding
/// [`hash_to_field`], before field reduction: four and a half
/// counter-separated digests of the seed (the fifth is truncated to its
/// first 16 bytes). 1152 bits is exactly the 128-bit headroom the bias
/// argument needs, and exactly the two-limbs-above-width operand shape
/// the field context folds in a single extended CIOS pass.
fn expand_wide(data: &[u8]) -> BigUint {
    let seed = slicer_crypto::sha256(data);
    let mut wide = [0u8; 144];
    for counter in 0u8..5 {
        let mut h = Sha256::new();
        h.update(&[counter]);
        h.update(&seed);
        let d = h.finalize();
        let at = counter as usize * 32;
        let take = d.len().min(144 - at);
        wide[at..at + take].copy_from_slice(&d[..take]);
    }
    BigUint::from_bytes_be(&wide)
}

/// A multiset hash value: an element of `GF(q)` with multiset semantics.
///
/// The empty multiset hashes to the multiplicative identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MsetHash {
    value: BigUint,
}

slicer_crypto::impl_codec!(MsetHash { value });

impl Default for MsetHash {
    fn default() -> Self {
        Self::empty()
    }
}

impl MsetHash {
    /// The hash of the empty multiset, `H(∅) = 1`.
    pub fn empty() -> Self {
        MsetHash {
            value: BigUint::one(),
        }
    }

    /// Hash of the single-element multiset `{data}`.
    pub fn of_element(data: &[u8]) -> Self {
        MsetHash {
            value: hash_to_field(data),
        }
    }

    /// Hash of an entire multiset given by an iterator of elements.
    pub fn of_multiset<'a, I: IntoIterator<Item = &'a [u8]>>(elements: I) -> Self {
        let mut h = Self::empty();
        for e in elements {
            h.insert(e);
        }
        h
    }

    /// Adds one element to the multiset (`h ← h +_H H({data})`).
    pub fn insert(&mut self, data: &[u8]) {
        // One fused wide multiply: the digest expansion folds into the
        // field and into the running product in the same CIOS passes.
        // `hash_to_field` maps zero to one, and multiplying by one is the
        // same as skipping, so the zero case only needs a guard here.
        let wide = expand_wide(data);
        let next = field().mul_wide(&self.value, &wide);
        if !next.is_zero() || self.value.is_zero() {
            self.value = next;
        }
    }

    /// Adds `count` copies of an element using one field exponentiation.
    pub fn insert_with_multiplicity(&mut self, data: &[u8], count: u64) {
        if count == 0 {
            return;
        }
        let e = field().modpow(&hash_to_field(data), &BigUint::from(count));
        self.value = field().mul(&self.value, &e);
    }

    /// Removes one occurrence of an element by multiplying with its field
    /// inverse. The caller is responsible for only removing elements that
    /// are present; removing an absent element yields the hash of a multiset
    /// with negative multiplicity, which will not match any real set.
    pub fn remove(&mut self, data: &[u8]) {
        let inv = hash_to_field(data)
            .modinv(field_prime())
            .expect("nonzero element of a prime field is invertible");
        self.value = field().mul(&self.value, &inv);
    }

    /// The union operator `+_H`: `H(M ∪ N) = H(M) +_H H(N)`.
    #[must_use]
    pub fn combine(&self, other: &MsetHash) -> MsetHash {
        MsetHash {
            value: field().mul(&self.value, &other.value),
        }
    }

    /// The underlying field element.
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// Canonical byte encoding (big-endian field element, 128 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.value.to_bytes_be_padded(128)
    }

    /// Reconstructs a hash from [`MsetHash::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        MsetHash {
            value: &BigUint::from_bytes_be(bytes) % field_prime(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let mut h = MsetHash::empty();
        let e = MsetHash::of_element(b"x");
        h = h.combine(&e);
        assert_eq!(h, e);
    }

    #[test]
    fn order_independence() {
        let items: Vec<&[u8]> = vec![b"a", b"b", b"c", b"d"];
        let mut rev = items.clone();
        rev.reverse();
        assert_eq!(MsetHash::of_multiset(items), MsetHash::of_multiset(rev));
    }

    #[test]
    fn multiset_not_set_semantics() {
        // {a, a} must differ from {a}.
        let h1 = MsetHash::of_multiset([b"a".as_slice(), b"a".as_slice()]);
        let h2 = MsetHash::of_multiset([b"a".as_slice()]);
        assert_ne!(h1, h2);
    }

    #[test]
    fn union_homomorphism() {
        let m: Vec<&[u8]> = vec![b"a", b"b"];
        let n: Vec<&[u8]> = vec![b"c"];
        let all: Vec<&[u8]> = vec![b"a", b"b", b"c"];
        assert_eq!(
            MsetHash::of_multiset(m.clone()).combine(&MsetHash::of_multiset(n)),
            MsetHash::of_multiset(all)
        );
    }

    #[test]
    fn multiplicity_fast_path_matches_repeated_insert() {
        let mut fast = MsetHash::empty();
        fast.insert_with_multiplicity(b"elem", 7);
        let mut slow = MsetHash::empty();
        for _ in 0..7 {
            slow.insert(b"elem");
        }
        assert_eq!(fast, slow);
        // Zero multiplicity is a no-op.
        let mut zero = MsetHash::empty();
        zero.insert_with_multiplicity(b"elem", 0);
        assert_eq!(zero, MsetHash::empty());
    }

    #[test]
    fn remove_inverts_insert() {
        let mut h = MsetHash::of_multiset([b"a".as_slice(), b"b".as_slice()]);
        h.remove(b"b");
        assert_eq!(h, MsetHash::of_multiset([b"a".as_slice()]));
    }

    #[test]
    fn distinct_elements_distinct_hashes() {
        assert_ne!(MsetHash::of_element(b"a"), MsetHash::of_element(b"b"));
    }

    #[test]
    fn byte_roundtrip() {
        let h = MsetHash::of_multiset([b"x".as_slice(), b"y".as_slice()]);
        assert_eq!(MsetHash::from_bytes(&h.to_bytes()), h);
        assert_eq!(h.to_bytes().len(), 128);
    }

    #[test]
    fn hash_to_field_in_range_and_nonzero() {
        for i in 0..50u32 {
            let v = hash_to_field(&i.to_be_bytes());
            assert!(!v.is_zero());
            assert!(&v < field_prime());
        }
    }

    #[test]
    fn field_prime_is_1024_bits() {
        assert_eq!(field_prime().bit_len(), 1024);
        assert!(field_prime().is_probable_prime(4));
    }
}
