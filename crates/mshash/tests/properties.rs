//! Property-based validation of the multiset-hash algebra.

use slicer_mshash::MsetHash;
use slicer_testkit::{prop_assert_eq, prop_assert_ne, prop_check, Gen};

fn hash_of(items: &[Vec<u8>]) -> MsetHash {
    MsetHash::of_multiset(items.iter().map(Vec::as_slice))
}

/// Draws between `min` and `max` byte strings of up to `elem_max` bytes.
fn vec_of_bytes(g: &mut Gen, min: usize, max: usize, elem_max: usize) -> Vec<Vec<u8>> {
    let n = g.usize_in(min, max);
    (0..n).map(|_| g.bytes(0, elem_max)).collect()
}

#[test]
fn permutation_invariance() {
    prop_check!(0x3511, 64, |g| {
        let items = vec_of_bytes(g, 0, 11, 15);
        let seed = g.u64();
        let mut shuffled = items.clone();
        // Deterministic Fisher–Yates from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        prop_assert_eq!(hash_of(&items), hash_of(&shuffled));
        Ok(())
    });
}

#[test]
fn union_homomorphism() {
    prop_check!(0x3512, 64, |g| {
        let a = vec_of_bytes(g, 0, 7, 7);
        let b = vec_of_bytes(g, 0, 7, 7);
        let combined = hash_of(&a).combine(&hash_of(&b));
        let mut all = a.clone();
        all.extend(b.clone());
        prop_assert_eq!(combined, hash_of(&all));
        Ok(())
    });
}

#[test]
fn insert_remove_cancel() {
    prop_check!(0x3513, 64, |g| {
        let base = vec_of_bytes(g, 0, 7, 7);
        let extra = g.bytes(0, 7);
        let original = hash_of(&base);
        let mut h = original.clone();
        h.insert(&extra);
        prop_assert_ne!(&h, &original);
        h.remove(&extra);
        prop_assert_eq!(h, original);
        Ok(())
    });
}

#[test]
fn multiplicity_consistency() {
    prop_check!(0x3514, 64, |g| {
        let elem = g.bytes(0, 7);
        let count = g.u64_in(0, 19);
        let mut bulk = MsetHash::empty();
        bulk.insert_with_multiplicity(&elem, count);
        let mut serial = MsetHash::empty();
        for _ in 0..count {
            serial.insert(&elem);
        }
        prop_assert_eq!(bulk, serial);
        Ok(())
    });
}

#[test]
fn extra_element_always_detected() {
    prop_check!(0x3515, 64, |g| {
        // The core soundness property Algorithm 5 relies on: dropping any
        // element changes the hash.
        let n = g.usize_in(1, 7);
        let items: Vec<Vec<u8>> = (0..n).map(|_| g.bytes(1, 7)).collect();
        let full = hash_of(&items);
        for skip in 0..items.len() {
            let mut partial: Vec<Vec<u8>> = items.clone();
            partial.remove(skip);
            prop_assert_ne!(&hash_of(&partial), &full);
        }
        Ok(())
    });
}

#[test]
fn codec_roundtrip() {
    prop_check!(0x3516, 64, |g| {
        let h = hash_of(&vec_of_bytes(g, 0, 7, 7));
        let bytes = slicer_crypto::codec::to_bytes(&h).map_err(|e| e.to_string())?;
        let back: MsetHash = slicer_crypto::codec::from_bytes(&bytes).map_err(|e| e.to_string())?;
        prop_assert_eq!(back, h);
        Ok(())
    });
}
