//! Property-based validation of the multiset-hash algebra.

use proptest::prelude::*;
use slicer_mshash::MsetHash;

fn hash_of(items: &[Vec<u8>]) -> MsetHash {
    MsetHash::of_multiset(items.iter().map(Vec::as_slice))
}

proptest! {
    #[test]
    fn permutation_invariance(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 0..12),
        seed in any::<u64>(),
    ) {
        let mut shuffled = items.clone();
        // Deterministic Fisher–Yates from the seed.
        let mut s = seed;
        for i in (1..shuffled.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (s % (i as u64 + 1)) as usize);
        }
        prop_assert_eq!(hash_of(&items), hash_of(&shuffled));
    }

    #[test]
    fn union_homomorphism(
        a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..8),
        b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..8),
    ) {
        let combined = hash_of(&a).combine(&hash_of(&b));
        let mut all = a.clone();
        all.extend(b.clone());
        prop_assert_eq!(combined, hash_of(&all));
    }

    #[test]
    fn insert_remove_cancel(
        base in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 0..8),
        extra in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let original = hash_of(&base);
        let mut h = original.clone();
        h.insert(&extra);
        prop_assert_ne!(&h, &original, "insertion must change the hash");
        h.remove(&extra);
        prop_assert_eq!(h, original);
    }

    #[test]
    fn multiplicity_consistency(
        elem in proptest::collection::vec(any::<u8>(), 0..8),
        count in 0u64..20,
    ) {
        let mut bulk = MsetHash::empty();
        bulk.insert_with_multiplicity(&elem, count);
        let mut serial = MsetHash::empty();
        for _ in 0..count {
            serial.insert(&elem);
        }
        prop_assert_eq!(bulk, serial);
    }

    #[test]
    fn extra_element_always_detected(
        items in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 1..8),
    ) {
        // The core soundness property Algorithm 5 relies on: dropping any
        // element changes the hash.
        let full = hash_of(&items);
        for skip in 0..items.len() {
            let mut partial: Vec<Vec<u8>> = items.clone();
            partial.remove(skip);
            prop_assert_ne!(&hash_of(&partial), &full, "dropping item {} undetected", skip);
        }
    }
}
