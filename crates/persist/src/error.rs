//! The persistence error type.

use std::error::Error;
use std::fmt;
use std::path::Path;

/// Errors raised by the segment store.
///
/// `Corrupt` is the torn-write signal: the loader treats it (and `Io`) as
/// "this generation is not sealed" and falls back to an older one rather
/// than propagating, so a single flipped bit never takes the daemon down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system I/O failure.
    Io {
        /// The file or directory involved.
        path: String,
        /// The OS error message.
        msg: String,
    },
    /// A file exists but fails validation: bad magic, truncated frame,
    /// checksum mismatch, undecodable payload or a manifest that
    /// contradicts itself.
    Corrupt {
        /// The offending file.
        path: String,
        /// What the validator found.
        detail: String,
    },
    /// No generation in the directory could be loaded; carries a
    /// human-readable summary of every attempt.
    NoSealedGeneration {
        /// The store directory.
        dir: String,
        /// One line per failed generation.
        attempts: Vec<String>,
    },
}

impl PersistError {
    pub(crate) fn io(path: &Path, err: &std::io::Error) -> Self {
        PersistError::Io {
            path: path.display().to_string(),
            msg: err.to_string(),
        }
    }

    pub(crate) fn corrupt(path: &Path, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.display().to_string(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, msg } => write!(f, "i/o error on {path}: {msg}"),
            PersistError::Corrupt { path, detail } => write!(f, "corrupt file {path}: {detail}"),
            PersistError::NoSealedGeneration { dir, attempts } => {
                write!(f, "no sealed generation in {dir}")?;
                for a in attempts {
                    write!(f, "; {a}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for PersistError {}
