//! # slicer-persist
//!
//! Crash-safe segmented on-disk persistence for a Slicer deployment.
//!
//! The paper's system model (§III) treats owner, cloud and chain as
//! long-lived separate parties, but state that lives only on one heap
//! dies with the process and forces a full rebuild. This crate gives the
//! encrypted index `I`, the prime list `X`, the accumulator value `Ac`
//! and the owner's trapdoor/set-hash state a durable home:
//!
//! * [`Snapshot`] — everything one instance needs to resume, captured
//!   from a live owner/cloud pair and encoded with the workspace's own
//!   [`slicer_crypto::codec`] (no serialization framework).
//! * [`SegmentStore`] — a generation-numbered segment directory. Every
//!   commit writes checksummed segment files, a manifest listing them,
//!   and finally flips the `CURRENT` pointer by atomic rename. A torn
//!   write — truncated segment, flipped bit, missing manifest — is
//!   detected by the per-frame SHA-256 checksums and recovery falls back
//!   to the last *sealed* generation.
//!
//! On-disk layout (see DESIGN.md §11 for the full diagram):
//!
//! ```text
//! <dir>/
//!   CURRENT                 "gen <n>\n" — flipped last, by rename
//!   manifest-<n>.slc        framed Manifest: segment names + checksums
//!   seg-<n>-<idx>.slc       framed payload chunks
//! ```
//!
//! Every `.slc` file is a magic header followed by frames of
//! `[u64 LE length ‖ payload ‖ SHA-256(payload)]`.
//!
//! # Examples
//!
//! ```no_run
//! use slicer_persist::{SegmentStore, Snapshot};
//! # fn demo(snapshot: Snapshot) -> Result<(), slicer_persist::PersistError> {
//! let store = SegmentStore::open("/var/lib/slicerd")?;
//! let generation = store.commit(&snapshot)?;
//! let (gen, restored) = store.load()?.expect("committed above");
//! assert_eq!(gen, generation);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod frame;
mod snapshot;
mod store;

pub use error::PersistError;
pub use frame::{read_frames, write_frames};
pub use snapshot::{Snapshot, SnapshotMeta};
pub use store::{Manifest, SegmentEntry, SegmentRole, SegmentStore};
