//! The generation-numbered segment directory.
//!
//! Commit protocol (crash-safe by ordering):
//!
//! 1. write every `seg-<gen>-<idx>.slc` (fsync each),
//! 2. write `manifest-<gen>.slc` listing the segments and their
//!    whole-file checksums (fsync),
//! 3. write `CURRENT.tmp` and atomically rename it over `CURRENT`
//!    (fsync the directory) — this rename *is* the commit point,
//! 4. prune generations older than the previous one.
//!
//! A crash before step 3 leaves the old `CURRENT` pointing at the old
//! sealed generation; the half-written files of the new generation fail
//! checksum validation and are ignored. A crash after step 3 is a
//! completed commit. Recovery therefore always lands on the last sealed
//! generation, and the previous generation is retained as a fallback
//! against torn writes that corrupt the current one in place.

use crate::error::PersistError;
use crate::frame::{read_frames, write_frames};
use crate::snapshot::{Snapshot, SnapshotMeta};
use slicer_bignum::BigUint;
use slicer_core::OwnerState;
use slicer_crypto::codec::{from_bytes, to_bytes, CodecError, Decode, Encode, Reader};
use slicer_store::{CloudState, EncryptedIndex, IndexLabel, PrimeList};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Index entries per `IndexChunk` segment.
const INDEX_CHUNK: usize = 4096;
/// Primes per `PrimesChunk` segment.
const PRIMES_CHUNK: usize = 8192;
/// Name of the commit-pointer file.
const CURRENT: &str = "CURRENT";

/// What a segment file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentRole {
    /// Deployment parameters + key seed ([`SnapshotMeta`]).
    Meta,
    /// The owner's `T`/`S` state.
    Owner,
    /// The accumulator pair (owner value, cloud mirror).
    Accumulator,
    /// A chunk of encrypted-index entries, in ascending label order.
    IndexChunk,
    /// A chunk of the prime list `X`, in list order.
    PrimesChunk,
}

impl Encode for SegmentRole {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            SegmentRole::Meta => 0,
            SegmentRole::Owner => 1,
            SegmentRole::Accumulator => 2,
            SegmentRole::IndexChunk => 3,
            SegmentRole::PrimesChunk => 4,
        };
        tag.encode(out);
    }
}

impl Decode for SegmentRole {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(reader)? {
            0 => Ok(SegmentRole::Meta),
            1 => Ok(SegmentRole::Owner),
            2 => Ok(SegmentRole::Accumulator),
            3 => Ok(SegmentRole::IndexChunk),
            4 => Ok(SegmentRole::PrimesChunk),
            t => Err(CodecError::msg(format!("invalid segment role tag {t}"))),
        }
    }
}

/// One manifest line: a segment file, its role and its whole-file
/// SHA-256.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name relative to the store directory.
    pub name: String,
    /// What the segment holds.
    pub role: SegmentRole,
    /// SHA-256 of the entire file as written.
    pub checksum: [u8; 32],
}

slicer_crypto::impl_codec!(SegmentEntry {
    name,
    role,
    checksum,
});

/// The manifest sealing one generation: the authoritative list of the
/// generation's segment files and their checksums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// The generation this manifest seals.
    pub generation: u64,
    /// Segment files in decode order.
    pub segments: Vec<SegmentEntry>,
}

slicer_crypto::impl_codec!(Manifest {
    generation,
    segments,
});

/// A crash-safe segment store rooted at one directory.
#[derive(Debug, Clone)]
pub struct SegmentStore {
    dir: PathBuf,
}

fn codec_err(path: &Path, e: &CodecError) -> PersistError {
    PersistError::corrupt(path, e.to_string())
}

fn manifest_name(generation: u64) -> String {
    format!("manifest-{generation:010}.slc")
}

fn segment_name(generation: u64, index: usize) -> String {
    format!("seg-{generation:010}-{index:04}.slc")
}

/// Parses the generation out of `manifest-<gen>.slc`, if `name` has that
/// shape.
fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("manifest-")?
        .strip_suffix(".slc")?
        .parse()
        .ok()
}

/// Parses the generation out of `seg-<gen>-<idx>.slc`.
fn parse_segment_name(name: &str) -> Option<u64> {
    let middle = name.strip_prefix("seg-")?.strip_suffix(".slc")?;
    let (generation, _idx) = middle.split_once('-')?;
    generation.parse().ok()
}

impl SegmentStore {
    /// Opens (creating if necessary) a store directory.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] when the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| PersistError::io(&dir, &e))?;
        Ok(SegmentStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Every generation with a manifest file present, ascending. Makes no
    /// claim about validity — a listed generation may still fail checksum
    /// validation on load.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] when the directory cannot be listed.
    pub fn generations(&self) -> Result<Vec<u64>, PersistError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| PersistError::io(&self.dir, &e))?;
        let mut gens = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| PersistError::io(&self.dir, &e))?;
            if let Some(g) = entry.file_name().to_str().and_then(parse_manifest_name) {
                gens.push(g);
            }
        }
        gens.sort_unstable();
        gens.dedup();
        Ok(gens)
    }

    /// The generation `CURRENT` points at, if the pointer exists and
    /// parses. A missing or garbled pointer is not an error — recovery
    /// falls back to scanning manifests.
    pub fn current_generation(&self) -> Option<u64> {
        let content = fs::read_to_string(self.dir.join(CURRENT)).ok()?;
        content.trim().strip_prefix("gen ")?.parse().ok()
    }

    /// Commits a snapshot as a new sealed generation and returns its
    /// number. The previous generation is retained for torn-write
    /// fallback; anything older is pruned.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failures. A failed
    /// commit never damages the previously sealed generation.
    pub fn commit(&self, snapshot: &Snapshot) -> Result<u64, PersistError> {
        let generation = self.generations()?.last().copied().unwrap_or(0) + 1;
        let mut segments: Vec<SegmentEntry> = Vec::new();

        let meta_bytes = to_bytes(&snapshot.meta).map_err(|e| codec_err(&self.dir, &e))?;
        self.write_segment(generation, &mut segments, SegmentRole::Meta, &[meta_bytes])?;

        let owner_bytes = to_bytes(&snapshot.owner).map_err(|e| codec_err(&self.dir, &e))?;
        self.write_segment(
            generation,
            &mut segments,
            SegmentRole::Owner,
            &[owner_bytes],
        )?;

        let acc_pair = (
            snapshot.accumulator.clone(),
            snapshot.cloud.accumulator.clone(),
        );
        let acc_bytes = to_bytes(&acc_pair).map_err(|e| codec_err(&self.dir, &e))?;
        self.write_segment(
            generation,
            &mut segments,
            SegmentRole::Accumulator,
            &[acc_bytes],
        )?;

        // Index entries travel in ascending label order so chunk contents
        // (and checksums) are identical across runs.
        let sorted = snapshot.cloud.index.sorted_entries();
        for chunk in sorted.chunks(INDEX_CHUNK) {
            let owned: Vec<(IndexLabel, Vec<u8>)> =
                chunk.iter().map(|(l, d)| (**l, (*d).clone())).collect();
            let bytes = to_bytes(&owned).map_err(|e| codec_err(&self.dir, &e))?;
            self.write_segment(generation, &mut segments, SegmentRole::IndexChunk, &[bytes])?;
        }

        for chunk in snapshot.cloud.primes.as_slice().chunks(PRIMES_CHUNK) {
            let owned: Vec<BigUint> = chunk.to_vec();
            let bytes = to_bytes(&owned).map_err(|e| codec_err(&self.dir, &e))?;
            self.write_segment(
                generation,
                &mut segments,
                SegmentRole::PrimesChunk,
                &[bytes],
            )?;
        }

        let manifest = Manifest {
            generation,
            segments,
        };
        let manifest_bytes = to_bytes(&manifest).map_err(|e| codec_err(&self.dir, &e))?;
        let manifest_path = self.dir.join(manifest_name(generation));
        write_frames(&manifest_path, &[manifest_bytes])?;

        // The commit point: flip CURRENT by atomic rename.
        let tmp = self.dir.join("CURRENT.tmp");
        let mut file = fs::File::create(&tmp).map_err(|e| PersistError::io(&tmp, &e))?;
        file.write_all(format!("gen {generation}\n").as_bytes())
            .map_err(|e| PersistError::io(&tmp, &e))?;
        file.sync_all().map_err(|e| PersistError::io(&tmp, &e))?;
        drop(file);
        let current = self.dir.join(CURRENT);
        fs::rename(&tmp, &current).map_err(|e| PersistError::io(&current, &e))?;
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }

        self.prune_older_than(generation.saturating_sub(1));
        Ok(generation)
    }

    /// Loads the most recent *sealed* generation: the one `CURRENT`
    /// points at when it validates, otherwise the newest older
    /// generation that does. Returns `None` on a store with no
    /// manifests at all (fresh directory).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NoSealedGeneration`] when manifests exist
    /// but none validates, and [`PersistError::Io`] when the directory
    /// itself cannot be read.
    pub fn load(&self) -> Result<Option<(u64, Snapshot)>, PersistError> {
        let mut candidates = self.generations()?;
        candidates.reverse(); // newest first
        if let Some(cur) = self.current_generation() {
            // Try the committed pointer first, then everything else
            // newest-first.
            candidates.retain(|&g| g != cur);
            candidates.insert(0, cur);
        }
        if candidates.is_empty() {
            return Ok(None);
        }
        let mut attempts = Vec::new();
        for generation in candidates {
            match self.load_generation(generation) {
                Ok(snapshot) => return Ok(Some((generation, snapshot))),
                Err(e) => attempts.push(format!("generation {generation}: {e}")),
            }
        }
        Err(PersistError::NoSealedGeneration {
            dir: self.dir.display().to_string(),
            attempts,
        })
    }

    /// Loads and fully validates one specific generation.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] on any checksum, framing or
    /// decoding failure, and [`PersistError::Io`] on missing files.
    pub fn load_generation(&self, generation: u64) -> Result<Snapshot, PersistError> {
        let manifest_path = self.dir.join(manifest_name(generation));
        let (frames, _sum) = read_frames(&manifest_path)?;
        let [manifest_frame] = frames.as_slice() else {
            return Err(PersistError::corrupt(
                &manifest_path,
                format!("expected 1 manifest frame, found {}", frames.len()),
            ));
        };
        let manifest: Manifest =
            from_bytes(manifest_frame).map_err(|e| codec_err(&manifest_path, &e))?;
        if manifest.generation != generation {
            return Err(PersistError::corrupt(
                &manifest_path,
                format!(
                    "manifest claims generation {}, file name says {generation}",
                    manifest.generation
                ),
            ));
        }

        let mut meta: Option<SnapshotMeta> = None;
        let mut owner: Option<OwnerState> = None;
        let mut accumulators: Option<(BigUint, Option<BigUint>)> = None;
        let mut index = EncryptedIndex::new();
        let mut primes = PrimeList::new();

        for entry in &manifest.segments {
            let path = self.dir.join(&entry.name);
            let (frames, file_sum) = read_frames(&path)?;
            if file_sum != entry.checksum {
                return Err(PersistError::corrupt(
                    &path,
                    "file checksum does not match manifest",
                ));
            }
            for frame in &frames {
                match entry.role {
                    SegmentRole::Meta => {
                        meta = Some(from_bytes(frame).map_err(|e| codec_err(&path, &e))?);
                    }
                    SegmentRole::Owner => {
                        owner = Some(from_bytes(frame).map_err(|e| codec_err(&path, &e))?);
                    }
                    SegmentRole::Accumulator => {
                        accumulators = Some(from_bytes(frame).map_err(|e| codec_err(&path, &e))?);
                    }
                    SegmentRole::IndexChunk => {
                        let chunk: Vec<(IndexLabel, Vec<u8>)> =
                            from_bytes(frame).map_err(|e| codec_err(&path, &e))?;
                        for (label, data) in chunk {
                            index
                                .put(label, data)
                                .map_err(|e| PersistError::corrupt(&path, e.to_string()))?;
                        }
                    }
                    SegmentRole::PrimesChunk => {
                        let chunk: Vec<BigUint> =
                            from_bytes(frame).map_err(|e| codec_err(&path, &e))?;
                        for p in chunk {
                            primes.push(p);
                        }
                    }
                }
            }
        }

        let Some(meta) = meta else {
            return Err(PersistError::corrupt(&manifest_path, "no meta segment"));
        };
        let Some(owner) = owner else {
            return Err(PersistError::corrupt(&manifest_path, "no owner segment"));
        };
        let Some((accumulator, cloud_accumulator)) = accumulators else {
            return Err(PersistError::corrupt(
                &manifest_path,
                "no accumulator segment",
            ));
        };
        Ok(Snapshot {
            meta,
            owner,
            accumulator,
            cloud: CloudState {
                index,
                primes,
                accumulator: cloud_accumulator,
            },
        })
    }

    /// Writes one segment file and records its manifest entry.
    fn write_segment(
        &self,
        generation: u64,
        segments: &mut Vec<SegmentEntry>,
        role: SegmentRole,
        frames: &[Vec<u8>],
    ) -> Result<(), PersistError> {
        let name = segment_name(generation, segments.len());
        let checksum = write_frames(&self.dir.join(&name), frames)?;
        segments.push(SegmentEntry {
            name,
            role,
            checksum,
        });
        Ok(())
    }

    /// Removes every segment and manifest file of generations older than
    /// `keep_from`. Best-effort: a file that cannot be removed is left
    /// behind as garbage and never affects correctness, since loads go
    /// through manifests.
    fn prune_older_than(&self, keep_from: u64) {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else {
                continue;
            };
            let generation = parse_manifest_name(name).or_else(|| parse_segment_name(name));
            if let Some(g) = generation {
                if g < keep_from {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        assert_eq!(parse_manifest_name(&manifest_name(17)), Some(17));
        assert_eq!(parse_segment_name(&segment_name(17, 3)), Some(17));
        assert_eq!(parse_manifest_name("CURRENT"), None);
        assert_eq!(parse_segment_name("manifest-0000000001.slc"), None);
    }

    #[test]
    fn role_codec_rejects_unknown_tags() {
        let roles = [
            SegmentRole::Meta,
            SegmentRole::Owner,
            SegmentRole::Accumulator,
            SegmentRole::IndexChunk,
            SegmentRole::PrimesChunk,
        ];
        for role in roles {
            let bytes = to_bytes(&role).unwrap();
            assert_eq!(from_bytes::<SegmentRole>(&bytes).unwrap(), role);
        }
        assert!(from_bytes::<SegmentRole>(&[9]).is_err());
    }
}
