//! Checksummed frame files: the unit every segment and manifest is
//! stored in.
//!
//! A `.slc` file is the 8-byte magic followed by zero or more frames,
//! each `[u64 LE payload length ‖ payload ‖ SHA-256(payload)]`. The
//! per-frame checksum localizes torn writes: a segment truncated
//! mid-frame or a single flipped payload bit fails validation on read,
//! and the caller falls back to the previous sealed generation.

use crate::error::PersistError;
use slicer_crypto::sha256;
use std::fs;
use std::io::Write;
use std::path::Path;

/// File magic: identifies a Slicer segment file, version 1.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"SLCSEG1\0";

/// Serializes `frames` into one in-memory segment image.
pub(crate) fn encode_frames(frames: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = frames.iter().map(|f| 8 + f.len() + 32).sum();
    let mut buf = Vec::with_capacity(SEGMENT_MAGIC.len() + total);
    buf.extend_from_slice(SEGMENT_MAGIC);
    for frame in frames {
        buf.extend_from_slice(&(frame.len() as u64).to_le_bytes());
        buf.extend_from_slice(frame);
        buf.extend_from_slice(&sha256(frame));
    }
    buf
}

/// Writes `frames` to `path` (fsynced) and returns the SHA-256 of the
/// whole file — the checksum the manifest records for the segment.
///
/// Public so sibling crates can persist their own checksummed artifacts
/// in the same `.slc` format (the daemon's crash flight recorder does).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on any filesystem failure.
pub fn write_frames(path: &Path, frames: &[Vec<u8>]) -> Result<[u8; 32], PersistError> {
    let image = encode_frames(frames);
    let mut file = fs::File::create(path).map_err(|e| PersistError::io(path, &e))?;
    file.write_all(&image)
        .map_err(|e| PersistError::io(path, &e))?;
    file.sync_all().map_err(|e| PersistError::io(path, &e))?;
    Ok(sha256(&image))
}

/// Splits `bytes` at `n` without panicking on short input.
fn split_checked(bytes: &[u8], n: usize) -> Option<(&[u8], &[u8])> {
    Some((bytes.get(..n)?, bytes.get(n..)?))
}

/// Reads and validates a frame file: magic, frame structure and every
/// per-frame checksum. Returns the frames plus the whole-file SHA-256
/// (for comparison against a manifest entry).
///
/// # Errors
///
/// Returns [`PersistError::Io`] when the file cannot be read and
/// [`PersistError::Corrupt`] on any validation failure.
pub fn read_frames(path: &Path) -> Result<(Vec<Vec<u8>>, [u8; 32]), PersistError> {
    let bytes = fs::read(path).map_err(|e| PersistError::io(path, &e))?;
    let file_sum = sha256(&bytes);
    let Some(mut cursor) = bytes.strip_prefix(SEGMENT_MAGIC.as_slice()) else {
        return Err(PersistError::corrupt(path, "bad or missing magic header"));
    };
    let mut frames = Vec::new();
    while !cursor.is_empty() {
        let Some((len_bytes, tail)) = split_checked(cursor, 8) else {
            return Err(PersistError::corrupt(path, "truncated frame length"));
        };
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(len_bytes);
        let len = usize::try_from(u64::from_le_bytes(len8))
            .map_err(|_| PersistError::corrupt(path, "frame length overflows usize"))?;
        let Some((payload, tail)) = split_checked(tail, len) else {
            return Err(PersistError::corrupt(
                path,
                format!("truncated frame payload (want {len} bytes)"),
            ));
        };
        let Some((sum, tail)) = split_checked(tail, 32) else {
            return Err(PersistError::corrupt(path, "truncated frame checksum"));
        };
        if sum != sha256(payload) {
            return Err(PersistError::corrupt(
                path,
                format!("frame {} checksum mismatch", frames.len()),
            ));
        }
        frames.push(payload.to_vec());
        cursor = tail;
    }
    Ok((frames, file_sum))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slicer-frame-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("f.slc")
    }

    #[test]
    fn roundtrip_preserves_frames_and_checksum() {
        let path = tmp("rt");
        let frames = vec![vec![1u8, 2, 3], Vec::new(), vec![0u8; 100]];
        let sum = write_frames(&path, &frames).unwrap();
        let (back, read_sum) = read_frames(&path).unwrap();
        assert_eq!(back, frames);
        assert_eq!(sum, read_sum);
    }

    #[test]
    fn truncation_is_corrupt() {
        let path = tmp("trunc");
        write_frames(&path, &[vec![7u8; 64]]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(
            read_frames(&path),
            Err(PersistError::Corrupt { .. })
        ));
    }

    #[test]
    fn flipped_payload_bit_is_corrupt() {
        let path = tmp("flip");
        write_frames(&path, &[vec![7u8; 64]]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[SEGMENT_MAGIC.len() + 8 + 3] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_frames(&path).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn wrong_magic_is_corrupt() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTSLICER").unwrap();
        let err = read_frames(&path).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
    }
}
