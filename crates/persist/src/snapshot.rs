//! The typed snapshot: everything one Slicer instance needs to resume.

use slicer_accumulator::RsaParams;
use slicer_bignum::BigUint;
use slicer_core::{CloudServer, DataOwner, OwnerState, SlicerConfig};
use slicer_store::CloudState;

/// Deployment parameters persisted alongside the state so a restored
/// process reconstructs an identical [`SlicerConfig`] — plus the key
/// seed, from which the whole key schedule re-derives deterministically
/// (`KeySet::from_seed`). The worker count is *not* persisted: pool
/// sizing is a property of the machine, not of the data, and protocol
/// outputs are worker-count independent.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// The owner's key-derivation seed.
    pub seed: u64,
    /// Value bit width `b`.
    pub value_bits: u8,
    /// Prime representative size.
    pub prime_bits: u32,
    /// Trapdoor modulus size.
    pub trapdoor_bits: u32,
    /// RSA accumulator public parameters.
    pub accumulator_params: RsaParams,
}

slicer_crypto::impl_codec!(SnapshotMeta {
    seed,
    value_bits,
    prime_bits,
    trapdoor_bits,
    accumulator_params,
});

impl SnapshotMeta {
    /// Reconstructs the protocol configuration with an explicit pool
    /// size (typically `slicer_par::configured_workers()`).
    pub fn config_with_workers(&self, workers: usize) -> SlicerConfig {
        SlicerConfig {
            value_bits: self.value_bits,
            prime_bits: self.prime_bits,
            accumulator: self.accumulator_params.clone(),
            trapdoor_bits: self.trapdoor_bits,
            workers: workers.max(1),
        }
    }
}

/// A complete instance snapshot: deployment meta, the owner's mutable
/// state (`T`, `S`, `Ac`) and the cloud's storage (`I`, `X`, digest).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Deployment parameters + key seed.
    pub meta: SnapshotMeta,
    /// Owner state: trapdoor dictionary `T` and set-hash dictionary `S`.
    pub owner: OwnerState,
    /// The owner's running accumulation value `Ac`.
    pub accumulator: BigUint,
    /// Cloud storage: encrypted index, prime list, mirrored digest.
    pub cloud: CloudState,
}

impl Snapshot {
    /// Captures a snapshot from a live owner/cloud pair. `seed` must be
    /// the seed the owner's keys were derived from — it is the only part
    /// of the key material that is persisted.
    pub fn capture(seed: u64, owner: &DataOwner, cloud: &CloudServer) -> Self {
        let config = owner.config();
        Snapshot {
            meta: SnapshotMeta {
                seed,
                value_bits: config.value_bits,
                prime_bits: config.prime_bits,
                trapdoor_bits: config.trapdoor_bits,
                accumulator_params: config.accumulator.clone(),
            },
            owner: owner.state().clone(),
            accumulator: owner.accumulator().clone(),
            cloud: cloud.storage().clone(),
        }
    }

    /// The accumulator digest in its canonical on-chain byte form
    /// (big-endian, padded to the modulus width) — the value the
    /// crash/restart cycle asserts byte-identical.
    pub fn accumulator_digest(&self) -> Vec<u8> {
        self.accumulator
            .to_bytes_be_padded(self.meta.accumulator_params.element_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::codec::{from_bytes, to_bytes};

    #[test]
    fn meta_roundtrips_and_rebuilds_config() {
        let config = SlicerConfig::test_8bit();
        let meta = SnapshotMeta {
            seed: 42,
            value_bits: config.value_bits,
            prime_bits: config.prime_bits,
            trapdoor_bits: config.trapdoor_bits,
            accumulator_params: config.accumulator.clone(),
        };
        let back: SnapshotMeta = from_bytes(&to_bytes(&meta).unwrap()).unwrap();
        assert_eq!(back, meta);
        let rebuilt = back.config_with_workers(4);
        assert_eq!(rebuilt.value_bits, config.value_bits);
        assert_eq!(rebuilt.prime_bits, config.prime_bits);
        assert_eq!(rebuilt.workers, 4);
        assert_eq!(rebuilt.max_value(), config.max_value());
    }

    #[test]
    fn capture_reflects_live_state() {
        let mut owner = DataOwner::new(SlicerConfig::test_8bit(), 9);
        let out = owner
            .build(&[(slicer_core::RecordId::from_u64(1), 7)])
            .unwrap();
        let mut cloud = CloudServer::new(
            owner.config().clone(),
            owner.keys().trapdoor().public().clone(),
        );
        cloud.ingest(&out).unwrap();
        let snap = Snapshot::capture(9, &owner, &cloud);
        assert_eq!(&snap.accumulator, owner.accumulator());
        assert_eq!(snap.cloud.index.len(), cloud.storage().index.len());
        assert_eq!(
            snap.accumulator_digest().len(),
            owner.config().accumulator.element_bytes()
        );
    }
}
