//! # slicer-trapdoor
//!
//! The RSA trapdoor permutation that gives Slicer forward security.
//!
//! During `Insert` (Algorithm 2) the data owner replaces a keyword's
//! trapdoor with `t ← π_sk⁻¹(t)` — a step only the owner can take. The
//! cloud, handed the newest trapdoor `t_j` in a search token, walks the
//! chain *forwards* with the public permutation `t_{i-1} = π_pk(t_i)`
//! (Algorithm 4) to reach every older index generation. Until a new token
//! is issued, freshly inserted entries are unlinkable to past queries
//! because the server cannot invert `π` — Bost's Σοφος construction.
//!
//! * [`TrapdoorKeyPair`] — RSA keypair; the owner keeps the whole pair,
//!   the cloud receives only [`TrapdoorPublic`].
//! * [`Trapdoor`] — a fixed-width domain element (`< n`).
//!
//! # Examples
//!
//! ```
//! use slicer_trapdoor::TrapdoorKeyPair;
//! use slicer_crypto::HmacDrbg;
//!
//! let mut rng = HmacDrbg::from_u64(1);
//! let kp = TrapdoorKeyPair::generate(512, &mut rng);
//! let t0 = kp.public().random_trapdoor(&mut rng);
//! let t1 = kp.invert(&t0);              // owner steps backwards
//! assert_eq!(kp.public().forward(&t1), t0); // cloud walks forwards
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slicer_bignum::{gen_prime, random_below, BigUint, MontgomeryCtx};
use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use slicer_crypto::Rng;
use std::sync::Arc;

/// Fixed RSA public exponent.
pub const PUBLIC_EXPONENT: u64 = 65537;

/// Baked-in 512-bit test fixture (modulus, private exponent) so unit tests
/// skip key generation.
const FIXED_N_HEX: &str = "a623c4d3f8488fa00583213793106b0a4213344c577817dbf6d657c8abc2729d7fa552bbbb05f23d1774bddbcde3ef1c297a76e96565f184cc6666592e15767b";
const FIXED_D_HEX: &str = "2fc2fbac3665e1c84e9d5e78c41205bbaab82ba240c9190ed6dcd2dab12a12d9a560eb14187aa5666c79ce3e3433d1dc6a81cc8f9a14d6d774d31cef666b7eb5";

/// A trapdoor value: an element of `Z_n` serialized at fixed width.
///
/// Trapdoors index generations of a keyword's posting list; each `Insert`
/// on a previously-searched keyword steps the trapdoor backwards.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Trapdoor(BigUint);

impl Encode for Trapdoor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for Trapdoor {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Trapdoor(BigUint::decode(reader)?))
    }
}

impl Trapdoor {
    /// Wraps a raw field element.
    pub fn from_value(v: BigUint) -> Self {
        Trapdoor(v)
    }

    /// The underlying element.
    pub fn value(&self) -> &BigUint {
        &self.0
    }

    /// Fixed-width big-endian encoding (`width` bytes), used when deriving
    /// index labels `F(G1, t ‖ c)`.
    pub fn to_bytes(&self, width: usize) -> Vec<u8> {
        self.0.to_bytes_be_padded(width)
    }
}

/// The public half of the trapdoor permutation: `π_pk(x) = x^e mod n`.
#[derive(Debug, Clone)]
pub struct TrapdoorPublic {
    modulus: BigUint,
    ctx: Option<Arc<MontgomeryCtx>>,
}

impl Encode for TrapdoorPublic {
    fn encode(&self, out: &mut Vec<u8>) {
        self.modulus.encode(out);
    }
}

impl Decode for TrapdoorPublic {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let modulus = BigUint::decode(reader)?;
        // Rebuild the Montgomery context eagerly; an even modulus means
        // corrupt input rather than a valid RSA public key.
        let ctx = MontgomeryCtx::new(&modulus)
            .ok_or_else(|| CodecError::msg("TrapdoorPublic modulus must be odd and > 1"))?;
        Ok(TrapdoorPublic {
            modulus,
            ctx: Some(Arc::new(ctx)),
        })
    }
}

impl PartialEq for TrapdoorPublic {
    fn eq(&self, other: &Self) -> bool {
        self.modulus == other.modulus
    }
}
impl Eq for TrapdoorPublic {}

impl TrapdoorPublic {
    fn new(modulus: BigUint) -> Self {
        let ctx = Arc::new(MontgomeryCtx::new(&modulus).expect("RSA modulus is odd"));
        TrapdoorPublic {
            modulus,
            ctx: Some(ctx),
        }
    }

    /// Rebuilds the Montgomery context if absent. Decoding already restores
    /// it; this remains for callers that construct keys by other means.
    pub fn restore_ctx(&mut self) {
        if self.ctx.is_none() {
            self.ctx = Some(Arc::new(
                MontgomeryCtx::new(&self.modulus).expect("odd modulus"),
            ));
        }
    }

    fn ctx(&self) -> &MontgomeryCtx {
        // Every construction path — `new` and `Decode` — populates the
        // context, so this cannot fail.
        self.ctx.as_deref().expect("ctx populated on construction")
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Serialized width of a trapdoor under this key.
    pub fn trapdoor_bytes(&self) -> usize {
        self.modulus.bit_len().div_ceil(8) as usize
    }

    /// Applies the permutation forwards: `π_pk(t) = t^e mod n`.
    pub fn forward(&self, t: &Trapdoor) -> Trapdoor {
        Trapdoor(self.ctx().modpow(&t.0, &BigUint::from(PUBLIC_EXPONENT)))
    }

    /// Walks the permutation forwards `steps` times.
    pub fn walk_forward(&self, t: &Trapdoor, steps: u64) -> Trapdoor {
        let mut cur = t.clone();
        for _ in 0..steps {
            cur = self.forward(&cur);
        }
        cur
    }

    /// Samples a uniformly random trapdoor in `Z_n`.
    pub fn random_trapdoor<R: Rng + ?Sized>(&self, rng: &mut R) -> Trapdoor {
        Trapdoor(random_below(&self.modulus, rng))
    }
}

/// An RSA trapdoor-permutation keypair held by the data owner.
#[derive(Debug, Clone)]
pub struct TrapdoorKeyPair {
    public: TrapdoorPublic,
    // slicer-lint: secret — the RSA trapdoor exponent `d`
    private_exponent: BigUint,
}

slicer_crypto::impl_codec!(TrapdoorKeyPair {
    public,
    private_exponent,
});

impl TrapdoorKeyPair {
    /// Generates a fresh `bits`-bit keypair with `e = 65537`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 64`.
    pub fn generate<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Self {
        assert!(bits >= 64, "modulus too small for a permutation domain");
        let e = BigUint::from(PUBLIC_EXPONENT);
        loop {
            let p = gen_prime(bits / 2, rng);
            let q = gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let one = BigUint::one();
            let lambda = (&p - &one).lcm(&(&q - &one));
            if let Some(d) = e.modinv(&lambda) {
                let n = &p * &q;
                return TrapdoorKeyPair {
                    public: TrapdoorPublic::new(n),
                    private_exponent: d,
                };
            }
        }
    }

    /// The baked-in 512-bit fixture keypair for deterministic tests.
    pub fn fixed_test() -> Self {
        TrapdoorKeyPair {
            public: TrapdoorPublic::new(BigUint::from_hex(FIXED_N_HEX).expect("valid hex")),
            private_exponent: BigUint::from_hex(FIXED_D_HEX).expect("valid hex"),
        }
    }

    /// The public half, shareable with clouds and users.
    pub fn public(&self) -> &TrapdoorPublic {
        &self.public
    }

    /// Applies the inverse permutation: `π_sk⁻¹(t) = t^d mod n`.
    pub fn invert(&self, t: &Trapdoor) -> Trapdoor {
        Trapdoor(self.public.ctx().modpow(&t.0, &self.private_exponent))
    }

    /// Walks backwards `steps` times (owner-only).
    pub fn walk_back(&self, t: &Trapdoor, steps: u64) -> Trapdoor {
        let mut cur = t.clone();
        for _ in 0..steps {
            cur = self.invert(&cur);
        }
        cur
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::HmacDrbg;

    #[test]
    fn fixture_permutation_roundtrip() {
        let kp = TrapdoorKeyPair::fixed_test();
        let mut rng = HmacDrbg::from_u64(3);
        let t = kp.public().random_trapdoor(&mut rng);
        let back = kp.invert(&t);
        assert_ne!(back, t);
        assert_eq!(kp.public().forward(&back), t);
        // Both directions are inverses.
        assert_eq!(kp.invert(&kp.public().forward(&t)), t);
    }

    #[test]
    fn generated_keypair_roundtrip() {
        let mut rng = HmacDrbg::from_u64(4);
        let kp = TrapdoorKeyPair::generate(256, &mut rng);
        let t = kp.public().random_trapdoor(&mut rng);
        assert_eq!(kp.public().forward(&kp.invert(&t)), t);
    }

    #[test]
    fn chain_walks_compose() {
        let kp = TrapdoorKeyPair::fixed_test();
        let mut rng = HmacDrbg::from_u64(5);
        let t0 = kp.public().random_trapdoor(&mut rng);
        let t3 = kp.walk_back(&t0, 3);
        assert_eq!(kp.public().walk_forward(&t3, 3), t0);
        // Partial walks land on intermediate generations.
        let t1 = kp.walk_back(&t0, 1);
        assert_eq!(kp.public().walk_forward(&t3, 2), t1);
    }

    #[test]
    fn fixed_width_encoding() {
        let kp = TrapdoorKeyPair::fixed_test();
        let mut rng = HmacDrbg::from_u64(6);
        let t = kp.public().random_trapdoor(&mut rng);
        let w = kp.public().trapdoor_bytes();
        assert_eq!(w, 64);
        assert_eq!(t.to_bytes(w).len(), w);
    }

    #[test]
    fn distinct_trapdoors_random() {
        let kp = TrapdoorKeyPair::fixed_test();
        let mut rng = HmacDrbg::from_u64(7);
        let a = kp.public().random_trapdoor(&mut rng);
        let b = kp.public().random_trapdoor(&mut rng);
        assert_ne!(a, b);
    }
}
