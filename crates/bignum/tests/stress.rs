//! Cross-validation stress tests for the bignum substrate: the RSA
//! accumulator's correctness rests entirely on this arithmetic.

use slicer_bignum::{BigUint, MontgomeryCtx};
use slicer_testkit::{prop_assert, prop_assert_eq, prop_check};

fn from_limbs(limbs: Vec<u64>) -> BigUint {
    BigUint::from_limbs(limbs)
}

/// Reference modpow by plain square-and-multiply with full divisions —
/// slow but obviously correct; used to cross-check the Montgomery path.
fn naive_modpow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    let mut acc = &BigUint::one() % m;
    let mut b = base % m;
    for i in 0..exp.bit_len() {
        if exp.bit(i) {
            acc = &(&acc * &b) % m;
        }
        b = &(&b * &b) % m;
    }
    acc
}

#[test]
fn division_add_back_stress() {
    // Dividends shaped to trigger Knuth D's rare add-back branch: top
    // limbs of dividend and divisor nearly equal.
    for hi in [u64::MAX, u64::MAX - 1, 1u64 << 63] {
        for lo in [0u64, 1, u64::MAX] {
            let u = from_limbs(vec![lo, hi, hi, hi]);
            let v = from_limbs(vec![u64::MAX, hi]);
            let (q, r) = u.div_rem(&v);
            assert!(r < v);
            assert_eq!(&(&q * &v) + &r, u, "hi={hi:x} lo={lo:x}");
        }
    }
}

#[test]
fn division_by_one_and_self() {
    let v = from_limbs(
        (1u64..20)
            .map(|i| i.wrapping_mul(0x1234_5678_9ABC_DEF0))
            .collect(),
    );
    let (q, r) = v.div_rem(&BigUint::one());
    assert_eq!(q, v);
    assert!(r.is_zero());
    let (q, r) = v.div_rem(&v);
    assert!(q.is_one());
    assert!(r.is_zero());
}

#[test]
fn montgomery_matches_naive_at_512_bits() {
    // Odd 512-bit modulus from a fixed pattern.
    let m = {
        let mut x = from_limbs(
            (0..8u64)
                .map(|i| 0xDEAD_BEEF_0000_0001u64.rotate_left(i as u32))
                .collect(),
        );
        x.set_bit(0, true);
        x
    };
    let ctx = MontgomeryCtx::new(&m).expect("odd");
    let base = from_limbs((0..8u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect());
    let exp = BigUint::from(0xDEAD_BEEF_CAFEu64);
    assert_eq!(ctx.modpow(&base, &exp), naive_modpow(&base, &exp, &m));
}

#[test]
fn fermat_across_sizes() {
    // a^(p-1) ≡ 1 for primes of several widths (exercises different limb
    // counts in the Montgomery pipeline).
    for hexp in [
        "fffffffb",                         // 32-bit prime
        "ffffffffffffffc5",                 // 64-bit prime
        "ffffffffffffffffffffffffffffff61", // 128-bit prime
    ] {
        let p = BigUint::from_hex(hexp).unwrap();
        assert!(p.is_probable_prime(8), "{hexp}");
        let a = BigUint::from(987_654_321u64);
        let e = &p - &BigUint::one();
        assert_eq!(a.modpow(&e, &p), BigUint::one(), "{hexp}");
    }
}

#[test]
fn division_invariant_large() {
    prop_check!(0x51, 64, |g| {
        let u = from_limbs(g.vec_u64(1, 23, 0));
        let v = from_limbs(g.vec_u64(1, 11, 0));
        if v.is_zero() {
            return Ok(());
        }
        let (q, r) = u.div_rem(&v);
        prop_assert!(r < v);
        prop_assert_eq!(&(&q * &v) + &r, u);
        Ok(())
    });
}

#[test]
fn montgomery_modpow_matches_naive() {
    prop_check!(0x52, 64, |g| {
        let mut m = from_limbs(g.vec_u64(1, 4, 0));
        m.set_bit(0, true); // odd
        if m.is_one() {
            return Ok(());
        }
        let base = from_limbs(g.vec_u64(1, 4, 0));
        let exp = BigUint::from(g.u64());
        prop_assert_eq!(base.modpow(&exp, &m), naive_modpow(&base, &exp, &m));
        Ok(())
    });
}

#[test]
fn mulmod_associative() {
    prop_check!(0x53, 64, |g| {
        let (a, b, c) = (g.u128(), g.u128(), g.u128());
        let m_limbs: Vec<u64> = (0..g.usize_in(1, 3))
            .map(|_| g.u64_in(1, u64::MAX))
            .collect();
        let m = from_limbs(m_limbs);
        if m.is_zero() || m.is_one() {
            return Ok(());
        }
        let (a, b, c) = (BigUint::from(a), BigUint::from(b), BigUint::from(c));
        let lhs = a.mulmod(&b, &m).mulmod(&c, &m);
        let rhs = a.mulmod(&b.mulmod(&c, &m), &m);
        prop_assert_eq!(lhs, rhs);
        Ok(())
    });
}

#[test]
fn modinv_roundtrip_odd_modulus() {
    prop_check!(0x54, 64, |g| {
        let mut m = from_limbs(g.vec_u64(1, 3, 0));
        m.set_bit(0, true);
        if m.is_one() {
            return Ok(());
        }
        let a = from_limbs(g.vec_u64(1, 3, 0));
        if let Some(inv) = a.modinv(&m) {
            prop_assert_eq!(&(&a * &inv) % &m, BigUint::one());
            prop_assert!(inv < m);
        }
        Ok(())
    });
}
