//! The [`BigUint`] type: representation, construction and basic queries.

use crate::{Limb, LIMB_BITS};
use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// An arbitrary-precision unsigned integer.
///
/// Stored as a little-endian vector of 64-bit limbs with no trailing zero
/// limbs (the canonical form of zero is the empty vector). All arithmetic
/// operators are implemented for both owned values and references; prefer
/// the reference forms (`&a + &b`) in hot paths to avoid clones.
///
/// # Examples
///
/// ```
/// use slicer_bignum::BigUint;
///
/// let x: BigUint = "123456789012345678901234567890".parse()?;
/// let y = BigUint::from_hex("ff00ff00ff00ff00ff00ff00")?;
/// assert!(x > y);
/// # Ok::<(), slicer_bignum::ParseBigUintError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<Limb>,
}

impl BigUint {
    /// Returns zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// Returns one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns two.
    pub fn two() -> Self {
        BigUint { limbs: vec![2] }
    }

    /// Constructs a value from little-endian limbs, normalizing trailing
    /// zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Exposes the little-endian limb slice (no trailing zeros).
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Returns `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` iff the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for zero).
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// assert_eq!(BigUint::from(0u64).bit_len(), 0);
    /// assert_eq!(BigUint::from(255u64).bit_len(), 8);
    /// assert_eq!(BigUint::from(256u64).bit_len(), 9);
    /// ```
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => {
                (self.limbs.len() as u64 - 1) * LIMB_BITS as u64
                    + (LIMB_BITS - hi.leading_zeros()) as u64
            }
        }
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Returns the value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some(((self.limbs[1] as u128) << 64) | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Low 64 bits of the value (zero-extended).
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                // Full-width scan with no early exit: walking least- to
                // most-significant, the latest differing pair wins, so the
                // loop's timing is independent of *where* the operands
                // diverge (limb counts are public — they equal the bit
                // length, which comparisons reveal anyway).
                let mut gt = 0u64;
                let mut lt = 0u64;
                for (a, b) in self.limbs.iter().zip(other.limbs.iter()) {
                    let a_gt = u64::from(a > b);
                    let a_lt = u64::from(a < b);
                    let same = 1 - (a_gt | a_lt);
                    gt = a_gt | (gt & same);
                    lt = a_lt | (lt & same);
                }
                gt.cmp(&lt)
            }
            ord => ord,
        }
    }
}

/// Error returned when parsing a [`BigUint`] from a string fails.
///
/// The `Display` message names the offending character class; the value is a
/// unit-style struct because no further recovery information is useful.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    pub(crate) kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?} in integer string"),
        }
    }
}

impl Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    /// Parses a decimal string, or a hexadecimal string with a `0x` prefix.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            return BigUint::from_hex(hex);
        }
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        let ten = BigUint::from(10u64);
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = &(&acc * &ten) + &BigUint::from(d as u64);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical_empty() {
        assert!(BigUint::zero().is_zero());
        assert_eq!(BigUint::from(0u64), BigUint::zero());
        assert_eq!(BigUint::from_limbs(vec![0, 0, 0]), BigUint::zero());
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from(u64::MAX).is_odd());
        assert!(BigUint::from(u64::MAX as u128 + 1).is_even());
    }

    #[test]
    fn ordering_across_lengths() {
        let small = BigUint::from(u64::MAX);
        let big = BigUint::from(u64::MAX as u128 + 1);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(big.cmp(&big.clone()), Ordering::Equal);
    }

    #[test]
    fn bit_len_edges() {
        assert_eq!(BigUint::from(1u64).bit_len(), 1);
        assert_eq!(BigUint::from(u64::MAX).bit_len(), 64);
        assert_eq!(BigUint::from(1u128 << 64).bit_len(), 65);
    }

    #[test]
    fn parse_decimal_roundtrip() {
        let s = "340282366920938463463374607431768211456"; // 2^128
        let v: BigUint = s.parse().unwrap();
        assert_eq!(v.to_string(), s);
        assert_eq!(v.bit_len(), 129);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigUint>().is_err());
        assert!("12a3".parse::<BigUint>().is_err());
        assert!("0xzz".parse::<BigUint>().is_err());
    }

    #[test]
    fn parse_with_separators() {
        let v: BigUint = "1_000_000".parse().unwrap();
        assert_eq!(v.to_u64(), Some(1_000_000));
    }

    #[test]
    fn u128_conversions() {
        let v = BigUint::from(u128::MAX);
        assert_eq!(v.to_u128(), Some(u128::MAX));
        assert_eq!(v.to_u64(), None);
        assert_eq!(v.low_u64(), u64::MAX);
    }
}
