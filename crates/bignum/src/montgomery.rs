//! Montgomery-form modular arithmetic for odd moduli.
//!
//! The RSA accumulator and trapdoor permutation perform millions of modular
//! multiplications against a fixed modulus; [`MontgomeryCtx`] amortizes the
//! per-multiplication reduction cost using the CIOS (coarsely integrated
//! operand scanning) algorithm.

// CIOS walks parallel limb arrays by index on purpose (carry dataflow), and
// `from_mont` converts a representation rather than constructing from one.
#![allow(clippy::needless_range_loop, clippy::wrong_self_convention)]

use crate::uint::BigUint;
use crate::{DoubleLimb, Limb};

/// Precomputed context for modular arithmetic modulo a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use slicer_bignum::{BigUint, MontgomeryCtx};
///
/// let n = BigUint::from(1000003u64); // odd modulus
/// let ctx = MontgomeryCtx::new(&n).unwrap();
/// let r = ctx.modpow(&BigUint::from(2u64), &BigUint::from(100u64));
/// assert_eq!(r, BigUint::from(2u64).modpow(&BigUint::from(100u64), &n));
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: Vec<Limb>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: Limb,
    /// `R^2 mod n` where `R = 2^(64 * len)`.
    rr: Vec<Limb>,
    /// `R mod n` (Montgomery form of one).
    r1: Vec<Limb>,
    modulus: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`. Returns `None` when the modulus is
    /// even or < 2 (Montgomery reduction requires an odd modulus).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs.clone();
        let len = n.len();

        // Newton iteration for the inverse of n[0] modulo 2^64.
        let mut inv: Limb = n[0];
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        // R mod n and R^2 mod n via shifting.
        let r = &(&BigUint::one() << (64 * len as u32)) % modulus;
        let rr = &(&r * &r) % modulus;

        Some(MontgomeryCtx {
            n,
            n0_inv,
            rr: pad(&rr.limbs, len),
            r1: pad(&r.limbs, len),
            modulus: modulus.clone(),
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// CIOS Montgomery multiplication: returns `a * b * R^-1 mod n` where
    /// inputs and output are `len`-limb padded vectors.
    fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let len = self.n.len();
        let mut t = vec![0 as Limb; len + 2];
        for i in 0..len {
            // t += a[i] * b
            let mut carry: DoubleLimb = 0;
            for j in 0..len {
                let s = t[j] as DoubleLimb + a[i] as DoubleLimb * b[j] as DoubleLimb + carry;
                t[j] = s as Limb;
                carry = s >> 64;
            }
            let s = t[len] as DoubleLimb + carry;
            t[len] = s as Limb;
            t[len + 1] = t[len + 1].wrapping_add((s >> 64) as Limb);

            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv);
            let mut carry: DoubleLimb =
                (t[0] as DoubleLimb + m as DoubleLimb * self.n[0] as DoubleLimb) >> 64;
            for j in 1..len {
                let s = t[j] as DoubleLimb + m as DoubleLimb * self.n[j] as DoubleLimb + carry;
                t[j - 1] = s as Limb;
                carry = s >> 64;
            }
            let s = t[len] as DoubleLimb + carry;
            t[len - 1] = s as Limb;
            let s2 = t[len + 1] as DoubleLimb + (s >> 64);
            t[len] = s2 as Limb;
            t[len + 1] = (s2 >> 64) as Limb;
        }
        // Conditional final subtraction: t may be in [0, 2n).
        t.truncate(len + 1);
        if t[len] != 0 || ge(&t[..len], &self.n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..len {
                let rhs = self.n[j] as DoubleLimb + borrow;
                let lhs = t[j] as DoubleLimb;
                if lhs >= rhs {
                    t[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    t[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
            debug_assert_eq!(t[len] as DoubleLimb, borrow);
        }
        t.truncate(len);
        t
    }

    /// Converts into Montgomery form.
    fn to_mont(&self, v: &BigUint) -> Vec<Limb> {
        let reduced = v % &self.modulus;
        self.mont_mul(&pad(&reduced.limbs, self.n.len()), &self.rr)
    }

    /// Converts out of Montgomery form.
    fn from_mont(&self, v: &[Limb]) -> BigUint {
        let one = pad(&[1], self.n.len());
        BigUint::from_limbs(self.mont_mul(v, &one))
    }

    /// Modular multiplication `a * b mod n`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` with a 4-bit window.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return if self.modulus.is_one() {
                BigUint::zero()
            } else {
                BigUint::one()
            };
        }
        let base_m = self.to_mont(base);

        // Precompute base^0 .. base^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        table.push(base_m.clone());
        for i in 2..16 {
            let prev: &Vec<Limb> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_m));
        }

        let bits = exp.bit_len();
        // Process the exponent in 4-bit windows, most significant first.
        let mut acc = self.r1.clone();
        let mut started = false;
        let nwindows = bits.div_ceil(4);
        for w in (0..nwindows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut digit: usize = 0;
            for b in (0..4).rev() {
                let idx = w * 4 + b;
                digit <<= 1;
                if idx < bits && exp.bit(idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                started = true;
            } else if started {
                // squarings already applied; nothing to multiply
            } else {
                // leading zero window, skip
            }
        }
        if !started {
            // exponent was zero (handled above), defensive fallback
            return BigUint::one();
        }
        self.from_mont(&acc)
    }
}

fn pad(limbs: &[Limb], len: usize) -> Vec<Limb> {
    let mut v = limbs.to_vec();
    v.resize(len.max(limbs.len()), 0);
    v
}

fn ge(a: &[Limb], b: &[Limb]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    #[test]
    fn rejects_even_modulus() {
        assert!(MontgomeryCtx::new(&BigUint::from(10u64)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
    }

    #[test]
    fn mul_matches_naive() {
        let n: BigUint = "170141183460469231731687303715884105727".parse().unwrap(); // 2^127-1
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a: BigUint = "123456789012345678901234567890".parse().unwrap();
        let b: BigUint = "987654321098765432109876543210".parse().unwrap();
        assert_eq!(ctx.mul(&a, &b), &(&a * &b) % &n);
    }

    #[test]
    fn modpow_fermat_little() {
        // a^(p-1) = 1 mod p for prime p.
        let p: BigUint = "170141183460469231731687303715884105727".parse().unwrap();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let a = BigUint::from(123456789u64);
        let exp = &p - &BigUint::one();
        assert_eq!(ctx.modpow(&a, &exp), BigUint::one());
    }

    #[test]
    fn modpow_zero_exponent() {
        let ctx = MontgomeryCtx::new(&BigUint::from(97u64)).unwrap();
        assert_eq!(
            ctx.modpow(&BigUint::from(5u64), &BigUint::zero()),
            BigUint::one()
        );
    }

    #[test]
    fn modpow_base_larger_than_modulus() {
        let n = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = BigUint::from(1000u64);
        let exp = BigUint::from(13u64);
        let expected = naive_modpow(1000, 13, 97);
        assert_eq!(ctx.modpow(&base, &exp), BigUint::from(expected));
    }

    fn naive_modpow(mut b: u128, mut e: u128, m: u128) -> u64 {
        let mut acc: u128 = 1;
        b %= m;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b % m;
            }
            b = b * b % m;
            e >>= 1;
        }
        acc as u64
    }

    #[test]
    fn modpow_matches_naive_u64() {
        prop_check!(0x1011, 64, |g| {
            let base = g.u32();
            let exp = g.u16();
            let m_half = g.u64_in(1, u32::MAX as u64);
            let m = m_half * 2 + 1; // odd, > 1
            let ctx = MontgomeryCtx::new(&BigUint::from(m)).unwrap();
            let got = ctx.modpow(&BigUint::from(base as u64), &BigUint::from(exp as u64));
            let want = naive_modpow(base as u128, exp as u128, m as u128);
            prop_assert_eq!(got, BigUint::from(want));
            Ok(())
        });
    }

    #[test]
    fn mul_matches_naive_random() {
        prop_check!(0x1012, 64, |g| {
            let (a, b) = (g.u128(), g.u128());
            let m_half = g.u64_in(1, u64::MAX);
            let m = BigUint::from((m_half as u128) * 2 + 1);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            let ab = &BigUint::from(a) * &BigUint::from(b);
            prop_assert_eq!(ctx.mul(&BigUint::from(a), &BigUint::from(b)), &ab % &m);
            Ok(())
        });
    }
}
