//! Montgomery-form modular arithmetic for odd moduli.
//!
//! The RSA accumulator and trapdoor permutation perform millions of modular
//! multiplications against a fixed modulus; [`MontgomeryCtx`] amortizes the
//! per-multiplication reduction cost using the CIOS (coarsely integrated
//! operand scanning) algorithm.
//!
//! The multiplication core writes into caller-provided scratch buffers so
//! the exponentiation loops allocate a fixed handful of vectors up front
//! instead of one per multiply, and two-limb moduli (the 128-bit
//! representative primes of `H_prime`) take a fully unrolled path.
//! [`MontgomeryCtx::modpow`] uses a sliding window over odd powers;
//! [`MontgomeryCtx::modpow_product`] folds a whole list of exponents in
//! multi-thousand-bit chunks, sharing one window table across each chunk.

// CIOS walks parallel limb arrays by index on purpose (carry dataflow), and
// `from_mont` converts a representation rather than constructing from one.
#![allow(clippy::needless_range_loop, clippy::wrong_self_convention)]

use crate::uint::BigUint;
use crate::{DoubleLimb, Limb};

/// Precomputed context for modular arithmetic modulo a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use slicer_bignum::{BigUint, MontgomeryCtx};
///
/// let n = BigUint::from(1000003u64); // odd modulus
/// let ctx = MontgomeryCtx::new(&n).unwrap();
/// let r = ctx.modpow(&BigUint::from(2u64), &BigUint::from(100u64));
/// assert_eq!(r, BigUint::from(2u64).modpow(&BigUint::from(100u64), &n));
/// ```
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    n: Vec<Limb>,
    /// `-n^{-1} mod 2^64`.
    n0_inv: Limb,
    /// `R^2 mod n` where `R = 2^(64 * len)`.
    rr: Vec<Limb>,
    /// `2^(64 (2 len + 2)) mod n`, for folding above-width operands in one
    /// extended CIOS pass ([`MontgomeryCtx::mul_wide`]). Built on first use
    /// — contexts on the prime-walk fast path never pay for it.
    r_wide: std::sync::OnceLock<Vec<Limb>>,
    /// `R mod n` (Montgomery form of one).
    r1: Vec<Limb>,
    modulus: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for `modulus`. Returns `None` when the modulus is
    /// even or < 2 (Montgomery reduction requires an odd modulus).
    pub fn new(modulus: &BigUint) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let n = modulus.limbs.clone();
        let len = n.len();

        // Newton iteration for the inverse of n[0] modulo 2^64.
        let mut inv: Limb = n[0];
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        debug_assert_eq!(n[0].wrapping_mul(inv), 1);
        let n0_inv = inv.wrapping_neg();

        let mut ctx = MontgomeryCtx {
            n,
            n0_inv,
            rr: Vec::new(),
            r_wide: std::sync::OnceLock::new(),
            r1: Vec::new(),
            modulus: modulus.clone(),
        };
        if len == 2 && ctx.n[1] >> 63 != 0 {
            // Division-free path for full-width two-limb moduli — the shape
            // of every `hash_to_prime` candidate, where context setup is a
            // measurable slice of the prime walk. With the top bit set,
            // `R mod n = 2^128 - n` (two's complement), and `R^2` follows
            // from one modular doubling plus seven Montgomery squarings:
            // `mont(2^k R, 2^k R) = 2^(2k) R`, so doubling the exponent
            // seven times from `2 R` lands on `2^128 R = R^2`.
            let (r0, borrow) = 0u64.overflowing_sub(ctx.n[0]);
            let r1 = 0u64.wrapping_sub(ctx.n[1]).wrapping_sub(borrow as u64);
            ctx.r1 = vec![r0, r1];
            let rr = {
                let m2 = Mont2 { ctx: &ctx };
                let mut d = m2.add_mod((r0, r1), (r0, r1));
                for _ in 0..7 {
                    d = m2.sqr(d);
                }
                d
            };
            ctx.rr = vec![rr.0, rr.1];
        } else {
            // R mod n and R^2 mod n via shifting.
            let r = &(&BigUint::one() << (64 * len as u32)) % modulus;
            let rr = &(&r * &r) % modulus;
            ctx.r1 = pad(&r.limbs, len);
            ctx.rr = pad(&rr.limbs, len);
        }
        Some(ctx)
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// Limb width of values in this context.
    pub(crate) fn limb_len(&self) -> usize {
        self.n.len()
    }

    /// Montgomery form of one (a fresh `len`-limb vector).
    pub(crate) fn one_mont(&self) -> Vec<Limb> {
        self.r1.clone()
    }

    /// Unrolled CIOS for two-limb moduli: the 128-bit representative primes
    /// of `H_prime` dominate the build phase, and at this width the generic
    /// loop spends more time on bookkeeping than on multiplying.
    #[inline]
    fn mont_mul_2(&self, a0: Limb, a1: Limb, b0: Limb, b1: Limb) -> (Limb, Limb) {
        let n0 = self.n[0] as DoubleLimb;
        let n1 = self.n[1] as DoubleLimb;

        // Full four-limb product first: the four limb products carry no
        // dependencies on each other, so issuing them up front lets the
        // multiplier pipeline them before the serial reduction chain.
        let d00 = a0 as DoubleLimb * b0 as DoubleLimb;
        let d01 = a0 as DoubleLimb * b1 as DoubleLimb;
        let d10 = a1 as DoubleLimb * b0 as DoubleLimb;
        let d11 = a1 as DoubleLimb * b1 as DoubleLimb;
        let t0 = d00 as Limb;
        let s = (d00 >> 64) + (d01 as Limb as DoubleLimb) + (d10 as Limb as DoubleLimb);
        let t1 = s as Limb;
        let s = (s >> 64) + (d01 >> 64) + (d10 >> 64) + (d11 as Limb as DoubleLimb);
        let t2 = s as Limb;
        let t3 = ((s >> 64) + (d11 >> 64)) as Limb;

        // First reduction: add m*n, drop the low limb.
        let m = t0.wrapping_mul(self.n0_inv) as DoubleLimb;
        let s = m * n0 + t0 as DoubleLimb;
        let s = m * n1 + t1 as DoubleLimb + (s >> 64);
        let u0 = s as Limb;
        let s = t2 as DoubleLimb + (s >> 64);
        let u1 = s as Limb;
        let s = t3 as DoubleLimb + (s >> 64);
        let u2 = s as Limb;
        let u3 = (s >> 64) as Limb;

        // Second reduction.
        let m = u0.wrapping_mul(self.n0_inv) as DoubleLimb;
        let s = m * n0 + u0 as DoubleLimb;
        let s = m * n1 + u1 as DoubleLimb + (s >> 64);
        let r0 = s as Limb;
        let s = u2 as DoubleLimb + (s >> 64);
        let r1 = s as Limb;
        let overflow = u3 + (s >> 64) as Limb;

        // Conditional final subtraction from [0, 2n).
        if overflow != 0 || (r1, r0) >= (self.n[1], self.n[0]) {
            let (d0, borrow) = r0.overflowing_sub(self.n[0]);
            let d1 = r1.wrapping_sub(self.n[1]).wrapping_sub(borrow as Limb);
            (d0, d1)
        } else {
            (r0, r1)
        }
    }

    /// Two-limb Montgomery squaring: the cross product is computed once
    /// (seven limb multiplies instead of eight) and the full four-limb
    /// square is formed before the two reduction steps, shortening the
    /// dependency chain. The BPSW ladders are squaring-heavy, so this is
    /// the hottest primitive in the prime walk.
    #[inline]
    fn mont_sqr_2(&self, a0: Limb, a1: Limb) -> (Limb, Limb) {
        let n0 = self.n[0] as DoubleLimb;
        let n1 = self.n[1] as DoubleLimb;

        // t = a^2 = a0^2 + 2 a0 a1 2^64 + a1^2 2^128 (four limbs).
        let d0 = a0 as DoubleLimb * a0 as DoubleLimb;
        let c = a0 as DoubleLimb * a1 as DoubleLimb;
        let d1 = a1 as DoubleLimb * a1 as DoubleLimb;
        let t0 = d0 as Limb;
        let s = (d0 >> 64) + ((c as Limb as DoubleLimb) << 1);
        let t1 = s as Limb;
        let s = (s >> 64) + (((c >> 64) as DoubleLimb) << 1) + (d1 as Limb as DoubleLimb);
        let t2 = s as Limb;
        let t3 = ((s >> 64) + (d1 >> 64)) as Limb;

        // First reduction: add m*n, drop the low limb.
        let m = t0.wrapping_mul(self.n0_inv) as DoubleLimb;
        let s = m * n0 + t0 as DoubleLimb;
        let s = m * n1 + t1 as DoubleLimb + (s >> 64);
        let u0 = s as Limb;
        let s = t2 as DoubleLimb + (s >> 64);
        let u1 = s as Limb;
        let s = t3 as DoubleLimb + (s >> 64);
        let u2 = s as Limb;
        let u3 = (s >> 64) as Limb;

        // Second reduction.
        let m = u0.wrapping_mul(self.n0_inv) as DoubleLimb;
        let s = m * n0 + u0 as DoubleLimb;
        let s = m * n1 + u1 as DoubleLimb + (s >> 64);
        let r0 = s as Limb;
        let s = u2 as DoubleLimb + (s >> 64);
        let r1 = s as Limb;
        let overflow = u3 + (s >> 64) as Limb;

        if overflow != 0 || (r1, r0) >= (self.n[1], self.n[0]) {
            let (d0, borrow) = r0.overflowing_sub(self.n[0]);
            let d1 = r1.wrapping_sub(self.n[1]).wrapping_sub(borrow as Limb);
            (d0, d1)
        } else {
            (r0, r1)
        }
    }

    /// CIOS Montgomery multiplication into caller buffers: computes
    /// `a * b * R^-1 mod n` where `a`, `b` and `out` are `len`-limb vectors
    /// and `t` is a `len + 2`-limb scratch. `out` must not alias `a`, `b`
    /// or `t`.
    pub(crate) fn mont_mul_into(&self, a: &[Limb], b: &[Limb], t: &mut [Limb], out: &mut [Limb]) {
        let len = self.n.len();
        debug_assert_eq!(a.len(), len);
        debug_assert_eq!(b.len(), len);
        debug_assert_eq!(out.len(), len);
        debug_assert_eq!(t.len(), len + 2);

        if len == 2 {
            let (r0, r1) = self.mont_mul_2(a[0], a[1], b[0], b[1]);
            out[0] = r0;
            out[1] = r1;
            return;
        }
        match len {
            8 => return self.mont_mul_const::<8>(a, b, out),
            16 => return self.mont_mul_const::<16>(a, b, out),
            _ => {}
        }

        // Exact-length reborrows so the index checks in the hot loops fold
        // away (`len` is runtime data; without these the optimizer keeps a
        // bounds test per limb access).
        let a = &a[..len];
        let b = &b[..len];
        let n = &self.n[..len];
        let t = &mut t[..len + 2];

        t.fill(0);
        for i in 0..len {
            // t += a[i] * b
            let ai = a[i] as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in 0..len {
                let s = t[j] as DoubleLimb + ai * b[j] as DoubleLimb + carry;
                t[j] = s as Limb;
                carry = s >> 64;
            }
            let s = t[len] as DoubleLimb + carry;
            t[len] = s as Limb;
            t[len + 1] = t[len + 1].wrapping_add((s >> 64) as Limb);

            // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n0_inv) as DoubleLimb;
            let mut carry: DoubleLimb = (t[0] as DoubleLimb + m * n[0] as DoubleLimb) >> 64;
            for j in 1..len {
                let s = t[j] as DoubleLimb + m * n[j] as DoubleLimb + carry;
                t[j - 1] = s as Limb;
                carry = s >> 64;
            }
            let s = t[len] as DoubleLimb + carry;
            t[len - 1] = s as Limb;
            let s2 = t[len + 1] as DoubleLimb + (s >> 64);
            t[len] = s2 as Limb;
            t[len + 1] = (s2 >> 64) as Limb;
        }
        // Conditional final subtraction: t may be in [0, 2n).
        if t[len] != 0 || ge(&t[..len], &self.n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..len {
                let rhs = self.n[j] as DoubleLimb + borrow;
                let lhs = t[j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
            debug_assert_eq!(t[len] as DoubleLimb, borrow);
        } else {
            out.copy_from_slice(&t[..len]);
        }
    }

    /// Montgomery squaring into caller buffers: `a * a * R^-1 mod n` via
    /// separated operand scanning — cross products computed once and
    /// doubled, so roughly a quarter of the limb multiplies of a general
    /// CIOS multiply disappear. `wide` is a `2*len + 1`-limb scratch.
    /// `out` must not alias `a` or `wide`.
    pub(crate) fn mont_sqr_into(&self, a: &[Limb], wide: &mut [Limb], out: &mut [Limb]) {
        let len = self.n.len();
        if len == 2 {
            let (r0, r1) = self.mont_mul_2(a[0], a[1], a[0], a[1]);
            out[0] = r0;
            out[1] = r1;
            return;
        }
        match len {
            8 => return self.mont_sqr_const::<8>(a, out),
            16 => return self.mont_sqr_const::<16>(a, out),
            _ => {}
        }
        debug_assert_eq!(wide.len(), 2 * len + 1);
        debug_assert_eq!(out.len(), len);
        wide.fill(0);

        // Cross products a[i] * a[j] for i < j.
        for i in 0..len {
            let ai = a[i] as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in (i + 1)..len {
                let s = wide[i + j] as DoubleLimb + ai * a[j] as DoubleLimb + carry;
                wide[i + j] = s as Limb;
                carry = s >> 64;
            }
            wide[i + len] = carry as Limb;
        }
        // Double them (the square is symmetric), ...
        let mut prev: Limb = 0;
        for w in wide[..2 * len].iter_mut() {
            let cur = *w;
            *w = (cur << 1) | (prev >> 63);
            prev = cur;
        }
        // ... then add the diagonal a[i]^2 terms.
        let mut carry: DoubleLimb = 0;
        for i in 0..len {
            let d = a[i] as DoubleLimb * a[i] as DoubleLimb;
            let s = wide[2 * i] as DoubleLimb + (d as Limb) as DoubleLimb + carry;
            wide[2 * i] = s as Limb;
            let s1 = wide[2 * i + 1] as DoubleLimb + (d >> 64) + (s >> 64);
            wide[2 * i + 1] = s1 as Limb;
            carry = s1 >> 64;
        }
        wide[2 * len] = wide[2 * len].wrapping_add(carry as Limb);

        // Montgomery reduction of the double-width square.
        for i in 0..len {
            let m = wide[i].wrapping_mul(self.n0_inv) as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in 0..len {
                let s = wide[i + j] as DoubleLimb + m * self.n[j] as DoubleLimb + carry;
                wide[i + j] = s as Limb;
                carry = s >> 64;
            }
            let mut k = i + len;
            while carry != 0 {
                let s = wide[k] as DoubleLimb + carry;
                wide[k] = s as Limb;
                carry = s >> 64;
                k += 1;
            }
        }
        if wide[2 * len] != 0 || ge(&wide[len..2 * len], &self.n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..len {
                let rhs = self.n[j] as DoubleLimb + borrow;
                let lhs = wide[len + j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
        } else {
            out.copy_from_slice(&wide[len..2 * len]);
        }
    }

    /// CIOS multiply monomorphized over the limb count: with `LEN` fixed at
    /// compile time the limb loops fully unroll and every index check folds
    /// away, which is worth ~1.5x over the runtime-length loops. The
    /// accumulator fold (8 limbs) and the multiset-hash field (16 limbs)
    /// spend nearly all their time here.
    fn mont_mul_const<const LEN: usize>(&self, a: &[Limb], b: &[Limb], out: &mut [Limb]) {
        let n: &[Limb; LEN] = self.n[..LEN].try_into().expect("modulus width");
        let a: &[Limb; LEN] = a[..LEN].try_into().expect("operand width");
        let b: &[Limb; LEN] = b[..LEN].try_into().expect("operand width");
        // Scratch sized for the largest monomorphization (16 limbs).
        assert!(LEN <= 16);
        let mut t = [0 as Limb; 16 + 2];
        for i in 0..LEN {
            let ai = a[i] as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in 0..LEN {
                let s = t[j] as DoubleLimb + ai * b[j] as DoubleLimb + carry;
                t[j] = s as Limb;
                carry = s >> 64;
            }
            let s = t[LEN] as DoubleLimb + carry;
            t[LEN] = s as Limb;
            t[LEN + 1] = t[LEN + 1].wrapping_add((s >> 64) as Limb);

            let m = t[0].wrapping_mul(self.n0_inv) as DoubleLimb;
            let mut carry: DoubleLimb = (t[0] as DoubleLimb + m * n[0] as DoubleLimb) >> 64;
            for j in 1..LEN {
                let s = t[j] as DoubleLimb + m * n[j] as DoubleLimb + carry;
                t[j - 1] = s as Limb;
                carry = s >> 64;
            }
            let s = t[LEN] as DoubleLimb + carry;
            t[LEN - 1] = s as Limb;
            let s2 = t[LEN + 1] as DoubleLimb + (s >> 64);
            t[LEN] = s2 as Limb;
            t[LEN + 1] = (s2 >> 64) as Limb;
        }
        if t[LEN] != 0 || ge(&t[..LEN], n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..LEN {
                let rhs = n[j] as DoubleLimb + borrow;
                let lhs = t[j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
        } else {
            out[..LEN].copy_from_slice(&t[..LEN]);
        }
    }

    /// SOS squaring monomorphized over the limb count; see
    /// [`MontgomeryCtx::mont_mul_const`].
    fn mont_sqr_const<const LEN: usize>(&self, a: &[Limb], out: &mut [Limb]) {
        let n: &[Limb; LEN] = self.n[..LEN].try_into().expect("modulus width");
        let a: &[Limb; LEN] = a[..LEN].try_into().expect("operand width");
        assert!(LEN <= 16);
        let mut wide = [0 as Limb; 2 * 16 + 1];

        // Cross products a[i] * a[j] for i < j.
        for i in 0..LEN {
            let ai = a[i] as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in (i + 1)..LEN {
                let s = wide[i + j] as DoubleLimb + ai * a[j] as DoubleLimb + carry;
                wide[i + j] = s as Limb;
                carry = s >> 64;
            }
            wide[i + LEN] = carry as Limb;
        }
        // Double them (the square is symmetric), ...
        let mut prev: Limb = 0;
        for w in wide[..2 * LEN].iter_mut() {
            let cur = *w;
            *w = (cur << 1) | (prev >> 63);
            prev = cur;
        }
        // ... then add the diagonal a[i]^2 terms.
        let mut carry: DoubleLimb = 0;
        for i in 0..LEN {
            let d = a[i] as DoubleLimb * a[i] as DoubleLimb;
            let s = wide[2 * i] as DoubleLimb + (d as Limb) as DoubleLimb + carry;
            wide[2 * i] = s as Limb;
            let s1 = wide[2 * i + 1] as DoubleLimb + (d >> 64) + (s >> 64);
            wide[2 * i + 1] = s1 as Limb;
            carry = s1 >> 64;
        }
        wide[2 * LEN] = wide[2 * LEN].wrapping_add(carry as Limb);

        // Montgomery reduction of the double-width square. The carry out
        // of position `i + LEN` is deferred one iteration — the next pass
        // adds its own top carry at exactly that position — so no
        // data-dependent propagation loop is needed.
        let mut top: DoubleLimb = 0;
        for i in 0..LEN {
            let m = wide[i].wrapping_mul(self.n0_inv) as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in 0..LEN {
                let s = wide[i + j] as DoubleLimb + m * n[j] as DoubleLimb + carry;
                wide[i + j] = s as Limb;
                carry = s >> 64;
            }
            let s = wide[i + LEN] as DoubleLimb + carry + top;
            wide[i + LEN] = s as Limb;
            top = s >> 64;
        }
        wide[2 * LEN] = wide[2 * LEN].wrapping_add(top as Limb);
        if wide[2 * LEN] != 0 || ge(&wide[LEN..2 * LEN], n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..LEN {
                let rhs = n[j] as DoubleLimb + borrow;
                let lhs = wide[LEN + j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
        } else {
            out[..LEN].copy_from_slice(&wide[LEN..2 * LEN]);
        }
    }

    /// Two-limb tuple view when the modulus occupies exactly two limbs,
    /// else `None`. See [`Mont2`].
    pub(crate) fn as_two_limb(&self) -> Option<Mont2<'_>> {
        (self.n.len() == 2).then_some(Mont2 { ctx: self })
    }

    /// Allocating wrapper over [`MontgomeryCtx::mont_mul_into`] for cold
    /// call sites (conversions, one-off products).
    fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let len = self.n.len();
        let mut t = vec![0 as Limb; len + 2];
        let mut out = vec![0 as Limb; len];
        self.mont_mul_into(a, b, &mut t, &mut out);
        out
    }

    /// Converts into Montgomery form.
    pub(crate) fn to_mont(&self, v: &BigUint) -> Vec<Limb> {
        let reduced = v % &self.modulus;
        self.mont_mul(&pad(&reduced.limbs, self.n.len()), &self.rr)
    }

    /// Converts out of Montgomery form.
    pub(crate) fn from_mont(&self, v: &[Limb]) -> BigUint {
        let one = pad(&[1], self.n.len());
        BigUint::from_limbs(self.mont_mul(v, &one))
    }

    /// `out = (a + b) mod n` for `a, b < n`. `out` must not alias.
    pub(crate) fn add_mod_into(&self, a: &[Limb], b: &[Limb], out: &mut [Limb]) {
        let len = self.n.len();
        let mut carry: DoubleLimb = 0;
        for j in 0..len {
            let s = a[j] as DoubleLimb + b[j] as DoubleLimb + carry;
            out[j] = s as Limb;
            carry = s >> 64;
        }
        if carry != 0 || ge(&out[..len], &self.n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..len {
                let rhs = self.n[j] as DoubleLimb + borrow;
                let lhs = out[j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
        }
    }

    /// `out = (a - b) mod n` for `a, b < n`. `out` must not alias.
    pub(crate) fn sub_mod_into(&self, a: &[Limb], b: &[Limb], out: &mut [Limb]) {
        let len = self.n.len();
        let mut borrow: DoubleLimb = 0;
        for j in 0..len {
            let rhs = b[j] as DoubleLimb + borrow;
            let lhs = a[j] as DoubleLimb;
            if lhs >= rhs {
                out[j] = (lhs - rhs) as Limb;
                borrow = 0;
            } else {
                out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                borrow = 1;
            }
        }
        if borrow != 0 {
            let mut carry: DoubleLimb = 0;
            for j in 0..len {
                let s = out[j] as DoubleLimb + self.n[j] as DoubleLimb + carry;
                out[j] = s as Limb;
                carry = s >> 64;
            }
        }
    }

    /// `out = a / 2 mod n` for `a < n` and odd `n`. `out` must not alias.
    pub(crate) fn halve_mod_into(&self, a: &[Limb], out: &mut [Limb]) {
        let len = self.n.len();
        if a[0] & 1 == 0 {
            for j in 0..len {
                let hi = if j + 1 < len { a[j + 1] } else { 0 };
                out[j] = (a[j] >> 1) | ((hi & 1) << 63);
            }
        } else {
            // (a + n) is even and < 2n; halving lands back in [0, n).
            let mut carry: DoubleLimb = 0;
            for j in 0..len {
                let s = a[j] as DoubleLimb + self.n[j] as DoubleLimb + carry;
                out[j] = s as Limb;
                carry = s >> 64;
            }
            let top = carry as Limb;
            for j in 0..len {
                let hi = if j + 1 < len { out[j + 1] } else { top };
                out[j] = (out[j] >> 1) | ((hi & 1) << 63);
            }
        }
    }

    /// Modular multiplication `a * b mod n`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` using a sliding window over
    /// odd powers, sized to the exponent.
    pub fn modpow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return if self.modulus.is_one() {
                BigUint::zero()
            } else {
                BigUint::one()
            };
        }
        let base_m = self.to_mont(base);
        let mut pow = Powmod::new(self);
        let out = pow.raise(&base_m, exp);
        self.from_mont(&out)
    }

    /// `acc * x mod n` where `x` may exceed the modulus width by up to two
    /// limbs — CIOS passes instead of a long division followed by a
    /// modular multiply. The multiset hash folds 1152-bit digest
    /// expansions into its 1024-bit field element this way on every
    /// insert.
    ///
    /// For an above-width `x`, one ordinary pass forms
    /// `b = acc · 2^(64 (len+2)) · R mod n` from the baked [`Self::r_wide`]
    /// constant, and one extended pass over all `len + 2` limbs of `x`
    /// computes `x · b · 2^(-64 (len+2)) = acc · x mod n` — two passes
    /// total, never materializing a reduced `x`.
    ///
    /// Falls back to plain reduction when `x` is wider than `len + 2`
    /// limbs.
    pub fn mul_wide(&self, acc: &BigUint, x: &BigUint) -> BigUint {
        let len = self.n.len();
        if x.limbs.len() > len + 2 {
            let xr = x % &self.modulus;
            return self.mul(acc, &xr);
        }
        let am = if acc < &self.modulus {
            pad(&acc.limbs, len)
        } else {
            pad(&(acc % &self.modulus).limbs, len)
        };
        let mut t = vec![0 as Limb; len + 2];
        let mut out = vec![0 as Limb; len];
        if x.limbs.len() <= len {
            // x already fits: lift it (x R), then drop the R against acc.
            let lo = pad(&x.limbs, len);
            let mut a = vec![0 as Limb; len];
            self.mont_mul_into(&lo, &self.rr, &mut t, &mut a);
            self.mont_mul_into(&am, &a, &mut t, &mut out);
        } else {
            let xp = pad(&x.limbs, len + 2);
            let mut b = vec![0 as Limb; len];
            self.mont_mul_into(&am, self.r_wide(), &mut t, &mut b);
            self.mont_mul_wide_into(&xp, &b, &mut t, &mut out);
        }
        BigUint::from_limbs(out)
    }

    /// The `2^(64 (2 len + 2)) mod n` constant backing [`Self::mul_wide`],
    /// built on first use: `R^2` (already reduced) doubled 128 times.
    fn r_wide(&self) -> &[Limb] {
        self.r_wide.get_or_init(|| {
            let len = self.n.len();
            let mut cur = self.rr.clone();
            let mut next = vec![0 as Limb; len];
            for _ in 0..128 {
                self.add_mod_into(&cur, &cur, &mut next);
                std::mem::swap(&mut cur, &mut next);
            }
            cur
        })
    }

    /// One CIOS pass over an extended operand: `x * b * 2^(-64 x.len())
    /// mod n` for `b < n` and `x` of any limb count at least `len`. The
    /// per-iteration invariant `t < 2n` holds for arbitrary `x` limbs, so
    /// `x` needs no prior reduction.
    fn mont_mul_wide_into(&self, x: &[Limb], b: &[Limb], t: &mut [Limb], out: &mut [Limb]) {
        let len = self.n.len();
        debug_assert!(x.len() >= len);
        debug_assert_eq!(b.len(), len);
        debug_assert_eq!(out.len(), len);
        debug_assert_eq!(t.len(), len + 2);

        match len {
            8 => return self.mont_mul_wide_const::<8>(x, b, out),
            16 => return self.mont_mul_wide_const::<16>(x, b, out),
            _ => {}
        }

        let b = &b[..len];
        let n = &self.n[..len];
        let t = &mut t[..len + 2];
        t.fill(0);
        for &xi in x {
            let ai = xi as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in 0..len {
                let s = t[j] as DoubleLimb + ai * b[j] as DoubleLimb + carry;
                t[j] = s as Limb;
                carry = s >> 64;
            }
            let s = t[len] as DoubleLimb + carry;
            t[len] = s as Limb;
            t[len + 1] = t[len + 1].wrapping_add((s >> 64) as Limb);

            let m = t[0].wrapping_mul(self.n0_inv) as DoubleLimb;
            let mut carry: DoubleLimb = (t[0] as DoubleLimb + m * n[0] as DoubleLimb) >> 64;
            for j in 1..len {
                let s = t[j] as DoubleLimb + m * n[j] as DoubleLimb + carry;
                t[j - 1] = s as Limb;
                carry = s >> 64;
            }
            let s = t[len] as DoubleLimb + carry;
            t[len - 1] = s as Limb;
            let s2 = t[len + 1] as DoubleLimb + (s >> 64);
            t[len] = s2 as Limb;
            t[len + 1] = (s2 >> 64) as Limb;
        }
        if t[len] != 0 || ge(&t[..len], n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..len {
                let rhs = n[j] as DoubleLimb + borrow;
                let lhs = t[j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
        } else {
            out.copy_from_slice(&t[..len]);
        }
    }

    /// [`MontgomeryCtx::mont_mul_wide_into`] monomorphized over the
    /// modulus limb count (the outer walk over `x` stays runtime-length).
    fn mont_mul_wide_const<const LEN: usize>(&self, x: &[Limb], b: &[Limb], out: &mut [Limb]) {
        let n: &[Limb; LEN] = self.n[..LEN].try_into().expect("modulus width");
        let b: &[Limb; LEN] = b[..LEN].try_into().expect("operand width");
        assert!(LEN <= 16);
        let mut t = [0 as Limb; 16 + 2];
        for &xi in x {
            let ai = xi as DoubleLimb;
            let mut carry: DoubleLimb = 0;
            for j in 0..LEN {
                let s = t[j] as DoubleLimb + ai * b[j] as DoubleLimb + carry;
                t[j] = s as Limb;
                carry = s >> 64;
            }
            let s = t[LEN] as DoubleLimb + carry;
            t[LEN] = s as Limb;
            t[LEN + 1] = t[LEN + 1].wrapping_add((s >> 64) as Limb);

            let m = t[0].wrapping_mul(self.n0_inv) as DoubleLimb;
            let mut carry: DoubleLimb = (t[0] as DoubleLimb + m * n[0] as DoubleLimb) >> 64;
            for j in 1..LEN {
                let s = t[j] as DoubleLimb + m * n[j] as DoubleLimb + carry;
                t[j - 1] = s as Limb;
                carry = s >> 64;
            }
            let s = t[LEN] as DoubleLimb + carry;
            t[LEN - 1] = s as Limb;
            let s2 = t[LEN + 1] as DoubleLimb + (s >> 64);
            t[LEN] = s2 as Limb;
            t[LEN + 1] = (s2 >> 64) as Limb;
        }
        if t[LEN] != 0 || ge(&t[..LEN], n) {
            let mut borrow: DoubleLimb = 0;
            for j in 0..LEN {
                let rhs = n[j] as DoubleLimb + borrow;
                let lhs = t[j] as DoubleLimb;
                if lhs >= rhs {
                    out[j] = (lhs - rhs) as Limb;
                    borrow = 0;
                } else {
                    out[j] = (lhs + (1u128 << 64) - rhs) as Limb;
                    borrow = 1;
                }
            }
        } else {
            out[..LEN].copy_from_slice(&t[..LEN]);
        }
    }

    /// `base^(e_1 * e_2 * ... * e_k) mod n` without materializing the full
    /// exponent product: the factors are folded in chunks of at most
    /// [`Powmod::MAX_CHUNK_BITS`] bits, each chunk exponentiated with one
    /// shared window table. For the accumulator this turns "one `modpow`
    /// per prime" into "one window pass per ~32 primes", trading
    /// per-exponent multiplies for a handful of integer products.
    ///
    /// An empty list yields `base mod n` (the empty product is one).
    pub fn modpow_product(&self, base: &BigUint, exps: &[BigUint]) -> BigUint {
        let mut acc = base % &self.modulus;
        if exps.is_empty() {
            return acc;
        }
        let mut pow = Powmod::new(self);
        let mut chunk = BigUint::one();
        for e in exps {
            // A chunk of exactly one is an identity fold — safe to skip,
            // which also keeps a leading 1-exponent from flushing early.
            if !chunk.is_one() && chunk.bit_len() + e.bit_len() > Powmod::MAX_CHUNK_BITS {
                let am = self.to_mont(&acc);
                acc = self.from_mont(&pow.raise(&am, &chunk));
                chunk = BigUint::one();
            }
            chunk = &chunk * e;
        }
        let am = self.to_mont(&acc);
        self.from_mont(&pow.raise(&am, &chunk))
    }
}

/// Borrowed two-limb view of a [`MontgomeryCtx`]: Montgomery values as
/// `(lo, hi)` limb tuples, every operation allocation-free and branch-lean.
///
/// The BPSW inner loops in `prime.rs` run at the 128-bit `H_prime`
/// candidate width, where the generic slice-based helpers spend as much
/// time on bookkeeping as on arithmetic; this view keeps the whole ladder
/// state in registers.
pub(crate) struct Mont2<'a> {
    ctx: &'a MontgomeryCtx,
}

impl Mont2<'_> {
    /// `a * b * R^-1 mod n`.
    #[inline]
    pub(crate) fn mul(&self, a: (Limb, Limb), b: (Limb, Limb)) -> (Limb, Limb) {
        self.ctx.mont_mul_2(a.0, a.1, b.0, b.1)
    }

    /// `a^2 * R^-1 mod n` (cheaper than `mul(a, a)`).
    #[inline]
    pub(crate) fn sqr(&self, a: (Limb, Limb)) -> (Limb, Limb) {
        self.ctx.mont_sqr_2(a.0, a.1)
    }

    /// Montgomery form of one.
    #[inline]
    pub(crate) fn one(&self) -> (Limb, Limb) {
        (self.ctx.r1[0], self.ctx.r1[1])
    }

    /// `(a + b) mod n` for `a, b < n`.
    #[inline]
    pub(crate) fn add_mod(&self, a: (Limb, Limb), b: (Limb, Limb)) -> (Limb, Limb) {
        let (lo, c0) = a.0.overflowing_add(b.0);
        let (hi, c1) = a.1.overflowing_add(b.1);
        let (hi, c2) = hi.overflowing_add(c0 as Limb);
        if c1 || c2 || (hi, lo) >= (self.ctx.n[1], self.ctx.n[0]) {
            let (d0, borrow) = lo.overflowing_sub(self.ctx.n[0]);
            let d1 = hi.wrapping_sub(self.ctx.n[1]).wrapping_sub(borrow as Limb);
            (d0, d1)
        } else {
            (lo, hi)
        }
    }

    /// `(a - b) mod n` for `a, b < n`.
    #[inline]
    pub(crate) fn sub_mod(&self, a: (Limb, Limb), b: (Limb, Limb)) -> (Limb, Limb) {
        let (d0, b0) = a.0.overflowing_sub(b.0);
        let (d1, b1) = a.1.overflowing_sub(b.1);
        let (d1, b2) = d1.overflowing_sub(b0 as Limb);
        if b1 || b2 {
            let (r0, carry) = d0.overflowing_add(self.ctx.n[0]);
            let r1 = d1.wrapping_add(self.ctx.n[1]).wrapping_add(carry as Limb);
            (r0, r1)
        } else {
            (d0, d1)
        }
    }

    /// `a / 2 mod n` for `a < n` (n odd).
    #[inline]
    pub(crate) fn halve_mod(&self, a: (Limb, Limb)) -> (Limb, Limb) {
        if a.0 & 1 == 0 {
            ((a.0 >> 1) | (a.1 << 63), a.1 >> 1)
        } else {
            // (a + n) is even and < 2n; halving lands back in [0, n).
            let (s0, c0) = a.0.overflowing_add(self.ctx.n[0]);
            let (s1, c1) = a.1.overflowing_add(self.ctx.n[1]);
            let (s1, c2) = s1.overflowing_add(c0 as Limb);
            let top = (c1 || c2) as Limb;
            ((s0 >> 1) | (s1 << 63), (s1 >> 1) | (top << 63))
        }
    }

    /// Converts an already-reduced value (`v < n`) into Montgomery form
    /// without touching `BigUint`.
    #[inline]
    pub(crate) fn to_mont_reduced(&self, v: (Limb, Limb)) -> (Limb, Limb) {
        debug_assert!((v.1, v.0) < (self.ctx.n[1], self.ctx.n[0]));
        self.mul(v, (self.ctx.rr[0], self.ctx.rr[1]))
    }

    /// The modulus as a `u128`.
    #[inline]
    pub(crate) fn modulus_u128(&self) -> u128 {
        self.ctx.n[0] as u128 | (self.ctx.n[1] as u128) << 64
    }
}

/// Reusable sliding-window exponentiation state: one scratch pair and one
/// odd-power table, re-filled per call but never re-allocated beyond the
/// high-water mark.
struct Powmod<'a> {
    ctx: &'a MontgomeryCtx,
    t: Vec<Limb>,
    wide: Vec<Limb>,
    tmp: Vec<Limb>,
    sq: Vec<Limb>,
    table: Vec<Vec<Limb>>,
}

impl<'a> Powmod<'a> {
    /// Chunk ceiling for [`MontgomeryCtx::modpow_product`]: past a few
    /// thousand bits the schoolbook integer products forming the chunk
    /// start to rival the modular work they save.
    const MAX_CHUNK_BITS: u64 = 4096;

    fn new(ctx: &'a MontgomeryCtx) -> Self {
        let len = ctx.n.len();
        Powmod {
            ctx,
            t: vec![0; len + 2],
            wide: vec![0; 2 * len + 1],
            tmp: vec![0; len],
            sq: vec![0; len],
            table: Vec::new(),
        }
    }

    /// Window width for an exponent of `bits` bits (optimal table size
    /// grows with the exponent).
    fn window_bits(bits: u64) -> usize {
        match bits {
            0..=63 => 3,
            64..=511 => 4,
            512..=2047 => 5,
            _ => 6,
        }
    }

    /// `base_m^exp` in Montgomery form (`base_m` is Montgomery form).
    fn raise(&mut self, base_m: &[Limb], exp: &BigUint) -> Vec<Limb> {
        let ctx = self.ctx;
        let len = ctx.n.len();
        if exp.is_zero() {
            return ctx.one_mont();
        }
        let bits = exp.bit_len();
        let w = Self::window_bits(bits);

        // Odd powers base^1, base^3, ..., base^(2^w - 1).
        let tsize = 1usize << (w - 1);
        ctx.mont_sqr_into(base_m, &mut self.wide, &mut self.sq);
        self.table.clear();
        self.table.push(base_m.to_vec());
        for k in 1..tsize {
            let mut next = vec![0; len];
            ctx.mont_mul_into(&self.table[k - 1], &self.sq, &mut self.t, &mut next);
            self.table.push(next);
        }

        let mut acc = ctx.one_mont();
        let mut started = false;
        let mut i = bits as i64 - 1;
        while i >= 0 {
            if !exp.bit(i as u64) {
                if started {
                    ctx.mont_sqr_into(&acc, &mut self.wide, &mut self.tmp);
                    std::mem::swap(&mut acc, &mut self.tmp);
                }
                i -= 1;
                continue;
            }
            // Greedy window [j..=i] ending on a set bit.
            let mut j = (i - w as i64 + 1).max(0);
            while !exp.bit(j as u64) {
                j += 1;
            }
            let mut digit: usize = 0;
            for k in (j..=i).rev() {
                digit = (digit << 1) | exp.bit(k as u64) as usize;
            }
            if started {
                for _ in 0..(i - j + 1) {
                    ctx.mont_sqr_into(&acc, &mut self.wide, &mut self.tmp);
                    std::mem::swap(&mut acc, &mut self.tmp);
                }
                ctx.mont_mul_into(&acc, &self.table[digit >> 1], &mut self.t, &mut self.tmp);
                std::mem::swap(&mut acc, &mut self.tmp);
            } else {
                acc.copy_from_slice(&self.table[digit >> 1]);
                started = true;
            }
            i = j - 1;
        }
        acc
    }
}

fn pad(limbs: &[Limb], len: usize) -> Vec<Limb> {
    let mut v = limbs.to_vec();
    v.resize(len.max(limbs.len()), 0);
    v
}

fn ge(a: &[Limb], b: &[Limb]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        if a[i] > b[i] {
            return true;
        }
        if a[i] < b[i] {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    #[test]
    fn rejects_even_modulus() {
        assert!(MontgomeryCtx::new(&BigUint::from(10u64)).is_none());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_none());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_none());
    }

    #[test]
    fn mul_matches_naive() {
        let n: BigUint = "170141183460469231731687303715884105727".parse().unwrap(); // 2^127-1
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let a: BigUint = "123456789012345678901234567890".parse().unwrap();
        let b: BigUint = "987654321098765432109876543210".parse().unwrap();
        assert_eq!(ctx.mul(&a, &b), &(&a * &b) % &n);
    }

    #[test]
    fn modpow_fermat_little() {
        // a^(p-1) = 1 mod p for prime p.
        let p: BigUint = "170141183460469231731687303715884105727".parse().unwrap();
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let a = BigUint::from(123456789u64);
        let exp = &p - &BigUint::one();
        assert_eq!(ctx.modpow(&a, &exp), BigUint::one());
    }

    #[test]
    fn modpow_zero_exponent() {
        let ctx = MontgomeryCtx::new(&BigUint::from(97u64)).unwrap();
        assert_eq!(
            ctx.modpow(&BigUint::from(5u64), &BigUint::zero()),
            BigUint::one()
        );
    }

    #[test]
    fn modpow_base_larger_than_modulus() {
        let n = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = BigUint::from(1000u64);
        let exp = BigUint::from(13u64);
        let expected = naive_modpow(1000, 13, 97);
        assert_eq!(ctx.modpow(&base, &exp), BigUint::from(expected));
    }

    fn naive_modpow(mut b: u128, mut e: u128, m: u128) -> u64 {
        let mut acc: u128 = 1;
        b %= m;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b % m;
            }
            b = b * b % m;
            e >>= 1;
        }
        acc as u64
    }

    /// Square-and-multiply on BigUint: the slow reference the optimized
    /// window must agree with bit for bit.
    fn reference_modpow(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
        let mut acc = &BigUint::one() % m;
        let mut b = base % m;
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = &(&acc * &b) % m;
            }
            b = &(&b * &b) % m;
        }
        acc
    }

    #[test]
    fn modpow_matches_naive_u64() {
        prop_check!(0x1011, 64, |g| {
            let base = g.u32();
            let exp = g.u16();
            let m_half = g.u64_in(1, u32::MAX as u64);
            let m = m_half * 2 + 1; // odd, > 1
            let ctx = MontgomeryCtx::new(&BigUint::from(m)).unwrap();
            let got = ctx.modpow(&BigUint::from(base as u64), &BigUint::from(exp as u64));
            let want = naive_modpow(base as u128, exp as u128, m as u128);
            prop_assert_eq!(got, BigUint::from(want));
            Ok(())
        });
    }

    #[test]
    fn mul_matches_naive_random() {
        prop_check!(0x1012, 64, |g| {
            let (a, b) = (g.u128(), g.u128());
            let m_half = g.u64_in(1, u64::MAX);
            let m = BigUint::from((m_half as u128) * 2 + 1);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            let ab = &BigUint::from(a) * &BigUint::from(b);
            prop_assert_eq!(ctx.mul(&BigUint::from(a), &BigUint::from(b)), &ab % &m);
            Ok(())
        });
    }

    #[test]
    fn two_limb_fast_path_matches_reference_modpow() {
        // Exercises the unrolled mont_mul_2 against square-and-multiply on
        // full 2-limb (65..128 bit) moduli — the H_prime working width.
        prop_check!(0x1013, 64, |g| {
            let m = BigUint::from(g.u128() | (1u128 << 127) | 1); // odd, bit 127 set
            let base = BigUint::from(g.u128());
            let exp = BigUint::from(g.u128());
            let ctx = MontgomeryCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.modpow(&base, &exp), reference_modpow(&base, &exp, &m));
            Ok(())
        });
    }

    #[test]
    fn wide_modulus_sliding_window_matches_reference() {
        // 256-bit modulus and exponent: covers the generic CIOS path plus
        // window width 4 with multi-window exponents.
        prop_check!(0x1014, 16, |g| {
            let m = BigUint::from_limbs(vec![g.u64() | 1, g.u64(), g.u64(), g.u64() | (1 << 63)]);
            let base = BigUint::from_limbs(vec![g.u64(), g.u64(), g.u64(), g.u64()]);
            let exp = BigUint::from_limbs(vec![g.u64(), g.u64(), g.u64(), g.u64()]);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            prop_assert_eq!(ctx.modpow(&base, &exp), reference_modpow(&base, &exp, &m));
            Ok(())
        });
    }

    #[test]
    fn two_limb_modulus_near_word_boundary() {
        // n = 2^128 - 159 is a maximal two-limb modulus: both limbs all-ones,
        // so every carry chain in the unrolled path overflows if mishandled.
        let p = &(&BigUint::one() << 128) - &BigUint::from(159u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let a = BigUint::from(987_654_321u64);
        let e = &p - &BigUint::one();
        assert_eq!(ctx.modpow(&a, &e), BigUint::one(), "Fermat at 2^128-159");
    }

    #[test]
    fn modpow_product_equals_iterated_modpow() {
        prop_check!(0x1015, 32, |g| {
            let m = BigUint::from(g.u128() | (1u128 << 127) | 1);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            let base = BigUint::from(g.u128());
            let count = (g.u16() % 40) as usize;
            let exps: Vec<BigUint> = (0..count).map(|_| BigUint::from(g.u128() | 1)).collect();
            let mut want = &base % &m;
            for e in &exps {
                want = ctx.modpow(&want, e);
            }
            prop_assert_eq!(ctx.modpow_product(&base, &exps), want);
            Ok(())
        });
    }

    #[test]
    fn modpow_product_edge_cases() {
        let m = BigUint::from(1000003u64);
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = BigUint::from(2u64);
        // Empty product: base^1.
        assert_eq!(ctx.modpow_product(&base, &[]), base);
        // A zero factor collapses the whole exponent to zero: base^0 = 1.
        let exps = [BigUint::from(5u64), BigUint::zero(), BigUint::from(9u64)];
        assert_eq!(ctx.modpow_product(&base, &exps), BigUint::one());
        // Chunking: enough 128-bit factors to force several chunks.
        let many: Vec<BigUint> = (0..90u32)
            .map(|i| BigUint::from((i as u128) << 100 | 0xDEAD_BEEF | 1))
            .collect();
        let mut want = base.clone();
        for e in &many {
            want = ctx.modpow(&want, e);
        }
        assert_eq!(ctx.modpow_product(&base, &many), want);
    }

    #[test]
    fn mul_wide_matches_reduce_then_mul() {
        // x spans one to two modulus widths (plus the >2len fallback);
        // reference is plain reduce-then-multiply.
        prop_check!(0x1018, 64, |g| {
            let m = BigUint::from_limbs(vec![g.u64() | 1, g.u64(), g.u64() | (1 << 63)]);
            let ctx = MontgomeryCtx::new(&m).unwrap();
            for width in [1usize, 3, 5, 6, 8] {
                let x = BigUint::from_limbs((0..width).map(|_| g.u64()).collect());
                let acc = &BigUint::from_limbs(vec![g.u64(), g.u64(), g.u64()]) % &m;
                let want = &(&acc * &(&x % &m)) % &m;
                prop_assert_eq!(ctx.mul_wide(&acc, &x), want);
            }
            // Unreduced acc takes the reduction branch.
            let big_acc = BigUint::from_limbs(vec![g.u64(), g.u64(), g.u64(), g.u64()]);
            let x = BigUint::from_limbs(vec![g.u64(), g.u64()]);
            prop_assert_eq!(
                ctx.mul_wide(&big_acc, &x),
                &(&(&big_acc % &m) * &(&x % &m)) % &m
            );
            Ok(())
        });
    }

    #[test]
    fn mod_helpers_roundtrip() {
        // add/sub/halve agree with BigUint arithmetic at a 3-limb modulus
        // (generic path) and a 2-limb one (fast path width).
        prop_check!(0x1016, 32, |g| {
            for width in [2usize, 3] {
                let mut limbs: Vec<Limb> = (0..width).map(|_| g.u64()).collect();
                limbs[0] |= 1;
                limbs[width - 1] |= 1 << 63;
                let m = BigUint::from_limbs(limbs);
                let ctx = MontgomeryCtx::new(&m).unwrap();
                let a = &BigUint::from_limbs((0..width).map(|_| g.u64()).collect()) % &m;
                let b = &BigUint::from_limbs((0..width).map(|_| g.u64()).collect()) % &m;
                let ap = pad(&a.limbs, width);
                let bp = pad(&b.limbs, width);
                let mut out = vec![0; width];

                ctx.add_mod_into(&ap, &bp, &mut out);
                prop_assert_eq!(BigUint::from_limbs(out.clone()), &(&a + &b) % &m);

                ctx.sub_mod_into(&ap, &bp, &mut out);
                let want = if a >= b { &a - &b } else { &m - &(&b - &a) };
                prop_assert_eq!(BigUint::from_limbs(out.clone()), &want % &m);

                ctx.halve_mod_into(&ap, &mut out);
                let half = BigUint::from_limbs(out.clone());
                prop_assert_eq!(&(&half + &half) % &m, a.clone());
            }
            Ok(())
        });
    }
}
