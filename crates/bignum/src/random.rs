//! Uniform random sampling of big integers.

use crate::uint::BigUint;
use crate::Limb;
use slicer_crypto::Rng;

/// Samples a uniformly random integer with at most `bits` bits.
pub fn random_bits<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64) as usize;
    let mut v: Vec<Limb> = (0..limbs).map(|_| rng.next_u64()).collect();
    // Branch-free top-limb mask: `bits % 64 == 0` maps to a zero shift,
    // keeping the whole limb, so no secret-adjacent comparison is needed.
    let mask = u64::MAX >> ((64 - bits % 64) % 64);
    *v.last_mut().expect("limbs >= 1") &= mask;
    BigUint::from_limbs(v)
}

/// Samples a random odd integer with *exactly* `bits` bits (top and bottom
/// bits forced to one) — the standard prime-candidate shape.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn random_odd_bits<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> BigUint {
    assert!(bits >= 1, "cannot sample a 0-bit integer");
    let mut v = random_bits(bits, rng);
    v.set_bit(bits as u64 - 1, true);
    v.set_bit(0, true);
    v
}

/// Samples uniformly from `[0, bound)` by rejection.
///
/// # Panics
///
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(bound: &BigUint, rng: &mut R) -> BigUint {
    assert!(!bound.is_zero(), "empty sampling range");
    let bits = bound.bit_len() as u32;
    loop {
        let cand = random_bits(bits, rng);
        if &cand < bound {
            return cand;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::HmacDrbg;

    #[test]
    fn random_bits_bounded() {
        let mut rng = HmacDrbg::from_u64(1);
        for _ in 0..100 {
            let v = random_bits(100, &mut rng);
            assert!(v.bit_len() <= 100);
        }
    }

    #[test]
    fn random_odd_exact_width() {
        let mut rng = HmacDrbg::from_u64(2);
        for _ in 0..50 {
            let v = random_odd_bits(67, &mut rng);
            assert_eq!(v.bit_len(), 67);
            assert!(v.is_odd());
        }
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = HmacDrbg::from_u64(3);
        let bound = BigUint::from(1000u64);
        let mut seen_small = false;
        for _ in 0..200 {
            let v = random_below(&bound, &mut rng);
            assert!(v < bound);
            if v < BigUint::from(500u64) {
                seen_small = true;
            }
        }
        assert!(seen_small, "sampling should cover the low half");
    }

    #[test]
    fn one_bit_odd_is_one() {
        let mut rng = HmacDrbg::from_u64(4);
        assert_eq!(random_odd_bits(1, &mut rng), BigUint::one());
    }
}
