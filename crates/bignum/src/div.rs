//! Division and remainder: Knuth Algorithm D (TAOCP vol. 2, 4.3.1).

use crate::uint::BigUint;
use crate::{DoubleLimb, Limb, LIMB_BITS};
use std::ops::{Div, Rem};

impl BigUint {
    /// Computes `(self / divisor, self % divisor)` in one pass.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// let (q, r) = BigUint::from(1000u64).div_rem(&BigUint::from(7u64));
    /// assert_eq!(q, BigUint::from(142u64));
    /// assert_eq!(r, BigUint::from(6u64));
    /// ```
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        knuth_d(self, divisor)
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem_limb(&self, divisor: Limb) -> (BigUint, Limb) {
        assert_ne!(divisor, 0, "division by zero");
        let mut q = vec![0 as Limb; self.limbs.len()];
        let mut rem: DoubleLimb = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as DoubleLimb;
            q[i] = (cur / divisor as DoubleLimb) as Limb;
            rem = cur % divisor as DoubleLimb;
        }
        (BigUint::from_limbs(q), rem as Limb)
    }
}

/// Knuth Algorithm D for multi-limb divisors (len >= 2).
fn knuth_d(u_in: &BigUint, v_in: &BigUint) -> (BigUint, BigUint) {
    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v_in.limbs.last().unwrap().leading_zeros();
    let v = v_in << shift;
    let mut u = (u_in << shift).limbs;
    let n = v.limbs.len();
    let m = u.len() - n;
    u.push(0); // u now has m + n + 1 limbs
    let v = &v.limbs;

    let v_hi = v[n - 1] as DoubleLimb;
    let v_next = v[n - 2] as DoubleLimb;
    let mut q = vec![0 as Limb; m + 1];

    // D2..D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of the running remainder.
        let numer = ((u[j + n] as DoubleLimb) << 64) | u[j + n - 1] as DoubleLimb;
        let mut qhat = numer / v_hi;
        let mut rhat = numer % v_hi;
        while qhat >> 64 != 0 || qhat * v_next > ((rhat << 64) | u[j + n - 2] as DoubleLimb) {
            qhat -= 1;
            rhat += v_hi;
            if rhat >> 64 != 0 {
                break; // rhat no longer fits a limb; qhat is now close enough
            }
        }

        // D4: multiply and subtract qhat * v from u[j .. j+n].
        let mut mul_carry: DoubleLimb = 0;
        let mut borrow: DoubleLimb = 0;
        for i in 0..n {
            let p = qhat * v[i] as DoubleLimb + mul_carry;
            mul_carry = p >> 64;
            let sub = (p as Limb) as DoubleLimb + borrow;
            let cur = u[j + i] as DoubleLimb;
            if cur >= sub {
                u[j + i] = (cur - sub) as Limb;
                borrow = 0;
            } else {
                u[j + i] = (cur + (1u128 << 64) - sub) as Limb;
                borrow = 1;
            }
        }
        let sub = mul_carry + borrow;
        let cur = u[j + n] as DoubleLimb;
        let went_negative = cur < sub;
        u[j + n] = cur.wrapping_sub(sub) as Limb;

        // D5/D6: if the subtraction underflowed, decrement qhat and add back.
        if went_negative {
            qhat -= 1;
            let mut carry: DoubleLimb = 0;
            for i in 0..n {
                let s = u[j + i] as DoubleLimb + v[i] as DoubleLimb + carry;
                u[j + i] = s as Limb;
                carry = s >> 64;
            }
            u[j + n] = u[j + n].wrapping_add(carry as Limb);
        }
        q[j] = qhat as Limb;
    }

    // D8: denormalize the remainder.
    u.truncate(n);
    let rem = BigUint::from_limbs(u) >> shift;
    (BigUint::from_limbs(q), rem)
}

impl Div for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).0
    }
}

impl Div for BigUint {
    type Output = BigUint;
    fn div(self, rhs: BigUint) -> BigUint {
        &self / &rhs
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).1
    }
}

impl Rem for BigUint {
    type Output = BigUint;
    fn rem(self, rhs: BigUint) -> BigUint {
        &self % &rhs
    }
}

#[allow(dead_code)]
const _: () = assert!(LIMB_BITS == 64);

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert, prop_assert_eq, prop_check};

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = big(1).div_rem(&BigUint::zero());
    }

    #[test]
    fn small_divisor_fast_path() {
        let v: BigUint = "123456789123456789123456789123456789".parse().unwrap();
        let (q, r) = v.div_rem_limb(97);
        assert_eq!(&(&q * 97u64) + &BigUint::from(r), v);
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let (q, r) = big(5).div_rem(&big(1u128 << 100));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, big(5));
    }

    #[test]
    fn exact_division() {
        let a: BigUint = "10000000000000000000000000000000000000000".parse().unwrap();
        let b: BigUint = "100000000000000000000".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, b);
        assert!(r.is_zero());
    }

    #[test]
    fn add_back_case() {
        // Constructed so qhat overestimates and the D6 add-back path runs:
        // u = (2^128 - 1) * 2^64, v = 2^128 - 2^64 - 1 exercises the edge.
        let u = BigUint::from_limbs(vec![0, u64::MAX, u64::MAX - 1]);
        let v = BigUint::from_limbs(vec![u64::MAX, u64::MAX - 1]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn matches_u128() {
        prop_check!(0xD11, 64, |g| {
            let a = g.u128();
            let b = g.u128().max(1);
            let (q, r) = big(a).div_rem(&big(b));
            prop_assert_eq!(q.to_u128().unwrap(), a / b);
            prop_assert_eq!(r.to_u128().unwrap(), a % b);
            Ok(())
        });
    }

    #[test]
    fn euclidean_identity() {
        prop_check!(0xD12, 64, |g| {
            let a = BigUint::from_limbs(g.vec_u64(0, 7, 0));
            let b = BigUint::from_limbs(g.vec_u64(1, 4, 0));
            if b.is_zero() {
                return Ok(());
            }
            let (q, r) = a.div_rem(&b);
            prop_assert!(r < b);
            prop_assert_eq!(&(&q * &b) + &r, a);
            Ok(())
        });
    }
}
