//! Greatest common divisor, extended Euclid and modular inverses.

use crate::uint::BigUint;

/// Result of the extended Euclidean algorithm on `(a, b)`.
///
/// Satisfies `a*x - b*y = gcd` or `b*y - a*x = gcd` depending on
/// `x_negative`; use [`BigUint::modinv`] for the common inverse case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// `gcd(a, b)`.
    pub gcd: BigUint,
    /// Magnitude of the Bézout coefficient for `a`.
    pub x: BigUint,
    /// Whether the `a` coefficient is negative.
    pub x_negative: bool,
}

impl BigUint {
    /// Greatest common divisor via the Euclidean algorithm.
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// let g = BigUint::from(48u64).gcd(&BigUint::from(36u64));
    /// assert_eq!(g, BigUint::from(12u64));
    /// ```
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = &a % &b;
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple. Returns zero if either input is zero.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }

    /// Extended Euclidean algorithm: finds the Bézout coefficient of `self`
    /// modulo `m`.
    pub fn extended_gcd(&self, m: &BigUint) -> ExtendedGcd {
        // Iterative extended Euclid tracking only the `x` coefficient with an
        // explicit sign, since BigUint is unsigned.
        let mut r0 = self.clone();
        let mut r1 = m.clone();
        let mut x0 = (BigUint::one(), false);
        let mut x1 = (BigUint::zero(), false);
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // x2 = x0 - q * x1 (signed)
            let qx1 = &q * &x1.0;
            let x2 = signed_sub(&x0, &(qx1, x1.1));
            r0 = r1;
            r1 = r2;
            x0 = x1;
            x1 = x2;
        }
        ExtendedGcd {
            gcd: r0,
            x: x0.0,
            x_negative: x0.1,
        }
    }

    /// Modular inverse: `self^-1 mod m`, or `None` if `gcd(self, m) != 1`.
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// let inv = BigUint::from(3u64).modinv(&BigUint::from(7u64)).unwrap();
    /// assert_eq!(inv, BigUint::from(5u64)); // 3 * 5 = 15 = 1 mod 7
    /// ```
    pub fn modinv(&self, m: &BigUint) -> Option<BigUint> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let reduced = self % m;
        if reduced.is_zero() {
            return None;
        }
        let e = reduced.extended_gcd(m);
        if !e.gcd.is_one() {
            return None;
        }
        let x = &e.x % m;
        Some(if e.x_negative && !x.is_zero() {
            m - &x
        } else {
            x
        })
    }
}

/// `(a_mag, a_neg) - (b_mag, b_neg)` over sign-magnitude integers.
fn signed_sub(a: &(BigUint, bool), b: &(BigUint, bool)) -> (BigUint, bool) {
    match (a.1, b.1) {
        // a - b with both non-negative
        (false, false) => match a.0.checked_sub(&b.0) {
            Some(d) => (d, false),
            None => (&b.0 - &a.0, true),
        },
        // a - (-b) = a + b
        (false, true) => (&a.0 + &b.0, false),
        // -a - b = -(a + b)
        (true, false) => (&a.0 + &b.0, true),
        // -a - (-b) = b - a
        (true, true) => match b.0.checked_sub(&a.0) {
            Some(d) => (d, false),
            None => (&a.0 - &b.0, true),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert, prop_assert_eq, prop_check};

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn gcd_with_zero() {
        assert_eq!(big(12).gcd(&BigUint::zero()), big(12));
        assert_eq!(BigUint::zero().gcd(&big(12)), big(12));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(big(4).lcm(&big(6)), big(12));
        assert_eq!(big(4).lcm(&BigUint::zero()), BigUint::zero());
    }

    #[test]
    fn modinv_of_non_coprime_is_none() {
        assert_eq!(big(6).modinv(&big(9)), None);
        assert_eq!(big(0).modinv(&big(9)), None);
        assert_eq!(big(5).modinv(&BigUint::one()), None);
    }

    #[test]
    fn modinv_large_prime_field() {
        // p = 2^127 - 1 (Mersenne prime)
        let p = &(&BigUint::one() << 127) - &BigUint::one();
        let a: BigUint = "123456789123456789".parse().unwrap();
        let inv = a.modinv(&p).unwrap();
        assert_eq!(&(&a * &inv) % &p, BigUint::one());
    }

    #[test]
    fn gcd_divides_both() {
        prop_check!(0xE11, 64, |g| {
            let a = g.u64_in(1, u64::MAX);
            let b = g.u64_in(1, u64::MAX);
            let d = big(a as u128).gcd(&big(b as u128));
            let d64 = d.to_u64().unwrap();
            prop_assert_eq!(a % d64, 0);
            prop_assert_eq!(b % d64, 0);
            Ok(())
        });
    }

    #[test]
    fn modinv_is_inverse() {
        prop_check!(0xE12, 64, |g| {
            let a = g.u64_in(1, 999_999);
            let m = g.u64_in(2, 999_999);
            let a_b = big(a as u128);
            let m_b = big(m as u128);
            if let Some(inv) = a_b.modinv(&m_b) {
                prop_assert!(inv < m_b);
                prop_assert_eq!(&(&a_b * &inv) % &m_b, BigUint::one());
            } else {
                // No inverse means gcd > 1 (or a ≡ 0).
                let d = a_b.gcd(&m_b);
                prop_assert!(!d.is_one());
            }
            Ok(())
        });
    }
}
