//! Bit-level operations: shifts, bit tests and bitwise operators.

use crate::uint::BigUint;
use crate::{Limb, LIMB_BITS};
use std::ops::{BitAnd, BitOr, BitXor, Shl, Shr};

impl BigUint {
    /// Tests bit `i` (bit 0 is the least significant).
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// let v = BigUint::from(0b1010u64);
    /// assert!(v.bit(1) && v.bit(3));
    /// assert!(!v.bit(0) && !v.bit(1000));
    /// ```
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / LIMB_BITS as u64) as usize;
        match self.limbs.get(limb) {
            Some(&l) => (l >> (i % LIMB_BITS as u64)) & 1 == 1,
            None => false,
        }
    }

    /// Sets bit `i` to `value`.
    pub fn set_bit(&mut self, i: u64, value: bool) {
        let limb = (i / LIMB_BITS as u64) as usize;
        let mask = 1 << (i % LIMB_BITS as u64);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= mask;
        } else if let Some(l) = self.limbs.get_mut(limb) {
            *l &= !mask;
            self.normalize();
        }
    }

    /// Number of trailing zero bits, or `None` for zero.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * LIMB_BITS as u64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u64 {
        self.limbs.iter().map(|l| l.count_ones() as u64).sum()
    }
}

impl Shl<u32> for &BigUint {
    type Output = BigUint;
    fn shl(self, shift: u32) -> BigUint {
        if self.is_zero() || shift == 0 {
            return self.clone();
        }
        let limb_shift = (shift / LIMB_BITS) as usize;
        let bit_shift = shift % LIMB_BITS;
        let mut out = vec![0 as Limb; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry: Limb = 0;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (LIMB_BITS - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<u32> for BigUint {
    type Output = BigUint;
    fn shl(self, shift: u32) -> BigUint {
        &self << shift
    }
}

impl Shr<u32> for &BigUint {
    type Output = BigUint;
    fn shr(self, shift: u32) -> BigUint {
        let limb_shift = (shift / LIMB_BITS) as usize;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = shift % LIMB_BITS;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let hi = src.get(i + 1).copied().unwrap_or(0);
                out.push((src[i] >> bit_shift) | (hi << (LIMB_BITS - bit_shift)));
            }
        }
        BigUint::from_limbs(out)
    }
}

impl Shr<u32> for BigUint {
    type Output = BigUint;
    fn shr(self, shift: u32) -> BigUint {
        &self >> shift
    }
}

macro_rules! bitwise_op {
    ($trait:ident, $method:ident, $op:tt, $len:ident) => {
        impl $trait for &BigUint {
            type Output = BigUint;
            fn $method(self, rhs: &BigUint) -> BigUint {
                let len = self.limbs.len().$len(rhs.limbs.len());
                let mut out = Vec::with_capacity(len);
                for i in 0..len {
                    let a = self.limbs.get(i).copied().unwrap_or(0);
                    let b = rhs.limbs.get(i).copied().unwrap_or(0);
                    out.push(a $op b);
                }
                BigUint::from_limbs(out)
            }
        }

        impl $trait for BigUint {
            type Output = BigUint;
            fn $method(self, rhs: BigUint) -> BigUint {
                (&self).$method(&rhs)
            }
        }
    };
}

bitwise_op!(BitAnd, bitand, &, min);
bitwise_op!(BitOr, bitor, |, max);
bitwise_op!(BitXor, bitxor, ^, max);

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn shift_left_across_limb_boundary() {
        assert_eq!(&big(1) << 64, big(1u128 << 64));
        assert_eq!(&big(3) << 63, big(3u128 << 63));
    }

    #[test]
    fn shift_right_to_zero() {
        assert_eq!(&big(u128::MAX) >> 200, BigUint::zero());
    }

    #[test]
    fn set_and_clear_bits() {
        let mut v = BigUint::zero();
        v.set_bit(100, true);
        assert!(v.bit(100));
        assert_eq!(v.bit_len(), 101);
        v.set_bit(100, false);
        assert!(v.is_zero());
    }

    #[test]
    fn trailing_zeros_and_popcount() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(big(1u128 << 100).trailing_zeros(), Some(100));
        assert_eq!(big(0b1011).count_ones(), 3);
    }

    #[test]
    fn shl_shr_roundtrip() {
        prop_check!(0xB11, 64, |g| {
            let v = g.u128();
            let s = g.u64_in(0, 199) as u32;
            let shifted = &big(v) << s;
            prop_assert_eq!(&shifted >> s, big(v));
            Ok(())
        });
    }

    #[test]
    fn bitwise_match_u128() {
        prop_check!(0xB12, 64, |g| {
            let (a, b) = (g.u128(), g.u128());
            prop_assert_eq!((&big(a) & &big(b)).to_u128().unwrap(), a & b);
            prop_assert_eq!((&big(a) | &big(b)).to_u128().unwrap(), a | b);
            prop_assert_eq!((&big(a) ^ &big(b)).to_u128().unwrap(), a ^ b);
            Ok(())
        });
    }

    #[test]
    fn shl_is_mul_by_power_of_two() {
        prop_check!(0xB13, 64, |g| {
            let v = g.u64();
            let s = g.u64_in(0, 63) as u32;
            let lhs = &big(v as u128) << s;
            let rhs = &big(v as u128) * &big(1u128 << s);
            prop_assert_eq!(lhs, rhs);
            Ok(())
        });
    }
}
