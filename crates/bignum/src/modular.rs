//! Modulus-generic modular arithmetic entry points.

use crate::montgomery::MontgomeryCtx;
use crate::uint::BigUint;

impl BigUint {
    /// Modular addition `(self + rhs) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn addmod(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        &(&(self % m) + &(rhs % m)) % m
    }

    /// Modular multiplication `(self * rhs) mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mulmod(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        &(self * rhs) % m
    }

    /// Modular subtraction `(self - rhs) mod m` (wrapping into the field).
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn submod(&self, rhs: &BigUint, m: &BigUint) -> BigUint {
        let a = self % m;
        let b = rhs % m;
        if a >= b {
            &a - &b
        } else {
            &(&a + m) - &b
        }
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery multiplication when `m` is odd (the common case for
    /// RSA moduli and prime fields) and falls back to binary
    /// square-and-multiply with full reductions otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// let r = BigUint::from(3u64).modpow(&BigUint::from(4u64), &BigUint::from(10u64));
    /// assert_eq!(r, BigUint::from(1u64)); // 81 mod 10
    /// ```
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if let Some(ctx) = MontgomeryCtx::new(m) {
            return ctx.modpow(self, exp);
        }
        // Even modulus: plain square-and-multiply.
        let mut base = self % m;
        let mut acc = BigUint::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                acc = acc.mulmod(&base, m);
            }
            base = &base.square() % m;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn modpow_even_modulus() {
        // 3^5 mod 16 = 243 mod 16 = 3
        assert_eq!(big(3).modpow(&big(5), &big(16)), big(3));
    }

    #[test]
    fn modpow_modulus_one() {
        assert_eq!(big(5).modpow(&big(5), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn submod_wraps() {
        assert_eq!(big(2).submod(&big(5), &big(7)), big(4));
        assert_eq!(big(5).submod(&big(2), &big(7)), big(3));
    }

    #[test]
    fn rsa_style_roundtrip() {
        // Tiny RSA: n = 3233 = 61*53, e = 17, d = 413.
        let n = big(3233);
        let msg = big(65);
        let ct = msg.modpow(&big(17), &n);
        assert_eq!(ct, big(2790));
        assert_eq!(ct.modpow(&big(413), &n), msg);
    }

    fn naive_modpow(mut b: u128, mut e: u128, m: u128) -> u128 {
        let mut acc: u128 = 1 % m;
        b %= m;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b % m;
            }
            b = b * b % m;
            e >>= 1;
        }
        acc
    }

    #[test]
    fn modpow_matches_naive_any_modulus() {
        prop_check!(0xF11, 64, |g| {
            let base = g.u32();
            let exp = g.u16();
            let m = g.u64_in(2, u32::MAX as u64);
            let got = big(base as u128).modpow(&big(exp as u128), &big(m as u128));
            let want = naive_modpow(base as u128, exp as u128, m as u128);
            prop_assert_eq!(got, big(want));
            Ok(())
        });
    }

    #[test]
    fn addmod_submod_inverse() {
        prop_check!(0xF12, 64, |g| {
            let (a, b) = (g.u64(), g.u64());
            let m = g.u64_in(2, u64::MAX);
            let am = big(a as u128);
            let bm = big(b as u128);
            let mm = big(m as u128);
            let s = am.addmod(&bm, &mm);
            prop_assert_eq!(s.submod(&bm, &mm), &am % &mm);
            Ok(())
        });
    }
}
