//! Serde support: `BigUint` serializes as a hex string.

use crate::uint::BigUint;
use serde::de::{Error as DeError, Visitor};
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

impl Serialize for BigUint {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

struct HexVisitor;

impl Visitor<'_> for HexVisitor {
    type Value = BigUint;

    fn expecting(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a hexadecimal big-integer string")
    }

    fn visit_str<E: DeError>(self, v: &str) -> Result<BigUint, E> {
        BigUint::from_hex(v).map_err(E::custom)
    }
}

impl<'de> Deserialize<'de> for BigUint {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_str(HexVisitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize, Deserialize)]
    struct Wrap {
        v: BigUint,
    }

    #[test]
    fn derive_compiles_for_wrapping_structs() {
        // The derive above is itself the assertion: BigUint works as a
        // field of serde-derived structs.
        let w = Wrap {
            v: BigUint::from(7u64),
        };
        assert_eq!(w.v.to_u64(), Some(7));
    }

    #[test]
    fn hex_is_the_wire_form() {
        // Round-trip through serde's string model without pulling in a JSON
        // dependency: use the test serializer behaviour via to_hex/from_hex.
        let v: BigUint = "123456789012345678901234567890".parse().unwrap();
        let hex = v.to_hex();
        assert_eq!(BigUint::from_hex(&hex).unwrap(), v);
    }
}
