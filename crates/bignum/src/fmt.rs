//! `Display`, `Debug` and radix formatting.

use crate::uint::BigUint;
use std::fmt;

/// Largest power of ten fitting a limb: 10^19.
const DECIMAL_CHUNK: u64 = 10_000_000_000_000_000_000;
const DECIMAL_CHUNK_DIGITS: usize = 19;

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(DECIMAL_CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut s = chunks.pop().unwrap().to_string();
        for c in chunks.iter().rev() {
            s.push_str(&format!("{c:0width$}", width = DECIMAL_CHUNK_DIGITS));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal for small values, hex for large ones (readability in tests).
        if self.bit_len() <= 128 {
            write!(f, "BigUint({self})")
        } else {
            write!(f, "BigUint(0x{self:x})")
        }
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:x}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::UpperHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0x", "0");
        }
        let mut s = format!("{:X}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016X}"));
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::Binary for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "0b", "0");
        }
        let mut s = format!("{:b}", self.limbs.last().unwrap());
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:064b}"));
        }
        f.pad_integral(true, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_zero_and_small() {
        assert_eq!(BigUint::zero().to_string(), "0");
        assert_eq!(BigUint::from(42u64).to_string(), "42");
    }

    #[test]
    fn display_multi_chunk_pads_internal_zeros() {
        // 10^19 + 5 must not print as "15".
        let v: BigUint = "10000000000000000005".parse().unwrap();
        assert_eq!(v.to_string(), "10000000000000000005");
    }

    #[test]
    fn hex_formats() {
        let v = BigUint::from(0xdeadbeefu64);
        assert_eq!(format!("{v:x}"), "deadbeef");
        assert_eq!(format!("{v:X}"), "DEADBEEF");
        assert_eq!(format!("{v:#x}"), "0xdeadbeef");
    }

    #[test]
    fn hex_pads_internal_limbs() {
        let v = BigUint::from_limbs(vec![1, 1]); // 2^64 + 1
        assert_eq!(format!("{v:x}"), "10000000000000001");
    }

    #[test]
    fn binary_format() {
        assert_eq!(format!("{:b}", BigUint::from(5u64)), "101");
    }

    #[test]
    fn debug_nonempty_for_zero() {
        assert_eq!(format!("{:?}", BigUint::zero()), "BigUint(0)");
    }
}
