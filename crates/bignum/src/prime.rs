//! Primality testing (Miller–Rabin and Baillie–PSW) and prime generation.

use crate::montgomery::{Mont2, MontgomeryCtx};
use crate::random::random_odd_bits;
use crate::uint::BigUint;
use crate::Limb;
use slicer_crypto::Rng;

/// The odd primes below 1000, used for trial-division pre-filtering.
pub const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Deterministic Miller–Rabin bases proving primality for all n < 3.3e24.
const DETERMINISTIC_BASES: &[u64] = &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

impl BigUint {
    /// Miller–Rabin probabilistic primality test.
    ///
    /// Always runs the 12 deterministic small bases (which decide primality
    /// exactly for `n < 3.3 * 10^24`) plus `extra_rounds` additional bases
    /// derived deterministically from the candidate, giving a soundness error
    /// below `4^-(12 + extra_rounds)` for larger inputs. The derived bases
    /// make the test reproducible — important for `H_prime`, whose output
    /// must be recomputable by the blockchain verifier.
    pub fn is_probable_prime(&self, extra_rounds: u32) -> bool {
        // Small and even cases.
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if v == 2 {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        for &p in SMALL_PRIMES {
            let pb = BigUint::from(p);
            if *self == pb {
                return true;
            }
            let (_, r) = self.div_rem_limb(p);
            if r == 0 {
                return false;
            }
        }

        // Write n - 1 = d * 2^s with d odd.
        let n_minus_1 = self - &BigUint::one();
        let s = n_minus_1.trailing_zeros().expect("n > 1 so n-1 > 0");
        let d = &n_minus_1 >> s as u32;
        let ctx = MontgomeryCtx::new(self).expect("odd modulus");

        let witness_passes = |a: &BigUint| -> bool {
            let mut x = ctx.modpow(a, &d);
            if x.is_one() || x == n_minus_1 {
                return true;
            }
            for _ in 1..s {
                x = ctx.mul(&x, &x);
                if x == n_minus_1 {
                    return true;
                }
                if x.is_one() {
                    return false;
                }
            }
            false
        };

        for &b in DETERMINISTIC_BASES {
            let a = BigUint::from(b);
            if &a % self >= BigUint::two() && !witness_passes(&a) {
                return false;
            }
        }

        // Extra rounds with bases derived from the candidate via SplitMix64
        // over its limbs (deterministic, so H_prime is verifier-recomputable).
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for &l in self.limbs() {
            seed = splitmix64(seed ^ l);
        }
        for _ in 0..extra_rounds {
            seed = splitmix64(seed);
            // Base in [2, n-2]: fold a few words and reduce.
            let mut words = Vec::with_capacity(4);
            let mut s2 = seed;
            for _ in 0..self.limbs().len().min(4) {
                s2 = splitmix64(s2);
                words.push(s2);
            }
            let mut a = &BigUint::from_limbs(words) % &n_minus_1;
            if a < BigUint::two() {
                a = BigUint::two();
            }
            if !witness_passes(&a) {
                return false;
            }
        }
        true
    }
}

impl BigUint {
    /// Baillie–PSW probabilistic primality test: trial division by the
    /// small primes, a strong base-2 Miller–Rabin round, then a strong
    /// Lucas test with Selfridge parameters.
    ///
    /// BPSW has no known counterexample (and provably none below `2^64`),
    /// and costs roughly four Miller–Rabin rounds — an order of magnitude
    /// cheaper than [`BigUint::is_probable_prime`]'s 12-plus-extra base
    /// sweep. Like that test it is fully deterministic in the candidate,
    /// so `H_prime` outputs remain verifier-recomputable.
    pub fn is_prime_bpsw(&self) -> bool {
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if v == 2 {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        for &p in SMALL_PRIMES {
            if self.to_u64() == Some(p) {
                return true;
            }
            if self.div_rem_limb(p).1 == 0 {
                return false;
            }
        }
        self.bpsw_core()
    }

    /// [`BigUint::is_prime_bpsw`] minus the trial-division prefilter, for
    /// callers (like the `H_prime` candidate sieve) that have already
    /// ruled out every factor below 1000. The caller owns that contract;
    /// violating it risks accepting a composite the sieve would have
    /// caught.
    pub fn is_prime_bpsw_presieved(&self) -> bool {
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if v == 2 {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        self.bpsw_core()
    }

    /// Strong base-2 Miller–Rabin followed by a strong Lucas test.
    /// Requires `self` odd and > 2.
    fn bpsw_core(&self) -> bool {
        let Some(ctx) = MontgomeryCtx::new(self) else {
            return false;
        };

        // 128-bit candidates — the `H_prime` working width, hit tens of
        // thousands of times per ADS build — take tuple-valued fast paths:
        // base 2 needs no window table (multiplying by 2 is a modular
        // doubling), the Lucas ladder runs allocation-free, and the
        // `n ± 1 = d · 2^s` decompositions stay in `u128` registers.
        if let Some(m2) = ctx.as_two_limb() {
            let n = m2.modulus_u128();
            let s = (n - 1).trailing_zeros();
            let d = (n - 1) >> s;
            return mr_base2_two_limb(&m2, d, s) && strong_lucas_two_limb(n, &m2);
        }

        let n_minus_1 = self - &BigUint::one();
        let s = n_minus_1.trailing_zeros().expect("n > 1 so n-1 > 0");
        let d = &n_minus_1 >> s as u32;

        // Strong probable prime test to base 2.
        let mut x = ctx.modpow(&BigUint::two(), &d);
        if !(x.is_one() || x == n_minus_1) {
            let mut passed = false;
            for _ in 1..s {
                x = ctx.mul(&x, &x);
                if x == n_minus_1 {
                    passed = true;
                    break;
                }
                if x.is_one() {
                    break;
                }
            }
            if !passed {
                return false;
            }
        }

        strong_lucas_prp(self, &ctx)
    }
}

/// Strong Lucas probable prime test with Selfridge's parameter choice
/// (method A): `D` is the first of `5, -7, 9, -11, ...` with Jacobi symbol
/// `(D/n) = -1`, then `P = 1`, `Q = (1 - D) / 4`.
///
/// Requires `n` odd, > 2, with no factor below 1000 already found.
fn strong_lucas_prp(n: &BigUint, ctx: &MontgomeryCtx) -> bool {
    let d = match selfridge_d(n) {
        Ok(d) => d,
        Err(verdict) => return verdict,
    };
    let q: i64 = (1 - d) / 4;

    // n + 1 = k * 2^s with k odd.
    let n_plus_1 = n + &BigUint::one();
    let s = n_plus_1
        .trailing_zeros()
        .expect("n odd, so n+1 is even and nonzero");
    let k = &n_plus_1 >> s as u32;

    // Montgomery-form constants and Lucas state: U_1 = 1, V_1 = P = 1,
    // and the running power Q^j alongside (needed by the V doubling rule).
    let len = ctx.limb_len();
    let dm = ctx.to_mont(&signed_mod(d, n));
    let q1 = ctx.to_mont(&signed_mod(q, n));
    let mut u = ctx.one_mont();
    let mut v = ctx.one_mont();
    let mut qk = q1.clone();

    let mut t = vec![0 as Limb; len + 2];
    let mut a = vec![0 as Limb; len];
    let mut b = vec![0 as Limb; len];
    let mut c = vec![0 as Limb; len];

    // Left-to-right binary ladder over k (MSB already consumed by the
    // initial state). Doubling: U_{2j} = U_j V_j, V_{2j} = V_j^2 - 2 Q^j.
    // Increment (P = 1): U' = (U + V) / 2, V' = (D U + V) / 2.
    let kbits = k.bit_len();
    for i in (0..kbits.saturating_sub(1)).rev() {
        ctx.mont_mul_into(&u, &v, &mut t, &mut a);
        std::mem::swap(&mut u, &mut a);
        ctx.mont_mul_into(&v, &v, &mut t, &mut a);
        ctx.sub_mod_into(&a, &qk, &mut b);
        ctx.sub_mod_into(&b, &qk, &mut v);
        ctx.mont_mul_into(&qk, &qk, &mut t, &mut a);
        std::mem::swap(&mut qk, &mut a);
        if k.bit(i) {
            ctx.mont_mul_into(&qk, &q1, &mut t, &mut a);
            std::mem::swap(&mut qk, &mut a);
            ctx.add_mod_into(&u, &v, &mut a);
            ctx.halve_mod_into(&a, &mut b);
            ctx.mont_mul_into(&dm, &u, &mut t, &mut a);
            ctx.add_mod_into(&a, &v, &mut c);
            ctx.halve_mod_into(&c, &mut v);
            std::mem::swap(&mut u, &mut b);
        }
    }

    // n is a strong Lucas probable prime iff U_k = 0, or V_{k 2^r} = 0 for
    // some 0 <= r < s.
    if is_zero_limbs(&u) || is_zero_limbs(&v) {
        return true;
    }
    for _ in 1..s {
        ctx.mont_mul_into(&v, &v, &mut t, &mut a);
        ctx.sub_mod_into(&a, &qk, &mut b);
        ctx.sub_mod_into(&b, &qk, &mut v);
        if is_zero_limbs(&v) {
            return true;
        }
        ctx.mont_mul_into(&qk, &qk, &mut t, &mut a);
        std::mem::swap(&mut qk, &mut a);
    }
    false
}

/// Selfridge method-A parameter search: the first `D` of `5, -7, 9, -11,
/// ...` with `(D/n) = -1`. `Err(verdict)` means the search itself settled
/// primality: a shared factor (composite unless `n` IS that small factor)
/// or a perfect square (never yields `(D/n) = -1`).
fn selfridge_d(n: &BigUint) -> Result<i64, bool> {
    let mut d: i64 = 5;
    let mut misses = 0u32;
    loop {
        match jacobi_signed(d, n) {
            0 => return Err(n.to_u64() == Some(d.unsigned_abs())),
            -1 => return Ok(d),
            _ => {
                misses += 1;
                if misses == 8 && is_perfect_square(n) {
                    return Err(false);
                }
                d = if d > 0 { -(d + 2) } else { -d + 2 };
            }
        }
    }
}

/// [`selfridge_d`] for a two-limb modulus held in a `u128` — the same
/// search, with every Jacobi evaluation on machine words.
fn selfridge_d_u128(n: u128) -> Result<i64, bool> {
    let mut d: i64 = 5;
    let mut misses = 0u32;
    loop {
        match jacobi_signed_u128(d, n) {
            0 => return Err(n == d.unsigned_abs() as u128),
            -1 => return Ok(d),
            _ => {
                misses += 1;
                if misses == 8 && is_perfect_square_u128(n) {
                    return Err(false);
                }
                d = if d > 0 { -(d + 2) } else { -d + 2 };
            }
        }
    }
}

/// Jacobi symbol `(d/n)` for small signed `d` and odd `n` in a `u128`:
/// the [`jacobi_signed`] ladder with the one wide reduction `n mod |d|`
/// done by the hardware.
fn jacobi_signed_u128(d: i64, n: u128) -> i32 {
    let n_low = n as u64;
    debug_assert!(n_low & 1 == 1);
    let mut sign = 1i32;
    if d < 0 && n_low % 4 == 3 {
        sign = -sign;
    }
    let mut a = d.unsigned_abs();
    if a == 0 {
        return if n == 1 { sign } else { 0 };
    }
    let tz = a.trailing_zeros();
    if tz % 2 == 1 {
        let m = n_low % 8;
        if m == 3 || m == 5 {
            sign = -sign;
        }
    }
    a >>= tz;
    if a == 1 {
        return sign;
    }
    if a % 4 == 3 && n_low % 4 == 3 {
        sign = -sign;
    }
    sign * jacobi_u64((n % a as u128) as u64, a)
}

/// `x mod n` for a small signed `x` and odd `n`, as a limb tuple. `|x|`
/// must be below `n` (the Selfridge search never leaves that range for a
/// two-limb modulus).
fn signed_mod_u128(x: i64, n: u128) -> (Limb, Limb) {
    debug_assert!((x.unsigned_abs() as u128) < n);
    let v = if x >= 0 {
        x as u128
    } else {
        n - x.unsigned_abs() as u128
    };
    (v as Limb, (v >> 64) as Limb)
}

/// [`is_perfect_square`] on a `u128`: same mod-16 filter, Newton isqrt on
/// machine words.
fn is_perfect_square_u128(n: u128) -> bool {
    if !matches!(n & 15, 0 | 1 | 4 | 9) {
        return false;
    }
    let bits = 128 - n.leading_zeros();
    let mut x = 1u128 << bits.div_ceil(2);
    loop {
        let y = (x + n / x) >> 1;
        if y >= x {
            break;
        }
        x = y;
    }
    x.checked_mul(x) == Some(n)
}

/// Strong base-2 Miller–Rabin over a two-limb modulus, with
/// `n - 1 = d * 2^s`. Base 2 never needs a multiplication table: the
/// ladder is squarings plus modular doublings, all on register tuples.
fn mr_base2_two_limb(m2: &Mont2<'_>, d: u128, s: u32) -> bool {
    let one = m2.one();
    // mont(n - 1) = -mont(1) mod n.
    let minus_one = m2.sub_mod((0, 0), one);

    // Left-to-right ladder over d (top bit seeds the accumulator with 2).
    let two = m2.add_mod(one, one);
    let mut x = two;
    let bits = 128 - d.leading_zeros();
    for i in (0..bits.saturating_sub(1)).rev() {
        x = m2.sqr(x);
        if (d >> i) & 1 == 1 {
            x = m2.add_mod(x, x);
        }
    }
    if x == one || x == minus_one {
        return true;
    }
    for _ in 1..s {
        x = m2.sqr(x);
        if x == minus_one {
            return true;
        }
        if x == one {
            return false;
        }
    }
    false
}

/// Strong Lucas probable prime test specialized to two-limb `n`: identical
/// ladder to [`strong_lucas_prp`] but with tuple state instead of
/// scratch-buffer slices, and the parameter search done in `u128`.
fn strong_lucas_two_limb(n: u128, m2: &Mont2<'_>) -> bool {
    let d = match selfridge_d_u128(n) {
        Ok(d) => d,
        Err(verdict) => return verdict,
    };
    let q: i64 = (1 - d) / 4;

    // n + 1 = k * 2^s with k odd. n + 1 only wraps for n = 2^128 - 1,
    // which is divisible by 3 — the presieve contract excludes it, but a
    // composite verdict is the correct answer regardless.
    let Some(n_plus_1) = n.checked_add(1) else {
        return false;
    };
    let s = n_plus_1.trailing_zeros();
    let k = n_plus_1 >> s;

    let dm = m2.to_mont_reduced(signed_mod_u128(d, n));
    let q1 = m2.to_mont_reduced(signed_mod_u128(q, n));
    let one = m2.one();
    let mut u = one;
    let mut v = one;
    let mut qk = q1;

    // Same doubling / increment rules as the generic ladder.
    let kbits = (128 - k.leading_zeros()) as u64;
    for i in (0..kbits.saturating_sub(1)).rev() {
        u = m2.mul(u, v);
        let vv = m2.sqr(v);
        v = m2.sub_mod(m2.sub_mod(vv, qk), qk);
        qk = m2.sqr(qk);
        if (k >> i) & 1 == 1 {
            qk = m2.mul(qk, q1);
            let nu = m2.halve_mod(m2.add_mod(u, v));
            let nv = m2.halve_mod(m2.add_mod(m2.mul(dm, u), v));
            u = nu;
            v = nv;
        }
    }

    if u == (0, 0) || v == (0, 0) {
        return true;
    }
    for _ in 1..s {
        let vv = m2.sqr(v);
        v = m2.sub_mod(m2.sub_mod(vv, qk), qk);
        if v == (0, 0) {
            return true;
        }
        qk = m2.sqr(qk);
    }
    false
}

fn is_zero_limbs(v: &[Limb]) -> bool {
    v.iter().all(|&l| l == 0)
}

/// `x mod n` for a small signed `x` and big odd `n`.
fn signed_mod(x: i64, n: &BigUint) -> BigUint {
    let abs = &BigUint::from(x.unsigned_abs()) % n;
    if x < 0 && !abs.is_zero() {
        n - &abs
    } else {
        abs
    }
}

/// Jacobi symbol `(a/n)` for odd `n >= 1` and `a` reduced mod `n`.
fn jacobi_u64(mut a: u64, mut n: u64) -> i32 {
    debug_assert!(n % 2 == 1);
    let mut sign = 1i32;
    a %= n;
    while a != 0 {
        let tz = a.trailing_zeros();
        a >>= tz;
        if tz % 2 == 1 {
            let m = n % 8;
            if m == 3 || m == 5 {
                sign = -sign;
            }
        }
        // Quadratic reciprocity (both odd now).
        if a % 4 == 3 && n % 4 == 3 {
            sign = -sign;
        }
        std::mem::swap(&mut a, &mut n);
        a %= n;
    }
    if n == 1 {
        sign
    } else {
        0
    }
}

/// Jacobi symbol `(d/n)` for small signed `d` and big odd `n`.
fn jacobi_signed(d: i64, n: &BigUint) -> i32 {
    let n_low = n.limbs().first().copied().unwrap_or(0);
    debug_assert!(n_low & 1 == 1);
    let mut sign = 1i32;
    if d < 0 && n_low % 4 == 3 {
        sign = -sign;
    }
    let mut a = d.unsigned_abs();
    if a == 0 {
        return if n.is_one() { sign } else { 0 };
    }
    let tz = a.trailing_zeros();
    if tz % 2 == 1 {
        let m = n_low % 8;
        if m == 3 || m == 5 {
            sign = -sign;
        }
    }
    a >>= tz;
    if a == 1 {
        return sign;
    }
    if a % 4 == 3 && n_low % 4 == 3 {
        sign = -sign;
    }
    sign * jacobi_u64(n.div_rem_limb(a).1, a)
}

/// Floor of the square root by Newton iteration.
fn isqrt(n: &BigUint) -> BigUint {
    if n.is_zero() {
        return BigUint::zero();
    }
    // Start above sqrt(n); the iteration decreases monotonically to floor.
    let mut x = &BigUint::one() << (n.bit_len().div_ceil(2) as u32);
    loop {
        let y = &(&x + &(n / &x)) >> 1;
        if y >= x {
            return x;
        }
        x = y;
    }
}

fn is_perfect_square(n: &BigUint) -> bool {
    // Squares end in 0, 1, 4 or 9 mod 16; filter before the full isqrt.
    let low = n.limbs().first().copied().unwrap_or(0) & 15;
    if !matches!(low, 0 | 1 | 4 | 9) {
        return false;
    }
    let r = isqrt(n);
    &(&r * &r) == n
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let cand = random_odd_bits(bits, rng);
        if cand.is_probable_prime(8) {
            return cand;
        }
    }
}

/// Generates a random safe prime `p = 2q + 1` (with `q` also prime) of
/// exactly `bits` bits.
///
/// Used by the RSA accumulator setup, which requires safe-prime factors so
/// that the group of quadratic residues has large prime order.
///
/// # Panics
///
/// Panics if `bits < 4`.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> BigUint {
    assert!(bits >= 4, "safe primes need at least 4 bits");
    loop {
        let q = random_odd_bits(bits - 1, rng);
        // Cheap joint pre-filter: p = 2q+1 must avoid all small factors too.
        let p = &(&q << 1) + &BigUint::one();
        if p.bit_len() != bits as u64 {
            continue;
        }
        let mut ok = true;
        for &sp in SMALL_PRIMES {
            if (q.div_rem_limb(sp).1 == 0 || p.div_rem_limb(sp).1 == 0)
                && q.to_u64() != Some(sp)
                && p.to_u64() != Some(sp)
            {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if q.is_probable_prime(4) && p.is_probable_prime(8) {
            return p;
        }
    }
}

/// Returns the smallest probable prime `>= start`.
pub fn next_prime(start: &BigUint) -> BigUint {
    let mut cand = start.clone();
    if cand < BigUint::two() {
        return BigUint::two();
    }
    if cand.is_even() {
        cand = &cand + &BigUint::one();
        if cand == BigUint::two() {
            return cand;
        }
    }
    loop {
        if cand.is_probable_prime(8) {
            return cand;
        }
        cand = &cand + &BigUint::two();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::HmacDrbg;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn small_primes_recognized() {
        for &p in &[2u64, 3, 5, 7, 997, 104729] {
            assert!(big(p as u128).is_probable_prime(2), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for &c in &[0u64, 1, 4, 9, 997 * 991, 104729 * 2] {
            assert!(!big(c as u128).is_probable_prime(2), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes that fool base-only tests.
        for &c in &[561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!big(c as u128).is_probable_prime(2), "{c} is Carmichael");
        }
    }

    #[test]
    fn known_large_primes() {
        // 2^127 - 1 and 2^89 - 1 are Mersenne primes.
        let m127 = &(&BigUint::one() << 127) - &BigUint::one();
        let m89 = &(&BigUint::one() << 89) - &BigUint::one();
        assert!(m127.is_probable_prime(4));
        assert!(m89.is_probable_prime(4));
        // 2^128 + 1 is composite (factor 59649589127497217).
        let f7ish = &(&BigUint::one() << 128) + &BigUint::one();
        assert!(!f7ish.is_probable_prime(4));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut rng = HmacDrbg::from_u64(7);
        for bits in [16u32, 48, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits as u64);
            assert!(p.is_probable_prime(8));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = HmacDrbg::from_u64(11);
        let p = gen_safe_prime(64, &mut rng);
        assert!(p.is_probable_prime(8));
        let q = &(&p - &BigUint::one()) >> 1;
        assert!(q.is_probable_prime(8));
        assert_eq!(p.bit_len(), 64);
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(next_prime(&big(0)), big(2));
        assert_eq!(next_prime(&big(14)), big(17));
        assert_eq!(next_prime(&big(17)), big(17));
        assert_eq!(next_prime(&big(90)), big(97));
    }

    #[test]
    fn bpsw_agrees_with_miller_rabin_on_small_range() {
        // Exhaustive agreement over a dense range covers every residue
        // pattern the Lucas ladder and Jacobi search branch on.
        for n in 0u64..4000 {
            let b = big(n as u128);
            assert_eq!(
                b.is_prime_bpsw(),
                b.is_probable_prime(2),
                "disagreement at {n}"
            );
        }
    }

    #[test]
    fn bpsw_rejects_base2_strong_pseudoprimes() {
        // Strong pseudoprimes to base 2: the Miller–Rabin half of BPSW
        // passes these, so they isolate the Lucas half.
        for &c in &[
            2047u64, 3277, 4033, 4681, 8321, 15841, 29341, 42799, 49141, 52633, 65281, 74665,
            80581, 85489, 88357, 90751,
        ] {
            assert!(!big(c as u128).is_prime_bpsw(), "{c} is composite");
        }
    }

    #[test]
    fn bpsw_rejects_lucas_pseudoprimes() {
        // Strong Lucas pseudoprimes (Selfridge parameters): the Lucas half
        // passes these, so they isolate the base-2 Miller–Rabin half.
        for &c in &[5459u64, 5777, 10877, 16109, 18971, 22499, 24569, 25199] {
            assert!(!big(c as u128).is_prime_bpsw(), "{c} is composite");
        }
    }

    #[test]
    fn bpsw_rejects_perfect_squares() {
        // Squares exercise the D-search escape hatch: no D has (D/n) = -1.
        for &c in &[25u64, 49, 169, 10201, 104729 * 104729] {
            assert!(!big(c as u128).is_prime_bpsw(), "{c} is a square");
        }
        let big_sq = {
            let m89 = &(&BigUint::one() << 89) - &BigUint::one();
            &m89 * &m89
        };
        assert!(!big_sq.is_prime_bpsw());
    }

    #[test]
    fn bpsw_accepts_known_primes() {
        let m127 = &(&BigUint::one() << 127) - &BigUint::one();
        let m89 = &(&BigUint::one() << 89) - &BigUint::one();
        assert!(m127.is_prime_bpsw());
        assert!(m89.is_prime_bpsw());
        for &p in &[2u64, 3, 5, 997, 104729] {
            assert!(big(p as u128).is_prime_bpsw(), "{p} is prime");
        }
    }

    #[test]
    fn bpsw_two_limb_fast_path_agrees_with_miller_rabin() {
        use slicer_testkit::{prop_assert_eq, prop_check};
        // Full two-limb candidates route through the tuple-valued MR2 and
        // Lucas ladders; the 12-base deterministic sweep is the referee.
        prop_check!(0x1017, 64, |g| {
            let n = BigUint::from(g.u128() | (1u128 << 127) | 1);
            prop_assert_eq!(n.is_prime_bpsw(), n.is_probable_prime(8));
            Ok(())
        });
    }

    #[test]
    fn bpsw_two_limb_primes_and_semiprimes() {
        let mut rng = HmacDrbg::from_u64(31);
        for _ in 0..6 {
            // 128-bit primes must pass the fast path...
            let r = gen_prime(128, &mut rng);
            assert!(r.is_prime_bpsw(), "{r:?} is prime");
            // ...and products of two 64-bit primes survive trial division,
            // so rejecting them exercises the full two-limb core.
            let n = &gen_prime(64, &mut rng) * &gen_prime(64, &mut rng);
            assert!(!n.is_prime_bpsw(), "{n:?} is a semiprime");
        }
        // Maximal two-limb modulus: every carry chain saturates.
        let p = &(&BigUint::one() << 128) - &BigUint::from(159u64);
        assert!(p.is_prime_bpsw(), "2^128 - 159 is prime");
    }

    #[test]
    fn bpsw_presieved_agrees_past_trial_division() {
        // On candidates with no small factors the presieved variant is
        // definitionally identical to the full test.
        let mut rng = HmacDrbg::from_u64(23);
        for _ in 0..24 {
            let cand = crate::random::random_odd_bits(96, &mut rng);
            let sieved = SMALL_PRIMES.iter().all(|&p| cand.div_rem_limb(p).1 != 0);
            if sieved {
                assert_eq!(cand.is_prime_bpsw_presieved(), cand.is_prime_bpsw());
                assert_eq!(cand.is_prime_bpsw(), cand.is_probable_prime(8));
            }
        }
    }

    #[test]
    fn deterministic_outcome() {
        // The extra rounds are derived from the candidate, so repeated calls
        // agree — required by H_prime recomputation on the verifier.
        let n: BigUint = "340282366920938463463374607431768211507".parse().unwrap();
        let first = n.is_probable_prime(16);
        for _ in 0..3 {
            assert_eq!(n.is_probable_prime(16), first);
        }
    }
}
