//! Primality testing (Miller–Rabin) and prime generation.

use crate::montgomery::MontgomeryCtx;
use crate::random::random_odd_bits;
use crate::uint::BigUint;
use slicer_crypto::Rng;

/// The odd primes below 1000, used for trial-division pre-filtering.
pub const SMALL_PRIMES: &[u64] = &[
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421,
    431, 433, 439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521, 523, 541, 547,
    557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613, 617, 619, 631, 641, 643, 647, 653, 659,
    661, 673, 677, 683, 691, 701, 709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797,
    809, 811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887, 907, 911, 919, 929,
    937, 941, 947, 953, 967, 971, 977, 983, 991, 997,
];

/// Deterministic Miller–Rabin bases proving primality for all n < 3.3e24.
const DETERMINISTIC_BASES: &[u64] = &[2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

impl BigUint {
    /// Miller–Rabin probabilistic primality test.
    ///
    /// Always runs the 12 deterministic small bases (which decide primality
    /// exactly for `n < 3.3 * 10^24`) plus `extra_rounds` additional bases
    /// derived deterministically from the candidate, giving a soundness error
    /// below `4^-(12 + extra_rounds)` for larger inputs. The derived bases
    /// make the test reproducible — important for `H_prime`, whose output
    /// must be recomputable by the blockchain verifier.
    pub fn is_probable_prime(&self, extra_rounds: u32) -> bool {
        // Small and even cases.
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
            if v == 2 {
                return true;
            }
        }
        if self.is_even() {
            return false;
        }
        for &p in SMALL_PRIMES {
            let pb = BigUint::from(p);
            if *self == pb {
                return true;
            }
            let (_, r) = self.div_rem_limb(p);
            if r == 0 {
                return false;
            }
        }

        // Write n - 1 = d * 2^s with d odd.
        let n_minus_1 = self - &BigUint::one();
        let s = n_minus_1.trailing_zeros().expect("n > 1 so n-1 > 0");
        let d = &n_minus_1 >> s as u32;
        let ctx = MontgomeryCtx::new(self).expect("odd modulus");

        let witness_passes = |a: &BigUint| -> bool {
            let mut x = ctx.modpow(a, &d);
            if x.is_one() || x == n_minus_1 {
                return true;
            }
            for _ in 1..s {
                x = ctx.mul(&x, &x);
                if x == n_minus_1 {
                    return true;
                }
                if x.is_one() {
                    return false;
                }
            }
            false
        };

        for &b in DETERMINISTIC_BASES {
            let a = BigUint::from(b);
            if &a % self >= BigUint::two() && !witness_passes(&a) {
                return false;
            }
        }

        // Extra rounds with bases derived from the candidate via SplitMix64
        // over its limbs (deterministic, so H_prime is verifier-recomputable).
        let mut seed: u64 = 0x9E37_79B9_7F4A_7C15;
        for &l in self.limbs() {
            seed = splitmix64(seed ^ l);
        }
        for _ in 0..extra_rounds {
            seed = splitmix64(seed);
            // Base in [2, n-2]: fold a few words and reduce.
            let mut words = Vec::with_capacity(4);
            let mut s2 = seed;
            for _ in 0..self.limbs().len().min(4) {
                s2 = splitmix64(s2);
                words.push(s2);
            }
            let mut a = &BigUint::from_limbs(words) % &n_minus_1;
            if a < BigUint::two() {
                a = BigUint::two();
            }
            if !witness_passes(&a) {
                return false;
            }
        }
        true
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Generates a random probable prime with exactly `bits` bits.
///
/// # Panics
///
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "a prime needs at least 2 bits");
    loop {
        let cand = random_odd_bits(bits, rng);
        if cand.is_probable_prime(8) {
            return cand;
        }
    }
}

/// Generates a random safe prime `p = 2q + 1` (with `q` also prime) of
/// exactly `bits` bits.
///
/// Used by the RSA accumulator setup, which requires safe-prime factors so
/// that the group of quadratic residues has large prime order.
///
/// # Panics
///
/// Panics if `bits < 4`.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> BigUint {
    assert!(bits >= 4, "safe primes need at least 4 bits");
    loop {
        let q = random_odd_bits(bits - 1, rng);
        // Cheap joint pre-filter: p = 2q+1 must avoid all small factors too.
        let p = &(&q << 1) + &BigUint::one();
        if p.bit_len() != bits as u64 {
            continue;
        }
        let mut ok = true;
        for &sp in SMALL_PRIMES {
            if (q.div_rem_limb(sp).1 == 0 || p.div_rem_limb(sp).1 == 0)
                && q.to_u64() != Some(sp)
                && p.to_u64() != Some(sp)
            {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if q.is_probable_prime(4) && p.is_probable_prime(8) {
            return p;
        }
    }
}

/// Returns the smallest probable prime `>= start`.
pub fn next_prime(start: &BigUint) -> BigUint {
    let mut cand = start.clone();
    if cand < BigUint::two() {
        return BigUint::two();
    }
    if cand.is_even() {
        cand = &cand + &BigUint::one();
        if cand == BigUint::two() {
            return cand;
        }
    }
    loop {
        if cand.is_probable_prime(8) {
            return cand;
        }
        cand = &cand + &BigUint::two();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::HmacDrbg;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn small_primes_recognized() {
        for &p in &[2u64, 3, 5, 7, 997, 104729] {
            assert!(big(p as u128).is_probable_prime(2), "{p} should be prime");
        }
    }

    #[test]
    fn small_composites_rejected() {
        for &c in &[0u64, 1, 4, 9, 997 * 991, 104729 * 2] {
            assert!(!big(c as u128).is_probable_prime(2), "{c} is composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat pseudoprimes that fool base-only tests.
        for &c in &[561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(!big(c as u128).is_probable_prime(2), "{c} is Carmichael");
        }
    }

    #[test]
    fn known_large_primes() {
        // 2^127 - 1 and 2^89 - 1 are Mersenne primes.
        let m127 = &(&BigUint::one() << 127) - &BigUint::one();
        let m89 = &(&BigUint::one() << 89) - &BigUint::one();
        assert!(m127.is_probable_prime(4));
        assert!(m89.is_probable_prime(4));
        // 2^128 + 1 is composite (factor 59649589127497217).
        let f7ish = &(&BigUint::one() << 128) + &BigUint::one();
        assert!(!f7ish.is_probable_prime(4));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut rng = HmacDrbg::from_u64(7);
        for bits in [16u32, 48, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits as u64);
            assert!(p.is_probable_prime(8));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = HmacDrbg::from_u64(11);
        let p = gen_safe_prime(64, &mut rng);
        assert!(p.is_probable_prime(8));
        let q = &(&p - &BigUint::one()) >> 1;
        assert!(q.is_probable_prime(8));
        assert_eq!(p.bit_len(), 64);
    }

    #[test]
    fn next_prime_walks_forward() {
        assert_eq!(next_prime(&big(0)), big(2));
        assert_eq!(next_prime(&big(14)), big(17));
        assert_eq!(next_prime(&big(17)), big(17));
        assert_eq!(next_prime(&big(90)), big(97));
    }

    #[test]
    fn deterministic_outcome() {
        // The extra rounds are derived from the candidate, so repeated calls
        // agree — required by H_prime recomputation on the verifier.
        let n: BigUint = "340282366920938463463374607431768211507".parse().unwrap();
        let first = n.is_probable_prime(16);
        for _ in 0..3 {
            assert_eq!(n.is_probable_prime(16), first);
        }
    }
}
