//! Byte-string and hex conversions.

use crate::uint::{BigUint, ParseBigUintError, ParseErrorKind};
use crate::Limb;

impl BigUint {
    /// Constructs a value from big-endian bytes.
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// assert_eq!(BigUint::from_bytes_be(&[0x01, 0x00]), BigUint::from(256u64));
    /// ```
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb: Limb = 0;
            for &b in chunk {
                limb = (limb << 8) | b as Limb;
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Constructs a value from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut limb: Limb = 0;
            for (i, &b) in chunk.iter().enumerate() {
                limb |= (b as Limb) << (8 * i);
            }
            limbs.push(limb);
        }
        BigUint::from_limbs(limbs)
    }

    /// Minimal big-endian byte representation (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.drain(..skip);
        out
    }

    /// Big-endian bytes left-padded with zeros to exactly `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes but only {len} were requested",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a (case-insensitive) hexadecimal string without `0x` prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] on empty input or non-hex characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        if s.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(16).ok_or(ParseBigUintError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            acc = &(&acc << 4) | &BigUint::from(d as u64);
        }
        Ok(acc)
    }

    /// Lowercase hex string without prefix (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        format!("{self:x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    #[test]
    fn bytes_be_roundtrip_multi_limb() {
        let v = BigUint::from_hex("0123456789abcdef0123456789abcdef01").unwrap();
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
    }

    #[test]
    fn leading_zero_bytes_ignored() {
        assert_eq!(
            BigUint::from_bytes_be(&[0, 0, 1, 2]),
            BigUint::from(0x0102u64)
        );
    }

    #[test]
    fn zero_serializes_empty() {
        assert!(BigUint::zero().to_bytes_be().is_empty());
        assert_eq!(BigUint::from_bytes_be(&[]), BigUint::zero());
    }

    #[test]
    fn padded_output() {
        let v = BigUint::from(0xABCDu64);
        assert_eq!(v.to_bytes_be_padded(4), vec![0, 0, 0xAB, 0xCD]);
    }

    #[test]
    #[should_panic(expected = "bytes")]
    fn padded_too_small_panics() {
        BigUint::from(0x10000u64).to_bytes_be_padded(2);
    }

    #[test]
    fn hex_roundtrip() {
        let v = BigUint::from_hex("DeadBeefCafeBabe1234").unwrap();
        assert_eq!(BigUint::from_hex(&v.to_hex()).unwrap(), v);
    }

    #[test]
    fn be_le_agree() {
        prop_check!(0xC11, 64, |g| {
            let bytes = g.bytes(0, 39);
            let be = BigUint::from_bytes_be(&bytes);
            let mut rev = bytes.clone();
            rev.reverse();
            let le = BigUint::from_bytes_le(&rev);
            prop_assert_eq!(be, le);
            Ok(())
        });
    }

    #[test]
    fn bytes_roundtrip() {
        prop_check!(0xC12, 64, |g| {
            let b = BigUint::from(g.u128());
            prop_assert_eq!(BigUint::from_bytes_be(&b.to_bytes_be()), b);
            Ok(())
        });
    }
}
