//! Addition, subtraction and multiplication (schoolbook + Karatsuba).

// Carry-propagation loops walk parallel limb arrays by index on purpose;
// iterator zips obscure the carry dataflow here.
#![allow(clippy::needless_range_loop)]

use crate::uint::BigUint;
use crate::{DoubleLimb, Limb};
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Limb count above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

pub(crate) fn add_limbs(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: DoubleLimb = 0;
    for i in 0..long.len() {
        let s = long[i] as DoubleLimb + *short.get(i).unwrap_or(&0) as DoubleLimb + carry;
        out.push(s as Limb);
        carry = s >> 64;
    }
    if carry != 0 {
        out.push(carry as Limb);
    }
    out
}

/// Computes `a - b`, panicking on underflow (callers check order first).
pub(crate) fn sub_limbs(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    debug_assert!(a.len() >= b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: DoubleLimb = 0;
    for i in 0..a.len() {
        let rhs = *b.get(i).unwrap_or(&0) as DoubleLimb + borrow;
        let lhs = a[i] as DoubleLimb;
        if lhs >= rhs {
            out.push((lhs - rhs) as Limb);
            borrow = 0;
        } else {
            out.push((lhs + (1u128 << 64) - rhs) as Limb);
            borrow = 1;
        }
    }
    assert_eq!(borrow, 0, "subtraction underflow");
    out
}

fn mul_schoolbook(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0 as Limb; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: DoubleLimb = 0;
        for (j, &bj) in b.iter().enumerate() {
            let s = out[i + j] as DoubleLimb + ai as DoubleLimb * bj as DoubleLimb + carry;
            out[i + j] = s as Limb;
            carry = s >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let s = out[k] as DoubleLimb + carry;
            out[k] = s as Limb;
            carry = s >> 64;
            k += 1;
        }
    }
    out
}

fn mul_karatsuba(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.len() < KARATSUBA_THRESHOLD || b.len() < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(half.min(a.len()));
    let (b0, b1) = b.split_at(half.min(b.len()));

    // z0 = a0*b0, z2 = a1*b1, z1 = (a0+a1)(b0+b1) - z0 - z2
    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    let a01 = add_limbs(a0, a1);
    let b01 = add_limbs(b0, b1);
    let mut z1 = mul_karatsuba(&a01, &b01);
    z1 = sub_trim(z1, &z0);
    z1 = sub_trim(z1, &z2);

    let mut out = vec![0 as Limb; a.len() + b.len()];
    add_into(&mut out, &z0, 0);
    add_into(&mut out, &z1, half);
    add_into(&mut out, &z2, 2 * half);
    out
}

/// `acc -= x` treating both as little-endian with `acc >= x`; trims nothing.
fn sub_trim(mut acc: Vec<Limb>, x: &[Limb]) -> Vec<Limb> {
    let mut borrow: DoubleLimb = 0;
    for i in 0..acc.len() {
        let rhs = *x.get(i).unwrap_or(&0) as DoubleLimb + borrow;
        let lhs = acc[i] as DoubleLimb;
        if lhs >= rhs {
            acc[i] = (lhs - rhs) as Limb;
            borrow = 0;
        } else {
            acc[i] = (lhs + (1u128 << 64) - rhs) as Limb;
            borrow = 1;
        }
    }
    debug_assert_eq!(borrow, 0);
    acc
}

/// `out[offset..] += x`, carrying within `out` (must not overflow `out`).
fn add_into(out: &mut [Limb], x: &[Limb], offset: usize) {
    let mut carry: DoubleLimb = 0;
    let mut i = 0;
    while i < x.len() || carry != 0 {
        let idx = offset + i;
        if idx >= out.len() {
            debug_assert_eq!(carry, 0);
            debug_assert!(x[i..].iter().all(|&l| l == 0));
            break;
        }
        let s = out[idx] as DoubleLimb + *x.get(i).unwrap_or(&0) as DoubleLimb + carry;
        out[idx] = s as Limb;
        carry = s >> 64;
        i += 1;
    }
}

pub(crate) fn mul_limbs(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.len() >= KARATSUBA_THRESHOLD && b.len() >= KARATSUBA_THRESHOLD {
        mul_karatsuba(a, b)
    } else {
        mul_schoolbook(a, b)
    }
}

impl BigUint {
    /// Checked subtraction: `self - rhs`, or `None` on underflow.
    ///
    /// ```
    /// use slicer_bignum::BigUint;
    /// let a = BigUint::from(5u64);
    /// let b = BigUint::from(7u64);
    /// assert!(a.checked_sub(&b).is_none());
    /// assert_eq!(b.checked_sub(&a), Some(BigUint::from(2u64)));
    /// ```
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            None
        } else {
            Some(BigUint::from_limbs(sub_limbs(&self.limbs, &rhs.limbs)))
        }
    }

    /// `self * self`.
    pub fn square(&self) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &self.limbs))
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(add_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`BigUint::checked_sub`] to handle
    /// underflow gracefully.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &rhs.limbs))
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Mul<u64> for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: u64) -> BigUint {
        BigUint::from_limbs(mul_limbs(&self.limbs, &[rhs]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_testkit::{prop_assert_eq, prop_check};

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = big(u64::MAX as u128);
        let b = big(1);
        assert_eq!(&a + &b, big(u64::MAX as u128 + 1));
    }

    #[test]
    fn sub_borrows_across_limbs() {
        let a = big(1u128 << 64);
        let b = big(1);
        assert_eq!(&a - &b, big(u64::MAX as u128));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &big(1) - &big(2);
    }

    #[test]
    fn mul_zero_and_one() {
        let a = big(12345);
        assert_eq!(&a * &BigUint::zero(), BigUint::zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands large enough to trip the Karatsuba path.
        let a_limbs: Vec<u64> = (0..80u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
            .collect();
        let b_limbs: Vec<u64> = (0..77u64)
            .map(|i| i.wrapping_mul(0xC2B2AE3D27D4EB4F) ^ 0xFF)
            .collect();
        let k = mul_karatsuba(&a_limbs, &b_limbs);
        let s = mul_schoolbook(&a_limbs, &b_limbs);
        assert_eq!(BigUint::from_limbs(k), BigUint::from_limbs(s));
    }

    #[test]
    fn add_matches_u128() {
        prop_check!(0xA11, 64, |g| {
            let (a, b) = (g.u64(), g.u64());
            let r = &big(a as u128) + &big(b as u128);
            prop_assert_eq!(r.to_u128().unwrap(), a as u128 + b as u128);
            Ok(())
        });
    }

    #[test]
    fn mul_matches_u128() {
        prop_check!(0xA12, 64, |g| {
            let (a, b) = (g.u64(), g.u64());
            let r = &big(a as u128) * &big(b as u128);
            prop_assert_eq!(r.to_u128().unwrap(), a as u128 * b as u128);
            Ok(())
        });
    }

    #[test]
    fn add_sub_roundtrip() {
        prop_check!(0xA13, 64, |g| {
            let (a, b) = (g.u128(), g.u128());
            let s = &big(a) + &big(b);
            prop_assert_eq!(&s - &big(b), big(a));
            prop_assert_eq!(&s - &big(a), big(b));
            Ok(())
        });
    }

    #[test]
    fn mul_commutes() {
        prop_check!(0xA14, 64, |g| {
            let (a, b) = (g.u128(), g.u128());
            prop_assert_eq!(&big(a) * &big(b), &big(b) * &big(a));
            Ok(())
        });
    }

    #[test]
    fn distributive() {
        prop_check!(0xA15, 64, |g| {
            let (a, b, c) = (g.u64(), g.u64(), g.u64());
            let lhs = &big(a as u128) * &(&big(b as u128) + &big(c as u128));
            let rhs = &(&big(a as u128) * &big(b as u128)) + &(&big(a as u128) * &big(c as u128));
            prop_assert_eq!(lhs, rhs);
            Ok(())
        });
    }
}
