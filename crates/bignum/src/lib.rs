//! # slicer-bignum
//!
//! Arbitrary-precision unsigned integer arithmetic for the Slicer
//! reproduction.
//!
//! This crate is the numeric substrate for every public-key style primitive
//! in the workspace: the RSA accumulator, the RSA trapdoor permutation and
//! the multiset hash field all operate on multi-thousand-bit integers. It is
//! implemented from scratch (no external bignum crates) and provides:
//!
//! * [`BigUint`] — a normalized little-endian limb vector with the full set
//!   of arithmetic, bit and comparison operators.
//! * Knuth Algorithm D division ([`BigUint::div_rem`]).
//! * Montgomery-form modular exponentiation ([`MontgomeryCtx`],
//!   [`BigUint::modpow`]) with a 4-bit window, used on every accumulator
//!   witness computation.
//! * Modular inverses via the extended Euclidean algorithm
//!   ([`BigUint::modinv`]).
//! * Miller–Rabin primality testing and random (safe-)prime generation
//!   ([`BigUint::is_probable_prime`], [`gen_prime`], [`gen_safe_prime`]).
//!
//! # Examples
//!
//! ```
//! use slicer_bignum::BigUint;
//!
//! let a = BigUint::from(41u64);
//! let b = BigUint::from(59u64);
//! let n = &a * &b;
//! assert_eq!(n, BigUint::from(2419u64));
//!
//! // modular exponentiation: 2^10 mod 1000 = 24
//! let r = BigUint::from(2u64).modpow(&BigUint::from(10u64), &BigUint::from(1000u64));
//! assert_eq!(r, BigUint::from(24u64));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arith;
mod bits;
mod codec_impl;
mod convert;
mod div;
mod fmt;
mod gcd;
mod modular;
mod montgomery;
mod prime;
mod random;
mod uint;

pub use gcd::ExtendedGcd;
pub use montgomery::MontgomeryCtx;
pub use prime::{gen_prime, gen_safe_prime, next_prime, SMALL_PRIMES};
pub use random::{random_below, random_bits, random_odd_bits};
pub use uint::{BigUint, ParseBigUintError};

/// Machine word used as a limb.
pub(crate) type Limb = u64;
/// Double-width word used for carries and products.
pub(crate) type DoubleLimb = u128;
/// Bits per limb.
pub(crate) const LIMB_BITS: u32 = 64;
