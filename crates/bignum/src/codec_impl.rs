//! Wire-format support: `BigUint` encodes as its canonical (no leading
//! zero) big-endian byte string, length-prefixed.

use crate::uint::BigUint;
use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};

impl Encode for BigUint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bytes_be().encode(out);
    }
}

impl Decode for BigUint {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = Vec::<u8>::decode(reader)?;
        Ok(BigUint::from_bytes_be(&bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::codec::{from_bytes, to_bytes};

    #[test]
    fn roundtrips_multi_limb_values() {
        for hex in ["0", "1", "deadbeef", "0123456789abcdef0123456789abcdef01"] {
            let v = BigUint::from_hex(hex).unwrap();
            let bytes = to_bytes(&v).unwrap();
            assert_eq!(from_bytes::<BigUint>(&bytes).unwrap(), v, "{hex}");
        }
    }

    #[test]
    fn encoding_is_canonical_big_endian() {
        let bytes = to_bytes(&BigUint::from(0x0102u64)).unwrap();
        // u64 length prefix (2) then the two significant bytes.
        assert_eq!(bytes, vec![2, 0, 0, 0, 0, 0, 0, 0, 0x01, 0x02]);
    }

    #[test]
    fn works_as_struct_field() {
        #[derive(Debug, PartialEq)]
        struct Wrap {
            v: BigUint,
            tag: u32,
        }
        slicer_crypto::impl_codec!(Wrap { v, tag });
        let w = Wrap {
            v: BigUint::from(7u64),
            tag: 9,
        };
        let bytes = to_bytes(&w).unwrap();
        assert_eq!(from_bytes::<Wrap>(&bytes).unwrap(), w);
    }
}
