//! The accumulator value and incremental accumulation.

use crate::params::RsaParams;
use slicer_bignum::BigUint;

/// An RSA accumulator value `Ac = g^{∏ x} mod n` over a set of primes.
///
/// The accumulator is *incremental*: adding an element is one modular
/// exponentiation with a short (prime-sized) exponent, which is how the
/// Insert protocol updates the on-chain digest cheaply.
///
/// # Examples
///
/// ```
/// use slicer_accumulator::{hash_to_prime, Accumulator, RsaParams};
/// # fn main() -> Result<(), slicer_accumulator::AccumulatorError> {
/// let params = RsaParams::fixed_512();
/// let mut acc = Accumulator::new(&params);
/// acc.add(&hash_to_prime(b"state-1", 128)?);
/// acc.add(&hash_to_prime(b"state-2", 128)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Accumulator<'a> {
    params: &'a RsaParams,
    value: BigUint,
}

impl<'a> Accumulator<'a> {
    /// The empty accumulator: `Ac = g`.
    pub fn new(params: &'a RsaParams) -> Self {
        Accumulator {
            params,
            value: params.generator().clone(),
        }
    }

    /// Accumulates an entire prime set (`Accumulation(X)`).
    pub fn over(params: &'a RsaParams, primes: &[BigUint]) -> Self {
        let mut acc = Self::new(params);
        acc.add_batch(primes);
        acc
    }

    /// Resumes from a previously computed accumulator value.
    pub fn from_value(params: &'a RsaParams, value: BigUint) -> Self {
        Accumulator { params, value }
    }

    /// Adds one prime: `Ac ← Ac^x mod n`.
    pub fn add(&mut self, prime: &BigUint) {
        self.value = self.params.powmod(&self.value, prime);
    }

    /// Adds a batch of primes.
    pub fn add_all<'p, I: IntoIterator<Item = &'p BigUint>>(&mut self, primes: I) {
        for p in primes {
            self.add(p);
        }
    }

    /// Adds a slice of primes in one chunked-product exponentiation:
    /// `Ac ← Ac^{∏ x} mod n`, identical in value to folding them one by
    /// one but sharing window tables across each exponent chunk.
    pub fn add_batch(&mut self, primes: &[BigUint]) {
        if primes.is_empty() {
            return;
        }
        self.value = self.params.powmod_product(&self.value, primes);
    }

    /// The current accumulator value `Ac`.
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// Consumes the accumulator, returning `Ac`.
    pub fn into_value(self) -> BigUint {
        self.value
    }

    /// `VerifyMem`: checks `witness^x ≡ Ac (mod n)`.
    pub fn verify(&self, prime: &BigUint, witness: &BigUint) -> bool {
        self.params.powmod(witness, prime) == self.value
    }

    /// The public parameters in use.
    pub fn params(&self) -> &'a RsaParams {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash_to_prime;

    fn primes(n: u32) -> Vec<BigUint> {
        (0..n)
            .map(|i| hash_to_prime(&i.to_be_bytes(), 64).expect("width ok"))
            .collect()
    }

    #[test]
    fn order_independent() {
        let params = RsaParams::fixed_512();
        let ps = primes(5);
        let mut rev = ps.clone();
        rev.reverse();
        assert_eq!(
            Accumulator::over(&params, &ps).value(),
            Accumulator::over(&params, &rev).value()
        );
    }

    #[test]
    fn incremental_equals_batch() {
        let params = RsaParams::fixed_512();
        let ps = primes(6);
        let batch = Accumulator::over(&params, &ps);
        let mut inc = Accumulator::over(&params, &ps[..3]);
        inc.add_all(&ps[3..]);
        assert_eq!(batch.value(), inc.value());
    }

    #[test]
    fn empty_accumulator_is_generator() {
        let params = RsaParams::fixed_512();
        assert_eq!(Accumulator::new(&params).value(), params.generator());
    }

    #[test]
    fn from_value_roundtrip() {
        let params = RsaParams::fixed_512();
        let acc = Accumulator::over(&params, &primes(3));
        let resumed = Accumulator::from_value(&params, acc.value().clone());
        assert_eq!(resumed, acc);
    }
}
