//! A membership-witness cache with incremental updates.
//!
//! The paper's cloud regenerates each witness per query (`O(|X|)`
//! exponentiations — the growth visible in Fig. 5b/5d). A production cloud
//! can instead maintain witnesses for *every* accumulated prime:
//!
//! * [`WitnessCache::build`] computes all of them in `O(|X| log |X|)`
//!   exponentiations via the root-factor tree, and
//! * [`WitnessCache::update`] folds a batch of newly accumulated primes
//!   into the cache without rebuilding: existing witnesses are raised to
//!   the batch product, new primes get witnesses rooted at the previous
//!   accumulator value.
//!
//! With the cache, VO generation becomes a lookup — the trade-off the
//! `ads_ablation` benchmark quantifies.

use crate::params::RsaParams;
use crate::witness::root_factor;
use slicer_bignum::BigUint;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error raised when a cache update finds the cache inconsistent with the
/// canonical prime list — a truncated or corrupted (e.g. badly restored)
/// cache. The caller degrades to a rebuild instead of panicking: a serving
/// daemon must survive a poisoned cache read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// The cache claims to cover more primes than the canonical list holds
    /// (`primes[..covered]` would be out of bounds).
    CoverageBeyondList {
        /// Primes the cache claims to have incorporated.
        covered: usize,
        /// Length of the canonical list presented for the update.
        list_len: usize,
    },
    /// A prime the cache claims to cover has no cached witness.
    MissingWitness,
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::CoverageBeyondList { covered, list_len } => write!(
                f,
                "witness cache covers {covered} primes but the list holds only {list_len}"
            ),
            CacheError::MissingWitness => {
                write!(f, "witness cache is missing a witness it claims to cover")
            }
        }
    }
}

impl Error for CacheError {}

/// Cached membership witnesses for a full prime list.
///
/// Keyed by a `BTreeMap` so iteration order (and therefore the update
/// fold) is deterministic — the repo-wide transcript invariant bars
/// `HashMap` from protocol state.
#[derive(Debug, Clone, Default)]
pub struct WitnessCache {
    witnesses: BTreeMap<BigUint, BigUint>,
    /// How many primes of the canonical list have been incorporated.
    covered: usize,
}

impl WitnessCache {
    /// Builds the cache for an entire prime list.
    pub fn build(params: &RsaParams, primes: &[BigUint]) -> Self {
        let all = root_factor(params, params.generator(), primes);
        WitnessCache {
            witnesses: primes.iter().cloned().zip(all).collect(),
            covered: primes.len(),
        }
    }

    /// Number of cached witnesses.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// Number of primes of the canonical list incorporated so far.
    pub fn covered(&self) -> usize {
        self.covered
    }

    /// Looks up the witness for a prime.
    pub fn get(&self, prime: &BigUint) -> Option<&BigUint> {
        let hit = self.witnesses.get(prime);
        if hit.is_some() {
            slicer_telemetry::global::count("accumulator.cache.hit", 1);
        } else {
            slicer_telemetry::global::count("accumulator.cache.miss", 1);
        }
        hit
    }

    /// Incorporates the primes appended to `primes` since the last
    /// build/update (`primes[..self.covered()]` must be unchanged — the
    /// prime list is append-only in Slicer).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError`] when the cache is inconsistent with the
    /// canonical list (covers more primes than exist, or lost a witness it
    /// claims to hold) — e.g. after a truncated restore. The cache is left
    /// unmodified; callers recover by rebuilding from empty.
    pub fn update(&mut self, params: &RsaParams, primes: &[BigUint]) -> Result<(), CacheError> {
        let Some(new) = primes.get(self.covered..) else {
            return Err(CacheError::CoverageBeyondList {
                covered: self.covered,
                list_len: primes.len(),
            });
        };
        if new.is_empty() {
            return Ok(());
        }
        // Previous accumulator value: any cached witness raised to its own
        // prime, or the generator for an empty cache.
        let old_ac = match primes.get(..self.covered).and_then(<[BigUint]>::first) {
            Some(p) => {
                let w = self.witnesses.get(p).ok_or(CacheError::MissingWitness)?;
                params.powmod(w, p)
            }
            None => params.generator().clone(),
        };
        // Existing witnesses absorb the whole batch product.
        for w in self.witnesses.values_mut() {
            *w = params.powmod_product(w, new);
        }
        // New primes: witnesses rooted at the pre-batch accumulator.
        let fresh = root_factor(params, &old_ac, new);
        for (p, w) in new.iter().zip(fresh) {
            self.witnesses.insert(p.clone(), w);
        }
        self.covered = primes.len();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_to_prime, Accumulator};

    fn primes(range: std::ops::Range<u32>) -> Vec<BigUint> {
        range
            .map(|i| hash_to_prime(&i.to_be_bytes(), 64).expect("width ok"))
            .collect()
    }

    #[test]
    fn built_cache_verifies_everything() {
        let params = RsaParams::fixed_512();
        let ps = primes(0..10);
        let acc = Accumulator::over(&params, &ps);
        let cache = WitnessCache::build(&params, &ps);
        assert_eq!(cache.len(), 10);
        for p in &ps {
            assert!(acc.verify(p, cache.get(p).expect("cached")));
        }
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let params = RsaParams::fixed_512();
        let mut ps = primes(0..6);
        let mut cache = WitnessCache::build(&params, &ps);
        ps.extend(primes(6..11));
        cache.update(&params, &ps).expect("consistent cache");

        let rebuilt = WitnessCache::build(&params, &ps);
        let acc = Accumulator::over(&params, &ps);
        for p in &ps {
            assert_eq!(cache.get(p), rebuilt.get(p), "prime {p:?}");
            assert!(acc.verify(p, cache.get(p).expect("cached")));
        }
        assert_eq!(cache.covered(), 11);
    }

    #[test]
    fn update_from_empty_cache() {
        let params = RsaParams::fixed_512();
        let ps = primes(0..5);
        let mut cache = WitnessCache::default();
        cache.update(&params, &ps).expect("consistent cache");
        let acc = Accumulator::over(&params, &ps);
        for p in &ps {
            assert!(acc.verify(p, cache.get(p).expect("cached")));
        }
    }

    #[test]
    fn truncated_list_reports_corruption() {
        let params = RsaParams::fixed_512();
        let ps = primes(0..8);
        let mut cache = WitnessCache::build(&params, &ps);
        // A restore that lost the tail of the prime list: the cache now
        // claims to cover more primes than exist.
        let err = cache.update(&params, &ps[..3]).expect_err("inconsistent");
        assert_eq!(
            err,
            CacheError::CoverageBeyondList {
                covered: 8,
                list_len: 3
            }
        );
        // The cache is untouched and still serves its original witnesses.
        assert_eq!(cache.covered(), 8);
        assert_eq!(cache.len(), 8);
    }

    #[test]
    fn noop_update_is_cheap_and_correct() {
        let params = RsaParams::fixed_512();
        let ps = primes(0..4);
        let mut cache = WitnessCache::build(&params, &ps);
        let before = cache.clone();
        cache.update(&params, &ps).expect("consistent cache");
        for p in &ps {
            assert_eq!(cache.get(p), before.get(p));
        }
    }
}
