//! `H_prime`: deterministic hash-to-prime (Barić–Pfitzmann prime
//! representatives).

use slicer_bignum::BigUint;
use slicer_crypto::sha256;

/// Default prime-representative size. 128-bit primes keep accumulator
/// exponents small (the dominant cost of `Accumulation` and `MemWit`) while
/// retaining 64-bit collision resistance — adequate for a reproduction and
/// mirroring the paper's compact prime list (Fig. 4b).
pub const DEFAULT_PRIME_BITS: u32 = 128;

/// Maps arbitrary bytes to a probable prime of exactly `bits` bits.
///
/// Deterministic hash-and-increment: the candidate starts at
/// `SHA-256(data)` truncated/expanded to `bits` bits with the top and low
/// bits forced to one, then walks upward by 2 until a Miller–Rabin probable
/// prime is found. Determinism is essential — the blockchain verifier
/// recomputes `x = H_prime(t_j‖j‖G₁‖G₂‖h)` from public values in
/// Algorithm 5 and must land on the same prime as the data owner did in
/// Algorithm 1.
///
/// # Panics
///
/// Panics if `bits < 16` or `bits > 512`.
pub fn hash_to_prime(data: &[u8], bits: u32) -> BigUint {
    hash_to_prime_counted(data, bits).0
}

/// [`hash_to_prime`] that also reports how many candidates were examined —
/// the blockchain gas meter charges per candidate (trial division) plus the
/// Miller–Rabin rounds on survivors.
///
/// # Panics
///
/// Panics if `bits < 16` or `bits > 512`.
pub fn hash_to_prime_counted(data: &[u8], bits: u32) -> (BigUint, u64) {
    assert!((16..=512).contains(&bits), "unsupported prime size {bits}");
    // Expand the digest to cover up to 512 bits of candidate material.
    let d1 = sha256(data);
    let mut wide = Vec::with_capacity(64);
    wide.extend_from_slice(&d1);
    let mut tagged = Vec::with_capacity(33);
    tagged.push(0x01);
    tagged.extend_from_slice(&d1);
    wide.extend_from_slice(&sha256(&tagged));

    let nbytes = bits.div_ceil(8) as usize;
    let mut cand = BigUint::from_bytes_be(&wide[..nbytes]);
    // Trim to exactly `bits` bits, force the top bit (exact width) and
    // low bit (odd).
    let excess = (nbytes as u32 * 8).saturating_sub(bits);
    cand = &cand >> excess;
    cand.set_bit(bits as u64 - 1, true);
    cand.set_bit(0, true);

    let two = BigUint::two();
    let mut tried: u64 = 1;
    loop {
        if cand.is_probable_prime(8) {
            return (cand, tried);
        }
        cand = &cand + &two;
        tried += 1;
        // Overflow past the requested width is astronomically unlikely
        // (needs a prime gap of ~2^(bits-1)); wrap defensively anyway.
        if cand.bit_len() > bits as u64 {
            cand = BigUint::one() << (bits - 1);
            cand.set_bit(0, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_prime_and_exact_width() {
        for i in 0..20u32 {
            let p = hash_to_prime(&i.to_be_bytes(), 128);
            assert!(p.is_probable_prime(8));
            assert_eq!(p.bit_len(), 128);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_to_prime(b"x", 128), hash_to_prime(b"x", 128));
    }

    #[test]
    fn distinct_inputs_distinct_primes() {
        assert_ne!(hash_to_prime(b"a", 128), hash_to_prime(b"b", 128));
    }

    #[test]
    fn width_parameter_respected() {
        for bits in [64u32, 96, 128, 256] {
            assert_eq!(hash_to_prime(b"w", bits).bit_len(), bits as u64);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported prime size")]
    fn tiny_width_rejected() {
        hash_to_prime(b"x", 8);
    }
}
