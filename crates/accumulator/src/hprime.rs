//! `H_prime`: deterministic hash-to-prime (Barić–Pfitzmann prime
//! representatives).

use crate::error::AccumulatorError;
use slicer_bignum::{BigUint, SMALL_PRIMES};
use slicer_crypto::sha256;
use std::sync::OnceLock;

/// Candidates sieved per window: one pass of remainders against
/// [`SMALL_PRIMES`] rules out ~84% of a window this size, and the average
/// walk to a 128-bit prime (≈ 44 candidates) rarely needs a second window.
/// Sized to the walk rather than larger: the remainder pass is per-window
/// work, and the few walks that overflow just sieve another window — the
/// candidate sequence (and thus the gas-metered `tried` count) is
/// unchanged by the window size.
const SIEVE_WINDOW: usize = 128;

/// A sieve prime with precomputed Lemire-style reciprocal constants, so
/// the per-window remainder pass costs a few multiplies per prime instead
/// of a 128-bit hardware division.
struct SievePrime {
    p: u64,
    /// `floor(2^64 / p) + 1`, the 32-bit-range division magic.
    magic: u64,
    /// `2^32 mod p`.
    c32: u32,
    /// `2^64 mod p`.
    c64: u32,
    /// `(p + 1) / 2 = 2^-1 mod p`, for solving the sieve start offset.
    inv2: u32,
}

/// `x mod p` for `x < 2^32`, two multiplies (Lemire's fastmod).
#[inline]
fn m32(x: u32, sp: &SievePrime) -> u32 {
    let low = sp.magic.wrapping_mul(x as u64);
    ((low as u128 * sp.p as u128) >> 64) as u32
}

/// `x mod p` for a full 64-bit limb: reduce both halves, fold the high
/// half through `2^32 mod p`. All intermediate sums stay below `2^32`
/// because `p < 2^10`.
#[inline]
fn m64(x: u64, sp: &SievePrime) -> u32 {
    let hi = m32((x >> 32) as u32, sp);
    let lo = m32(x as u32, sp);
    m32(hi * sp.c32 + lo, sp)
}

/// `v mod p` over any limb count, folding through `2^64 mod p`.
#[inline]
fn mod_sieve(v: &BigUint, sp: &SievePrime) -> u64 {
    let mut r: u32 = 0;
    for &limb in v.limbs().iter().rev() {
        r = m32(r * sp.c64 + m64(limb, sp), sp);
    }
    r as u64
}

fn sieve_table() -> &'static [SievePrime] {
    static TABLE: OnceLock<Vec<SievePrime>> = OnceLock::new();
    TABLE.get_or_init(|| {
        SMALL_PRIMES
            .iter()
            .map(|&p| SievePrime {
                p,
                magic: u64::MAX / p + 1,
                c32: (u32::MAX % p as u32) + 1,
                c64: ((((u32::MAX % p as u32) + 1) as u64).pow(2) % p) as u32,
                inv2: ((p + 1) / 2) as u32,
            })
            .collect()
    })
}

/// Default prime-representative size. 128-bit primes keep accumulator
/// exponents small (the dominant cost of `Accumulation` and `MemWit`) while
/// retaining 64-bit collision resistance — adequate for a reproduction and
/// mirroring the paper's compact prime list (Fig. 4b).
pub const DEFAULT_PRIME_BITS: u32 = 128;

/// Maps arbitrary bytes to a probable prime of exactly `bits` bits.
///
/// Deterministic hash-and-increment: the candidate starts at
/// `SHA-256(data)` truncated/expanded to `bits` bits with the top and low
/// bits forced to one, then walks upward by 2 until a Miller–Rabin probable
/// prime is found. Determinism is essential — the blockchain verifier
/// recomputes `x = H_prime(t_j‖j‖G₁‖G₂‖h)` from public values in
/// Algorithm 5 and must land on the same prime as the data owner did in
/// Algorithm 1.
///
/// # Errors
///
/// Returns [`AccumulatorError::UnsupportedPrimeBits`] if `bits < 16` or
/// `bits > 512`.
pub fn hash_to_prime(data: &[u8], bits: u32) -> Result<BigUint, AccumulatorError> {
    Ok(hash_to_prime_counted(data, bits)?.0)
}

/// [`hash_to_prime`] that also reports how many candidates were examined —
/// the blockchain gas meter charges per candidate (trial division) plus the
/// Miller–Rabin rounds on survivors.
///
/// # Errors
///
/// Returns [`AccumulatorError::UnsupportedPrimeBits`] if `bits < 16` or
/// `bits > 512`.
pub fn hash_to_prime_counted(data: &[u8], bits: u32) -> Result<(BigUint, u64), AccumulatorError> {
    if !(16..=512).contains(&bits) {
        return Err(AccumulatorError::UnsupportedPrimeBits(bits));
    }
    // Expand the digest to cover up to 512 bits of candidate material.
    let d1 = sha256(data);
    let mut wide = Vec::with_capacity(64);
    wide.extend_from_slice(&d1);
    let mut tagged = Vec::with_capacity(33);
    tagged.push(0x01);
    tagged.extend_from_slice(&d1);
    wide.extend_from_slice(&sha256(&tagged));

    let nbytes = bits.div_ceil(8) as usize;
    wide.truncate(nbytes);
    let mut cand = BigUint::from_bytes_be(&wide);
    // Trim to exactly `bits` bits, force the top bit (exact width) and
    // low bit (odd).
    let excess = (nbytes as u32 * 8).saturating_sub(bits);
    cand = &cand >> excess;
    cand.set_bit(bits as u64 - 1, true);
    cand.set_bit(0, true);

    // Windowed incremental sieve: one remainder pass against SMALL_PRIMES
    // marks every candidate in the window that a small prime divides, so
    // the expensive probable-prime test only runs on survivors. The walk
    // visits exactly the same candidates in the same order as testing one
    // by one — `tried` (which the blockchain gas meter charges per
    // candidate) is unchanged by the sieve.
    let mut tried: u64 = 0;
    'windows: loop {
        let mut composite = [false; SIEVE_WINDOW];
        for sp in sieve_table() {
            // Smallest k >= 0 with cand + 2k ≡ 0 (mod p):
            // k = (p - cand mod p) * inv(2) mod p, inv(2) = (p + 1) / 2.
            let r = mod_sieve(&cand, sp);
            let k0 = if r == 0 { 0 } else { (sp.p - r) as u32 };
            let k = m32(k0 * sp.inv2, sp) as usize;
            for slot in composite.iter_mut().skip(k).step_by(sp.p as usize) {
                *slot = true;
            }
        }
        // Overflow past the requested width is astronomically unlikely
        // (needs a prime gap of ~2^(bits-1)); wrap defensively anyway, at
        // the same candidate the one-by-one walk would have. Checked once
        // per window so the common path never materializes skipped
        // candidates.
        let window_top = &cand + &BigUint::from(2 * (SIEVE_WINDOW as u64 - 1));
        let wraps = window_top.bit_len() > bits as u64;
        for (k, &marked) in composite.iter().enumerate() {
            tried += 1;
            if wraps {
                let c = &cand + &BigUint::from(2 * k as u64);
                if c.bit_len() > bits as u64 {
                    cand = BigUint::one() << (bits - 1);
                    cand.set_bit(0, true);
                    continue 'windows;
                }
                if !marked && c.is_prime_bpsw_presieved() {
                    return Ok((c, tried));
                }
            } else if !marked {
                let c = &cand + &BigUint::from(2 * k as u64);
                if c.is_prime_bpsw_presieved() {
                    return Ok((c, tried));
                }
            }
        }
        cand = &cand + &BigUint::from(2 * SIEVE_WINDOW as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_prime_and_exact_width() {
        for i in 0..20u32 {
            let p = hash_to_prime(&i.to_be_bytes(), 128).expect("width ok");
            assert!(p.is_probable_prime(8));
            assert_eq!(p.bit_len(), 128);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            hash_to_prime(b"x", 128).unwrap(),
            hash_to_prime(b"x", 128).unwrap()
        );
    }

    #[test]
    fn distinct_inputs_distinct_primes() {
        assert_ne!(
            hash_to_prime(b"a", 128).unwrap(),
            hash_to_prime(b"b", 128).unwrap()
        );
    }

    #[test]
    fn width_parameter_respected() {
        for bits in [64u32, 96, 128, 256] {
            assert_eq!(hash_to_prime(b"w", bits).unwrap().bit_len(), bits as u64);
        }
    }

    #[test]
    fn out_of_range_widths_rejected() {
        assert_eq!(
            hash_to_prime(b"x", 8),
            Err(AccumulatorError::UnsupportedPrimeBits(8))
        );
        assert_eq!(
            hash_to_prime(b"x", 513),
            Err(AccumulatorError::UnsupportedPrimeBits(513))
        );
    }

    /// The pre-sieve reference: test candidates one at a time with the
    /// full Miller–Rabin sweep. The sieved walk must agree on both the
    /// prime found and the candidate count — the chain's gas meter charges
    /// per candidate, so a count drift would fork consensus.
    fn naive_reference(data: &[u8], bits: u32) -> (BigUint, u64) {
        let d1 = sha256(data);
        let mut wide = Vec::with_capacity(64);
        wide.extend_from_slice(&d1);
        let mut tagged = Vec::with_capacity(33);
        tagged.push(0x01);
        tagged.extend_from_slice(&d1);
        wide.extend_from_slice(&sha256(&tagged));

        let nbytes = bits.div_ceil(8) as usize;
        let mut cand = BigUint::from_bytes_be(&wide[..nbytes]);
        let excess = (nbytes as u32 * 8).saturating_sub(bits);
        cand = &cand >> excess;
        cand.set_bit(bits as u64 - 1, true);
        cand.set_bit(0, true);

        let two = BigUint::two();
        let mut tried: u64 = 1;
        loop {
            if cand.is_probable_prime(8) {
                return (cand, tried);
            }
            cand = &cand + &two;
            tried += 1;
        }
    }

    #[test]
    fn sieved_walk_matches_naive_reference() {
        for bits in [64u32, 128] {
            for i in 0..32u32 {
                let data = [b"equiv".as_slice(), &i.to_be_bytes()].concat();
                let (prime, count) = hash_to_prime_counted(&data, bits).expect("width ok");
                let (want_prime, want_count) = naive_reference(&data, bits);
                assert_eq!(prime, want_prime, "prime drift at {bits}/{i}");
                assert_eq!(count, want_count, "gas-visible count drift at {bits}/{i}");
            }
        }
    }

    #[test]
    fn mod_sieve_agrees_with_div_rem() {
        for i in 0..50u32 {
            let v = hash_to_prime(&i.to_be_bytes(), 128).expect("width ok");
            for sp in sieve_table() {
                assert_eq!(mod_sieve(&v, sp), v.div_rem_limb(sp.p).1, "p={}", sp.p);
            }
        }
        // Exact multiples reduce to zero (the r == 0 branch of the sieve).
        for sp in sieve_table().iter().take(20) {
            let v = &BigUint::from(sp.p) * &BigUint::from(u64::MAX);
            assert_eq!(mod_sieve(&v, sp), 0);
        }
    }
}
