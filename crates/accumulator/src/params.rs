//! RSA accumulator public parameters (`Setup(1^λ)`).

use crate::error::AccumulatorError;
use slicer_bignum::{gen_safe_prime, random_below, BigUint, MontgomeryCtx};
use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use slicer_crypto::Rng;

/// Fixed 512-bit modulus: product of two 256-bit safe primes generated once
/// for the reproduction (factors discarded). 512 bits makes each witness 64
/// bytes, matching the ≤ 60-byte verification objects of the paper's Fig 6d.
const N512_HEX: &str = "9d6ada17d8468909691ea6b0e283b927dd9de8ad16464e8303851d313bf138b65e455154485e4752084843cbd944e98a75cb24a5341714de7760c8bbe0079d79";

/// Fixed 1024-bit modulus: product of two 512-bit safe primes.
const N1024_HEX: &str = "bb4e6da51c76d10262e609238711c6438bbed174037683196828e14dcb8c8e408f0907b198041442cf2607c6530ba7e576a289095585c7a1e5d92c20e4a4ba86587826b1b9e64514cc991f106d8798eb2cf25864152c675f3ff130a8c20c5ea01430349e5e713cfd5fdc16656589ddd67d1dc85f84ee50ad96a5130d53ed9dd5";

/// Public parameters of the RSA accumulator: a modulus `n = p·q` with `p`,
/// `q` safe primes, and a generator `g ∈ QR_n \ {1}`.
///
/// The Montgomery context for `n` is precomputed once and shared by every
/// accumulation, witness and verification operation.
#[derive(Debug, Clone)]
pub struct RsaParams {
    modulus: BigUint,
    generator: BigUint,
    ctx: Option<MontgomeryCtx>,
}

impl Encode for RsaParams {
    fn encode(&self, out: &mut Vec<u8>) {
        self.modulus.encode(out);
        self.generator.encode(out);
    }
}

impl Decode for RsaParams {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        let modulus = BigUint::decode(reader)?;
        let generator = BigUint::decode(reader)?;
        // Rebuild the Montgomery context eagerly so decoded params are
        // immediately usable; an even modulus means corrupt input.
        RsaParams::try_from_parts(modulus, generator)
            .map_err(|_| CodecError::msg("RsaParams modulus must be odd and > 1"))
    }
}

impl PartialEq for RsaParams {
    fn eq(&self, other: &Self) -> bool {
        self.modulus == other.modulus && self.generator == other.generator
    }
}
impl Eq for RsaParams {}

impl RsaParams {
    /// Builds parameters from a known modulus and generator.
    ///
    /// # Errors
    ///
    /// Returns [`AccumulatorError::BadModulus`] if the modulus is even or
    /// ≤ 1 (RSA moduli are odd by construction).
    pub fn try_from_parts(modulus: BigUint, generator: BigUint) -> Result<Self, AccumulatorError> {
        let ctx = MontgomeryCtx::new(&modulus).ok_or(AccumulatorError::BadModulus)?;
        Ok(RsaParams {
            modulus,
            generator,
            ctx: Some(ctx),
        })
    }

    /// Decodes a baked-in modulus with `g = 4 = 2²` (a quadratic residue
    /// for any odd modulus). Total by construction: if the constant were
    /// ever corrupted the fallback is a tiny odd modulus, a state the
    /// `fixed_params_shape` tests pin as unreachable.
    fn baked(hex: &str) -> Self {
        let modulus = BigUint::from_hex(hex).unwrap_or_else(|_| BigUint::from(15u64));
        let ctx = MontgomeryCtx::new(&modulus);
        RsaParams {
            modulus,
            generator: BigUint::from(4u64),
            ctx,
        }
    }

    /// The baked-in 512-bit parameters used across tests and benchmarks.
    ///
    /// `g = 4 = 2²` is a quadratic residue for any odd modulus.
    pub fn fixed_512() -> Self {
        Self::baked(N512_HEX)
    }

    /// The baked-in 1024-bit parameters (higher security margin; 128-byte
    /// witnesses).
    pub fn fixed_1024() -> Self {
        Self::baked(N1024_HEX)
    }

    /// Fresh trusted setup: samples two `bits/2`-bit safe primes and a
    /// random quadratic-residue generator. The factors are dropped on
    /// return, so nobody (including the caller) retains the trapdoor.
    ///
    /// # Errors
    ///
    /// Returns [`AccumulatorError::ModulusTooSmall`] if `bits < 32`.
    pub fn generate<R: Rng + ?Sized>(bits: u32, rng: &mut R) -> Result<Self, AccumulatorError> {
        if bits < 32 {
            return Err(AccumulatorError::ModulusTooSmall(bits));
        }
        let p = gen_safe_prime(bits / 2, rng);
        let q = loop {
            let q = gen_safe_prime(bits - bits / 2, rng);
            if q != p {
                break q;
            }
        };
        let n = &p * &q;
        // g = r^2 mod n for random r, retried until g ∉ {0, 1}.
        let generator = loop {
            let r = random_below(&n, rng);
            let g = r.mulmod(&r, &n);
            if !g.is_zero() && !g.is_one() {
                break g;
            }
        };
        Self::try_from_parts(n, generator)
    }

    /// The modulus `n`.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    /// The generator `g`.
    pub fn generator(&self) -> &BigUint {
        &self.generator
    }

    /// Size of a serialized group element (witnesses, accumulator values).
    pub fn element_bytes(&self) -> usize {
        self.modulus.bit_len().div_ceil(8) as usize
    }

    /// `base^exp mod n` using the shared context.
    pub fn powmod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        match &self.ctx {
            Some(ctx) => ctx.modpow(base, exp),
            // Unreachable for params built by this module (every
            // constructor validates the modulus); the plain modpow keeps
            // the operation total regardless.
            None => base.modpow(exp, &self.modulus),
        }
    }

    /// `base^(∏ exps) mod n` with chunked exponent products — one window
    /// pass per few dozen primes instead of one `powmod` each. This is the
    /// inner loop of accumulation and the root-factor witness tree.
    pub fn powmod_product(&self, base: &BigUint, exps: &[BigUint]) -> BigUint {
        match &self.ctx {
            Some(ctx) => ctx.modpow_product(base, exps),
            None => exps
                .iter()
                .fold(base.clone(), |acc, e| acc.modpow(e, &self.modulus)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_crypto::HmacDrbg;

    #[test]
    fn fixed_params_shape() {
        let p = RsaParams::fixed_512();
        assert_eq!(p.modulus().bit_len(), 512);
        assert_eq!(p.element_bytes(), 64);
        assert_eq!(p.generator(), &BigUint::from(4u64));
        assert!(p.modulus().is_odd());
    }

    #[test]
    fn fixed_1024_shape() {
        let p = RsaParams::fixed_1024();
        assert_eq!(p.modulus().bit_len(), 1024);
        assert_eq!(p.element_bytes(), 128);
    }

    #[test]
    fn generate_small_setup() {
        let mut rng = HmacDrbg::from_u64(5);
        let p = RsaParams::generate(128, &mut rng).expect("128 bits suffices");
        // Product of two 64-bit primes has 127 or 128 bits.
        assert!((127..=128).contains(&p.modulus().bit_len()));
        // Generator is a nontrivial residue.
        assert!(!p.generator().is_zero());
        assert!(!p.generator().is_one());
        assert!(p.generator() < p.modulus());
    }

    #[test]
    fn tiny_setup_and_even_modulus_are_typed_errors() {
        use crate::AccumulatorError;
        let mut rng = HmacDrbg::from_u64(5);
        assert_eq!(
            RsaParams::generate(16, &mut rng).unwrap_err(),
            AccumulatorError::ModulusTooSmall(16)
        );
        assert_eq!(
            RsaParams::try_from_parts(BigUint::from(16u64), BigUint::from(4u64)).unwrap_err(),
            AccumulatorError::BadModulus
        );
    }

    #[test]
    fn codec_roundtrip_restores_ctx() {
        let p = RsaParams::fixed_512();
        let bytes = slicer_crypto::codec::to_bytes(&p).unwrap();
        let q: RsaParams = slicer_crypto::codec::from_bytes(&bytes).unwrap();
        assert_eq!(p, q);
        // Decoded params are immediately usable (ctx rebuilt).
        let b = BigUint::from(7u64);
        let e = BigUint::from(3u64);
        assert_eq!(q.powmod(&b, &e), p.powmod(&b, &e));
    }

    #[test]
    fn powmod_agrees_with_bignum() {
        let p = RsaParams::fixed_512();
        let b = BigUint::from(123456u64);
        let e = BigUint::from(65537u64);
        assert_eq!(p.powmod(&b, &e), b.modpow(&e, p.modulus()));
    }
}
