//! A Merkle hash tree — the ADS baseline Slicer argues against.
//!
//! Section III-B: *"Compared with Merkle Hash Tree, which is another ADS
//! that can provide existence proofs, the proof in the RSA accumulator is
//! constant-size and leaks no extraneous information."* This module
//! implements the baseline so the claim is measurable:
//!
//! * Merkle proofs are `O(log n)` hashes (vs one group element),
//! * each proof reveals the leaf's position and sibling digests (vs
//!   nothing beyond membership), and
//! * verification is `O(log n)` hashes (vs one modular exponentiation —
//!   cheap off-chain, expensive on-chain under MODEXP pricing).
//!
//! The `ads_ablation` benchmark and the unit tests below quantify the
//! trade-off.

use crate::error::AccumulatorError;
use slicer_crypto::sha256;

/// Domain-separation prefixes preventing leaf/node second-preimage splices.
const LEAF_TAG: u8 = 0x00;
const NODE_TAG: u8 = 0x01;

/// A binary Merkle tree over byte-string leaves (duplicated-last-leaf
/// padding for odd widths, Bitcoin-style).
#[derive(Debug, Clone)]
pub struct MerkleTree {
    /// `levels[0]` = leaf digests, last level = root (singleton).
    levels: Vec<Vec<[u8; 32]>>,
    /// The root digest, cached at build time (the last level's only entry).
    root: [u8; 32],
}

/// A membership proof: the leaf index plus the sibling path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    pub index: usize,
    /// Sibling digests from the leaf level up.
    pub siblings: Vec<[u8; 32]>,
}

impl MerkleProof {
    /// Serialized proof size in bytes (index + siblings) — the quantity
    /// compared against the accumulator's constant witness size.
    pub fn size_bytes(&self) -> usize {
        8 + 32 * self.siblings.len()
    }
}

fn leaf_digest(data: &[u8]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(1 + data.len());
    buf.push(LEAF_TAG);
    buf.extend_from_slice(data);
    sha256(&buf)
}

fn node_digest(left: &[u8; 32], right: &[u8; 32]) -> [u8; 32] {
    let mut buf = Vec::with_capacity(65);
    buf.push(NODE_TAG);
    buf.extend_from_slice(left);
    buf.extend_from_slice(right);
    sha256(&buf)
}

impl MerkleTree {
    /// Builds a tree over the given leaves.
    ///
    /// # Errors
    ///
    /// Returns [`AccumulatorError::EmptyTree`] on an empty leaf set (an
    /// empty ADS commits to nothing; use a sentinel leaf if needed).
    pub fn build<D: AsRef<[u8]>>(leaves: &[D]) -> Result<Self, AccumulatorError> {
        if leaves.is_empty() {
            return Err(AccumulatorError::EmptyTree);
        }
        let mut levels = vec![leaves
            .iter()
            .map(|l| leaf_digest(l.as_ref()))
            .collect::<Vec<_>>()];
        loop {
            let prev = match levels.last() {
                Some(level) if level.len() > 1 => level,
                _ => break,
            };
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if let Some(left) = pair.first() {
                    let right = pair.get(1).unwrap_or(left);
                    next.push(node_digest(left, right));
                }
            }
            levels.push(next);
        }
        // The loop above terminates with a singleton top level; a missing
        // root can only mean the (already rejected) empty leaf set.
        let root = levels
            .last()
            .and_then(|level| level.first())
            .copied()
            .ok_or(AccumulatorError::EmptyTree)?;
        Ok(MerkleTree { levels, root })
    }

    /// The root digest (what would live on chain).
    pub fn root(&self) -> [u8; 32] {
        self.root
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, |leaves| leaves.len())
    }

    /// True when the tree has exactly one leaf.
    pub fn is_empty(&self) -> bool {
        false // a constructed tree always has ≥ 1 leaf
    }

    /// Produces a membership proof for leaf `index`.
    ///
    /// # Errors
    ///
    /// Returns [`AccumulatorError::LeafOutOfRange`] if `index` is out of
    /// range.
    pub fn prove(&self, index: usize) -> Result<MerkleProof, AccumulatorError> {
        if index >= self.len() {
            return Err(AccumulatorError::LeafOutOfRange {
                index,
                len: self.len(),
            });
        }
        let mut siblings = Vec::with_capacity(self.levels.len().saturating_sub(1));
        let mut i = index;
        let inner = self.levels.len().saturating_sub(1);
        for level in self.levels.iter().take(inner) {
            // Even position: pair with the right neighbour (or itself under
            // duplicate-last-leaf padding). Odd position: pair leftward.
            let pair = if i % 2 == 0 {
                level.get(i + 1).or_else(|| level.get(i))
            } else {
                level.get(i - 1)
            };
            let sibling = *pair.ok_or(AccumulatorError::LeafOutOfRange {
                index,
                len: self.len(),
            })?;
            siblings.push(sibling);
            i /= 2;
        }
        Ok(MerkleProof { index, siblings })
    }

    /// Verifies a proof against a root (static: the verifier holds only
    /// the root, the claimed leaf data and the proof).
    pub fn verify(root: &[u8; 32], leaf: &[u8], proof: &MerkleProof) -> bool {
        let mut digest = leaf_digest(leaf);
        let mut i = proof.index;
        for sibling in &proof.siblings {
            digest = if i % 2 == 0 {
                node_digest(&digest, sibling)
            } else {
                node_digest(sibling, &digest)
            };
            i /= 2;
        }
        digest == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_and_out_of_range_are_typed_errors() {
        use crate::AccumulatorError;
        let none: &[&[u8]] = &[];
        assert!(matches!(
            MerkleTree::build(none),
            Err(AccumulatorError::EmptyTree)
        ));
        let tree = MerkleTree::build(&leaves(4)).unwrap();
        assert_eq!(
            tree.prove(4),
            Err(AccumulatorError::LeafOutOfRange { index: 4, len: 4 })
        );
    }

    #[test]
    fn every_leaf_proves_and_verifies() {
        for n in [1usize, 2, 3, 7, 8, 9, 33] {
            let data = leaves(n);
            let tree = MerkleTree::build(&data).expect("non-empty");
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).expect("in range");
                assert!(
                    MerkleTree::verify(&tree.root(), leaf, &proof),
                    "n={n} leaf={i}"
                );
            }
        }
    }

    #[test]
    fn wrong_leaf_or_index_fails() {
        let data = leaves(10);
        let tree = MerkleTree::build(&data).expect("non-empty");
        let proof = tree.prove(3).expect("in range");
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-4", &proof));
        let mut wrong_pos = proof.clone();
        wrong_pos.index = 4;
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-3", &wrong_pos));
    }

    #[test]
    fn tampered_sibling_fails() {
        let data = leaves(16);
        let tree = MerkleTree::build(&data).expect("non-empty");
        let mut proof = tree.prove(5).expect("in range");
        proof.siblings[2][0] ^= 1;
        assert!(!MerkleTree::verify(&tree.root(), b"leaf-5", &proof));
    }

    #[test]
    fn root_depends_on_every_leaf() {
        let a = MerkleTree::build(&leaves(8)).expect("non-empty");
        let mut modified = leaves(8);
        modified[7] = b"changed".to_vec();
        let b = MerkleTree::build(&modified).expect("non-empty");
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn proof_size_is_logarithmic_and_beats_nothing() {
        // The paper's claim: accumulator witnesses are constant-size (64 B
        // at our 512-bit modulus), Merkle proofs grow with log n and leak
        // the position.
        let small = MerkleTree::build(&leaves(16)).unwrap().prove(0).unwrap();
        let large = MerkleTree::build(&leaves(4096)).unwrap().prove(0).unwrap();
        assert_eq!(small.siblings.len(), 4);
        assert_eq!(large.siblings.len(), 12);
        assert!(
            large.size_bytes() > 64,
            "beyond n=16 the Merkle proof outgrows the accumulator witness"
        );
    }

    #[test]
    fn duplicate_last_leaf_padding_is_not_confusable() {
        // n=3 pads by duplicating the last leaf; a proof for index 2 must
        // not also verify as index 3.
        let data = leaves(3);
        let tree = MerkleTree::build(&data).expect("non-empty");
        let proof = tree.prove(2).expect("in range");
        assert!(MerkleTree::verify(&tree.root(), b"leaf-2", &proof));
        let mut forged = proof;
        forged.index = 3;
        // Same digest path (duplicate), but position 3 flips the sibling
        // order at level 0... which is identical for the duplicated pair,
        // so this *does* verify — the classic CVE-2012-2459 ambiguity.
        // Slicer's usage is immune: leaves are distinct prime
        // representatives, never duplicated by the ADS owner. Document the
        // behaviour rather than hide it:
        assert!(MerkleTree::verify(&tree.root(), b"leaf-2", &forged));
    }
}
