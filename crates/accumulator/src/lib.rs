//! # slicer-accumulator
//!
//! The RSA accumulator — Slicer's authenticated data structure (ADS).
//!
//! The accumulator commits to the set of *prime representatives* `X` of all
//! keyword states: `Ac = g^{∏_{x ∈ X} x} mod n`. A membership witness for
//! `x` is `mw = g^{x_p / x} mod n`, and verification is the single
//! exponentiation `mw^x ≡ Ac (mod n)` — the constant-size check the
//! blockchain smart contract executes in Algorithm 5. Proofs are
//! constant-size and leak nothing about other members, which is why Slicer
//! prefers it over a Merkle tree (Section III-B).
//!
//! Components:
//!
//! * [`RsaParams`] — trusted-setup modulus (product of two safe primes) and
//!   a quadratic-residue generator. [`RsaParams::fixed_512`] /
//!   [`RsaParams::fixed_1024`] bake in reproducible parameters sized so that
//!   witnesses match the ≤ 60-byte VOs reported in the paper (Fig. 6d);
//!   [`RsaParams::generate`] performs a fresh trusted setup.
//! * [`hash_to_prime`] — the `H_prime` random oracle (Barić–Pfitzmann style
//!   hash-and-increment), deterministic so the on-chain verifier can
//!   recompute representatives.
//! * [`Accumulator`] — incremental accumulation.
//! * [`witness`] — direct, batched (shared-complement) and root-factor
//!   witness generation strategies.
//!
//! # Examples
//!
//! ```
//! use slicer_accumulator::{hash_to_prime, Accumulator, RsaParams};
//!
//! # fn main() -> Result<(), slicer_accumulator::AccumulatorError> {
//! let params = RsaParams::fixed_512();
//! let primes = (0u32..4)
//!     .map(|i| hash_to_prime(&i.to_be_bytes(), 128))
//!     .collect::<Result<Vec<_>, _>>()?;
//! let acc = Accumulator::over(&params, &primes);
//!
//! let w = slicer_accumulator::witness::membership_witness(&params, &primes, 2)?;
//! assert!(acc.verify(&primes[2], &w));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acc;
mod cache;
mod error;
mod hprime;
pub mod merkle;
pub mod nonmembership;
mod params;
pub mod witness;

pub use acc::Accumulator;
pub use cache::{CacheError, WitnessCache};
pub use error::AccumulatorError;
pub use hprime::{hash_to_prime, hash_to_prime_counted, DEFAULT_PRIME_BITS};
pub use nonmembership::{nonmembership_witness, verify_nonmembership, NonMembershipWitness};
pub use params::RsaParams;
