//! Membership-witness generation strategies.
//!
//! A witness for `x` in set `X` is `g^{∏_{y ∈ X, y ≠ x} y} mod n`. Three
//! strategies with different cost profiles:
//!
//! * [`membership_witness`] — direct per-query fold over `X \ {x}`, `O(|X|)`
//!   short exponentiations. This is what the paper's cloud does per search
//!   token (its VO-generation time in Fig. 5b/5d grows with the record
//!   count for exactly this reason).
//! * [`witness_batch`] — for an order query's `b` slices: fold the shared
//!   complement once, then split among the `b` targets with a root-factor
//!   tree. Turns `b` direct folds into ~1.
//! * [`root_factor`] — Sander–Ta-Shma–style divide and conquer producing
//!   witnesses for *every* member in `O(|X| log |X|)` exponentiations; used
//!   by the cloud's witness cache ablation.

use crate::params::RsaParams;
use slicer_bignum::BigUint;

/// Direct witness for `primes[target]`: folds every other prime into the
/// exponent one at a time.
///
/// # Panics
///
/// Panics if `target >= primes.len()`.
pub fn membership_witness(params: &RsaParams, primes: &[BigUint], target: usize) -> BigUint {
    assert!(target < primes.len(), "target index out of range");
    slicer_telemetry::global::count("accumulator.witness.direct", 1);
    let mut w = params.generator().clone();
    for (i, p) in primes.iter().enumerate() {
        if i != target {
            w = params.powmod(&w, p);
        }
    }
    w
}

/// Witnesses for a subset of members sharing one complement fold.
///
/// `targets` are indexes into `primes` (must be distinct). Returns one
/// witness per target, in target order.
///
/// # Panics
///
/// Panics if any target index is out of range or duplicated.
pub fn witness_batch(params: &RsaParams, primes: &[BigUint], targets: &[usize]) -> Vec<BigUint> {
    if targets.is_empty() {
        return Vec::new();
    }
    let mut span = slicer_telemetry::global::span("accumulator.witness");
    span.attr("targets", targets.len());
    slicer_telemetry::global::count("accumulator.witness.batched", targets.len() as u64);
    let mut in_targets = vec![false; primes.len()];
    for &t in targets {
        assert!(t < primes.len(), "target index out of range");
        assert!(!in_targets[t], "duplicate target index {t}");
        in_targets[t] = true;
    }
    // Fold the complement (all primes not being proven) once.
    let mut base = params.generator().clone();
    for (i, p) in primes.iter().enumerate() {
        if !in_targets[i] {
            base = params.powmod(&base, p);
        }
    }
    // Distribute the target primes over each other with a root-factor tree.
    let target_primes: Vec<BigUint> = targets.iter().map(|&t| primes[t].clone()).collect();
    root_factor(params, &base, &target_primes)
}

/// Computes witnesses for every element of `primes` relative to the
/// accumulator `base^{∏ primes}`: returns `w_i = base^{∏_{j≠i} primes_j}`.
///
/// Divide and conquer: split the set in half, raise the base to the
/// product of each half for the opposite side, recurse. Total work is
/// `O(n log n)` short exponentiations instead of `O(n^2)`.
pub fn root_factor(params: &RsaParams, base: &BigUint, primes: &[BigUint]) -> Vec<BigUint> {
    match primes.len() {
        0 => Vec::new(),
        1 => vec![base.clone()],
        _ => {
            let mid = primes.len() / 2;
            let (left, right) = primes.split_at(mid);
            let mut base_right = base.clone();
            for p in left {
                base_right = params.powmod(&base_right, p);
            }
            let mut base_left = base.clone();
            for p in right {
                base_left = params.powmod(&base_left, p);
            }
            let mut out = root_factor(params, &base_left, left);
            out.extend(root_factor(params, &base_right, right));
            out
        }
    }
}

/// Verifies `witness^x ≡ ac (mod n)` — the smart contract's `VerifyMem`.
pub fn verify_membership(
    params: &RsaParams,
    prime: &BigUint,
    witness: &BigUint,
    ac: &BigUint,
) -> bool {
    &params.powmod(witness, prime) == ac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_to_prime, Accumulator};

    fn primes(n: u32) -> Vec<BigUint> {
        (0..n)
            .map(|i| hash_to_prime(&i.to_be_bytes(), 64))
            .collect()
    }

    #[test]
    fn direct_witness_verifies() {
        let params = RsaParams::fixed_512();
        let ps = primes(8);
        let acc = Accumulator::over(&params, &ps);
        for t in 0..ps.len() {
            let w = membership_witness(&params, &ps, t);
            assert!(acc.verify(&ps[t], &w), "witness {t}");
        }
    }

    #[test]
    fn witness_for_wrong_element_fails() {
        let params = RsaParams::fixed_512();
        let ps = primes(5);
        let acc = Accumulator::over(&params, &ps);
        let w = membership_witness(&params, &ps, 0);
        assert!(!acc.verify(&ps[1], &w));
    }

    #[test]
    fn non_member_cannot_be_proven() {
        let params = RsaParams::fixed_512();
        let ps = primes(5);
        let acc = Accumulator::over(&params, &ps);
        let outsider = hash_to_prime(b"not a member", 64);
        for t in 0..ps.len() {
            let w = membership_witness(&params, &ps, t);
            assert!(!acc.verify(&outsider, &w));
        }
    }

    #[test]
    fn batch_matches_direct() {
        let params = RsaParams::fixed_512();
        let ps = primes(10);
        let targets = [1usize, 4, 7, 9];
        let batch = witness_batch(&params, &ps, &targets);
        for (w, &t) in batch.iter().zip(&targets) {
            assert_eq!(w, &membership_witness(&params, &ps, t), "target {t}");
        }
    }

    #[test]
    fn batch_empty_targets() {
        let params = RsaParams::fixed_512();
        assert!(witness_batch(&params, &primes(3), &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn batch_rejects_duplicates() {
        let params = RsaParams::fixed_512();
        witness_batch(&params, &primes(3), &[1, 1]);
    }

    #[test]
    fn root_factor_yields_all_witnesses() {
        let params = RsaParams::fixed_512();
        let ps = primes(9);
        let acc = Accumulator::over(&params, &ps);
        let all = root_factor(&params, params.generator(), &ps);
        assert_eq!(all.len(), ps.len());
        for (w, p) in all.iter().zip(&ps) {
            assert!(acc.verify(p, w));
        }
    }

    #[test]
    fn single_member_witness_is_generator() {
        let params = RsaParams::fixed_512();
        let ps = primes(1);
        let w = membership_witness(&params, &ps, 0);
        assert_eq!(&w, params.generator());
        let acc = Accumulator::over(&params, &ps);
        assert!(acc.verify(&ps[0], &w));
    }
}
