//! Membership-witness generation strategies.
//!
//! A witness for `x` in set `X` is `g^{∏_{y ∈ X, y ≠ x} y} mod n`. Three
//! strategies with different cost profiles:
//!
//! * [`membership_witness`] — direct per-query fold over `X \ {x}`, `O(|X|)`
//!   short exponentiations. This is what the paper's cloud does per search
//!   token (its VO-generation time in Fig. 5b/5d grows with the record
//!   count for exactly this reason).
//! * [`witness_batch`] — for an order query's `b` slices: fold the shared
//!   complement once, then split among the `b` targets with a root-factor
//!   tree. Turns `b` direct folds into ~1.
//! * [`root_factor`] — Sander–Ta-Shma–style divide and conquer producing
//!   witnesses for *every* member in `O(|X| log |X|)` exponentiations; used
//!   by the cloud's witness cache ablation.

use crate::error::AccumulatorError;
use crate::params::RsaParams;
use slicer_bignum::BigUint;
use slicer_par::Pool;

/// Subtrees below this size are not worth fanning out to pool workers.
const POOL_MIN_SUBTREE: usize = 64;

/// Direct witness for `primes[target]`: folds every other prime into the
/// exponent one at a time.
///
/// # Errors
///
/// Returns [`AccumulatorError::TargetOutOfRange`] if
/// `target >= primes.len()`.
pub fn membership_witness(
    params: &RsaParams,
    primes: &[BigUint],
    target: usize,
) -> Result<BigUint, AccumulatorError> {
    if target >= primes.len() {
        return Err(AccumulatorError::TargetOutOfRange {
            index: target,
            len: primes.len(),
        });
    }
    slicer_telemetry::global::count("accumulator.witness.direct", 1);
    let mut w = params.generator().clone();
    for (i, p) in primes.iter().enumerate() {
        if i != target {
            w = params.powmod(&w, p);
        }
    }
    Ok(w)
}

/// Witnesses for a subset of members sharing one complement fold.
///
/// `targets` are indexes into `primes` (must be distinct). Returns one
/// witness per target, in target order.
///
/// # Errors
///
/// Returns [`AccumulatorError::TargetOutOfRange`] or
/// [`AccumulatorError::DuplicateTarget`] on a malformed target list.
pub fn witness_batch(
    params: &RsaParams,
    primes: &[BigUint],
    targets: &[usize],
) -> Result<Vec<BigUint>, AccumulatorError> {
    witness_batch_pooled(params, primes, targets, &Pool::single())
}

/// [`witness_batch`] with the root-factor tree fanned out over a
/// deterministic pool: identical output at any worker count.
///
/// # Errors
///
/// Returns [`AccumulatorError::TargetOutOfRange`] or
/// [`AccumulatorError::DuplicateTarget`] on a malformed target list.
pub fn witness_batch_pooled(
    params: &RsaParams,
    primes: &[BigUint],
    targets: &[usize],
    pool: &Pool,
) -> Result<Vec<BigUint>, AccumulatorError> {
    if targets.is_empty() {
        return Ok(Vec::new());
    }
    let mut span = slicer_telemetry::global::span("accumulator.witness");
    span.attr("targets", targets.len());
    slicer_telemetry::global::count("accumulator.witness.batched", targets.len() as u64);
    let mut in_targets = vec![false; primes.len()];
    for &t in targets {
        let slot = in_targets
            .get_mut(t)
            .ok_or(AccumulatorError::TargetOutOfRange {
                index: t,
                len: primes.len(),
            })?;
        if *slot {
            return Err(AccumulatorError::DuplicateTarget(t));
        }
        *slot = true;
    }
    // Fold the complement (all primes not being proven) once.
    let complement: Vec<BigUint> = primes
        .iter()
        .zip(&in_targets)
        .filter(|(_, proving)| !**proving)
        .map(|(p, _)| p.clone())
        .collect();
    let base = params.powmod_product(params.generator(), &complement);
    // Distribute the target primes over each other with a root-factor tree.
    let target_primes: Vec<BigUint> = targets
        .iter()
        .map(|&t| {
            primes
                .get(t)
                .cloned()
                .ok_or(AccumulatorError::TargetOutOfRange {
                    index: t,
                    len: primes.len(),
                })
        })
        .collect::<Result<_, _>>()?;
    Ok(root_factor_pooled(params, &base, &target_primes, pool))
}

/// Computes witnesses for every element of `primes` relative to the
/// accumulator `base^{∏ primes}`: returns `w_i = base^{∏_{j≠i} primes_j}`.
///
/// Divide and conquer: split the set in half, raise the base to the
/// product of each half for the opposite side, recurse. Total work is
/// `O(n log n)` short exponentiations instead of `O(n^2)`.
pub fn root_factor(params: &RsaParams, base: &BigUint, primes: &[BigUint]) -> Vec<BigUint> {
    match primes.len() {
        0 => Vec::new(),
        1 => vec![base.clone()],
        _ => {
            let mid = primes.len() / 2;
            let (left, right) = primes.split_at(mid);
            let base_right = params.powmod_product(base, left);
            let base_left = params.powmod_product(base, right);
            let mut out = root_factor(params, &base_left, left);
            out.extend(root_factor(params, &base_right, right));
            out
        }
    }
}

/// [`root_factor`] with the independent subtrees below the first few split
/// levels fanned out over a deterministic pool. The split arithmetic is
/// identical to the sequential tree and results are joined in submission
/// order, so the output is byte-equal at any worker count.
pub fn root_factor_pooled(
    params: &RsaParams,
    base: &BigUint,
    primes: &[BigUint],
    pool: &Pool,
) -> Vec<BigUint> {
    if pool.workers() <= 1 || primes.len() < 2 * POOL_MIN_SUBTREE {
        return root_factor(params, base, primes);
    }
    // Split sequentially (these top levels touch the whole prime set and
    // cannot parallelize) until there is a left-to-right frontier of
    // independent subtrees, then recurse into the subtrees concurrently.
    let want = pool.workers() * 4;
    let mut frontier: Vec<(BigUint, &[BigUint])> = vec![(base.clone(), primes)];
    while frontier.len() < want
        && frontier
            .iter()
            .any(|(_, s)| s.len() >= 2 * POOL_MIN_SUBTREE)
    {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for (b, s) in frontier {
            if s.len() < 2 * POOL_MIN_SUBTREE {
                next.push((b, s));
                continue;
            }
            let mid = s.len() / 2;
            let (left, right) = s.split_at(mid);
            let base_right = params.powmod_product(&b, left);
            let base_left = params.powmod_product(&b, right);
            next.push((base_left, left));
            next.push((base_right, right));
        }
        frontier = next;
    }
    pool.run(&frontier, |(b, s)| root_factor(params, b, s))
        .into_iter()
        .flatten()
        .collect()
}

/// Verifies `witness^x ≡ ac (mod n)` — the smart contract's `VerifyMem`.
pub fn verify_membership(
    params: &RsaParams,
    prime: &BigUint,
    witness: &BigUint,
    ac: &BigUint,
) -> bool {
    &params.powmod(witness, prime) == ac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_to_prime, Accumulator};

    fn primes(n: u32) -> Vec<BigUint> {
        (0..n)
            .map(|i| hash_to_prime(&i.to_be_bytes(), 64).expect("width ok"))
            .collect()
    }

    #[test]
    fn direct_witness_verifies() {
        let params = RsaParams::fixed_512();
        let ps = primes(8);
        let acc = Accumulator::over(&params, &ps);
        for t in 0..ps.len() {
            let w = membership_witness(&params, &ps, t).expect("in range");
            assert!(acc.verify(&ps[t], &w), "witness {t}");
        }
    }

    #[test]
    fn witness_for_wrong_element_fails() {
        let params = RsaParams::fixed_512();
        let ps = primes(5);
        let acc = Accumulator::over(&params, &ps);
        let w = membership_witness(&params, &ps, 0).expect("in range");
        assert!(!acc.verify(&ps[1], &w));
    }

    #[test]
    fn non_member_cannot_be_proven() {
        let params = RsaParams::fixed_512();
        let ps = primes(5);
        let acc = Accumulator::over(&params, &ps);
        let outsider = hash_to_prime(b"not a member", 64).expect("width ok");
        for t in 0..ps.len() {
            let w = membership_witness(&params, &ps, t).expect("in range");
            assert!(!acc.verify(&outsider, &w));
        }
    }

    #[test]
    fn batch_matches_direct() {
        let params = RsaParams::fixed_512();
        let ps = primes(10);
        let targets = [1usize, 4, 7, 9];
        let batch = witness_batch(&params, &ps, &targets).expect("valid targets");
        for (w, &t) in batch.iter().zip(&targets) {
            assert_eq!(
                w,
                &membership_witness(&params, &ps, t).expect("in range"),
                "target {t}"
            );
        }
    }

    #[test]
    fn batch_empty_targets() {
        let params = RsaParams::fixed_512();
        assert!(witness_batch(&params, &primes(3), &[])
            .expect("empty")
            .is_empty());
    }

    #[test]
    fn malformed_targets_are_typed_errors() {
        use crate::AccumulatorError;
        let params = RsaParams::fixed_512();
        assert_eq!(
            witness_batch(&params, &primes(3), &[1, 1]).unwrap_err(),
            AccumulatorError::DuplicateTarget(1)
        );
        assert_eq!(
            witness_batch(&params, &primes(3), &[5]).unwrap_err(),
            AccumulatorError::TargetOutOfRange { index: 5, len: 3 }
        );
        assert_eq!(
            membership_witness(&params, &primes(3), 3).unwrap_err(),
            AccumulatorError::TargetOutOfRange { index: 3, len: 3 }
        );
    }

    #[test]
    fn root_factor_yields_all_witnesses() {
        let params = RsaParams::fixed_512();
        let ps = primes(9);
        let acc = Accumulator::over(&params, &ps);
        let all = root_factor(&params, params.generator(), &ps);
        assert_eq!(all.len(), ps.len());
        for (w, p) in all.iter().zip(&ps) {
            assert!(acc.verify(p, w));
        }
    }

    #[test]
    fn batch_witnesses_byte_equal_naive_fold() {
        // The product-tree path (chunked exponent products + root-factor
        // splits) must agree bit for bit with the one-prime-at-a-time fold
        // on random sets and random target subsets.
        use slicer_testkit::{prop_assert_eq, prop_check};
        prop_check!(0x2011, 64, |g| {
            let params = RsaParams::fixed_512();
            let n = g.u64_in(2, 18) as usize;
            let ps: Vec<BigUint> = (0..n)
                .map(|i| hash_to_prime(&[g.u8(), i as u8, 0x77], 64).expect("width ok"))
                .collect();
            let mut targets: Vec<usize> = (0..n).filter(|_| g.u8() & 1 == 1).collect();
            if targets.is_empty() {
                targets.push(g.u64_in(0, n as u64 - 1) as usize);
            }
            let batch = witness_batch(&params, &ps, &targets).expect("valid targets");
            for (w, &t) in batch.iter().zip(&targets) {
                prop_assert_eq!(
                    w.clone(),
                    membership_witness(&params, &ps, t).expect("in range")
                );
            }
            Ok(())
        });
    }

    #[test]
    fn pooled_tree_matches_sequential_at_every_pool_size() {
        let params = RsaParams::fixed_512();
        let ps = primes(300);
        let sequential = root_factor(&params, params.generator(), &ps);
        for workers in [1usize, 2, 8] {
            let pool = Pool::new(workers);
            assert_eq!(
                root_factor_pooled(&params, params.generator(), &ps, &pool),
                sequential,
                "pool size {workers}"
            );
        }
        let acc = Accumulator::over(&params, &ps);
        for (w, p) in sequential.iter().zip(&ps) {
            assert!(acc.verify(p, w));
        }
    }

    #[test]
    fn single_member_witness_is_generator() {
        let params = RsaParams::fixed_512();
        let ps = primes(1);
        let w = membership_witness(&params, &ps, 0).expect("in range");
        assert_eq!(&w, params.generator());
        let acc = Accumulator::over(&params, &ps);
        assert!(acc.verify(&ps[0], &w));
    }
}
