//! Nonmembership witnesses — the universal-accumulator extension of
//! Li, Li & Xue (ACNS 2007), the paper's reference `[28]`.
//!
//! Slicer's verification only needs membership proofs, but the same
//! accumulator supports *provable absence*: for a prime `x ∉ X` the cloud
//! can prove that no keyword state with representative `x` was ever
//! accumulated — useful for demonstrating that a keyword has no results
//! without trusting the cloud's word.
//!
//! Construction: with `u = ∏_{y ∈ X} y` and `gcd(x, u) = 1` (guaranteed
//! when `x` is a prime outside the set), pick `a = u⁻¹ mod x`, so
//! `a·u = 1 + k·x` for the non-negative integer `k = (a·u − 1)/x`.
//! The witness is `(a, d = g^k)` and verification checks
//!
//! ```text
//! Ac^a ≡ g · d^x  (mod n)
//! ```
//!
//! which holds because `Ac^a = g^{a·u} = g^{1 + k·x}`.

use crate::params::RsaParams;
use slicer_bignum::BigUint;

/// A nonmembership witness `(a, d)` for a specific accumulator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonMembershipWitness {
    /// The Bézout coefficient `a = u⁻¹ mod x`.
    pub a: BigUint,
    /// The blinded cofactor `d = g^{(a·u − 1)/x}`.
    pub d: BigUint,
}

/// Produces a nonmembership witness for `x` against the set `primes`,
/// or `None` if `x` actually divides the product (i.e. `x ∈ X`).
///
/// Cost is dominated by one product over `X` and one `|X|·prime_bits`-bit
/// exponentiation — this is the full-product path, intended for occasional
/// absence proofs rather than the per-query hot path.
pub fn nonmembership_witness(
    params: &RsaParams,
    primes: &[BigUint],
    x: &BigUint,
) -> Option<NonMembershipWitness> {
    let u = product_tree(primes);
    let a = u.modinv(x)?; // None iff gcd(x, u) != 1, i.e. x ∈ X
    let au = &a * &u;
    let k = &(&au - &BigUint::one()) / x;
    debug_assert_eq!(&(&k * x) + &BigUint::one(), au);
    let d = params.powmod(params.generator(), &k);
    Some(NonMembershipWitness { a, d })
}

/// Verifies a nonmembership witness against an accumulator value.
pub fn verify_nonmembership(
    params: &RsaParams,
    x: &BigUint,
    witness: &NonMembershipWitness,
    ac: &BigUint,
) -> bool {
    let lhs = params.powmod(ac, &witness.a);
    let rhs = params
        .generator()
        .mulmod(&params.powmod(&witness.d, x), params.modulus());
    lhs == rhs
}

/// Balanced product tree: multiplies `n` numbers in `O(M(total) log n)`
/// instead of the quadratic left fold.
pub fn product_tree(factors: &[BigUint]) -> BigUint {
    match factors {
        [] => BigUint::one(),
        [single] => single.clone(),
        _ => {
            let (left, right) = factors.split_at(factors.len() / 2);
            &product_tree(left) * &product_tree(right)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hash_to_prime, Accumulator};

    fn primes(n: u32) -> Vec<BigUint> {
        (0..n)
            .map(|i| hash_to_prime(&i.to_be_bytes(), 64).expect("width ok"))
            .collect()
    }

    #[test]
    fn absent_element_verifies() {
        let params = RsaParams::fixed_512();
        let ps = primes(12);
        let acc = Accumulator::over(&params, &ps);
        let outsider = hash_to_prime(b"never accumulated", 64).expect("width ok");
        let w = nonmembership_witness(&params, &ps, &outsider).expect("outsider");
        assert!(verify_nonmembership(&params, &outsider, &w, acc.value()));
    }

    #[test]
    fn member_has_no_nonmembership_witness() {
        let params = RsaParams::fixed_512();
        let ps = primes(8);
        assert!(nonmembership_witness(&params, &ps, &ps[3]).is_none());
    }

    #[test]
    fn witness_does_not_transfer_to_members() {
        let params = RsaParams::fixed_512();
        let ps = primes(8);
        let acc = Accumulator::over(&params, &ps);
        let outsider = hash_to_prime(b"x", 64).expect("width ok");
        let w = nonmembership_witness(&params, &ps, &outsider).expect("outsider");
        // The witness proves absence of `outsider`, not of a member.
        assert!(!verify_nonmembership(&params, &ps[0], &w, acc.value()));
    }

    #[test]
    fn stale_witness_fails_after_insertion() {
        let params = RsaParams::fixed_512();
        let mut ps = primes(8);
        let newcomer = hash_to_prime(b"late arrival", 64).expect("width ok");
        let w = nonmembership_witness(&params, &ps, &newcomer).expect("absent");
        // The element is later accumulated: the old absence proof dies.
        ps.push(newcomer.clone());
        let acc = Accumulator::over(&params, &ps);
        assert!(!verify_nonmembership(&params, &newcomer, &w, acc.value()));
    }

    #[test]
    fn empty_set_proves_everything_absent() {
        let params = RsaParams::fixed_512();
        let acc = Accumulator::new(&params);
        let x = hash_to_prime(b"anything", 64).expect("width ok");
        let w = nonmembership_witness(&params, &[], &x).expect("empty set");
        assert!(verify_nonmembership(&params, &x, &w, acc.value()));
    }

    #[test]
    fn product_tree_matches_fold() {
        let ps = primes(9);
        let fold = ps.iter().fold(BigUint::one(), |a, p| &a * p);
        assert_eq!(product_tree(&ps), fold);
        assert_eq!(product_tree(&[]), BigUint::one());
    }
}
