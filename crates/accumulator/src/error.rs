//! Typed errors for accumulator construction and witness generation.

use std::fmt;

/// Errors surfaced by the accumulator crate instead of panicking: the
/// serving path (cloud witness generation, on-chain verification) must
/// degrade to a protocol error on malformed input, never take the process
/// down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccumulatorError {
    /// `hash_to_prime` was asked for a width outside the supported
    /// `16..=512` bit range.
    UnsupportedPrimeBits(u32),
    /// A trusted setup was requested below the minimum modulus size.
    ModulusTooSmall(u32),
    /// An RSA modulus was rejected (even or ≤ 1 — no Montgomery domain).
    BadModulus,
    /// A witness target index is outside the prime set.
    TargetOutOfRange {
        /// The offending index.
        index: usize,
        /// Length of the prime set.
        len: usize,
    },
    /// The same target index appeared twice in one batch request.
    DuplicateTarget(usize),
    /// A Merkle tree was requested over an empty leaf set.
    EmptyTree,
    /// A Merkle proof was requested for a leaf outside the tree.
    LeafOutOfRange {
        /// The offending leaf index.
        index: usize,
        /// Number of leaves in the tree.
        len: usize,
    },
}

impl fmt::Display for AccumulatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccumulatorError::UnsupportedPrimeBits(bits) => {
                write!(f, "unsupported prime size {bits} (want 16..=512)")
            }
            AccumulatorError::ModulusTooSmall(bits) => {
                write!(f, "modulus below 32 bits is meaningless (got {bits})")
            }
            AccumulatorError::BadModulus => {
                write!(f, "RSA modulus must be odd and > 1")
            }
            AccumulatorError::TargetOutOfRange { index, len } => {
                write!(f, "target index {index} out of range for {len} primes")
            }
            AccumulatorError::DuplicateTarget(index) => {
                write!(f, "duplicate target index {index}")
            }
            AccumulatorError::EmptyTree => {
                write!(f, "cannot build a Merkle tree over nothing")
            }
            AccumulatorError::LeafOutOfRange { index, len } => {
                write!(f, "leaf index {index} out of range for {len} leaves")
            }
        }
    }
}

impl std::error::Error for AccumulatorError {}
