//! The headline durability guarantee, end-to-end over real processes:
//! `kill -9` a serving daemon, restart it on the same data directory,
//! and it serves verifiable searches with a byte-identical accumulator
//! digest — no rebuild.

use slicer_core::Query;
use slicer_daemon::{DaemonClient, Endpoint, FlightRecording, FLIGHTREC_FILE};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slicerd-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(socket: &Path, data: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_slicerd"))
        .args([
            "--listen",
            &format!("unix://{}", socket.display()),
            "--data",
            &data.display().to_string(),
            "--seed",
            "11",
            "--bits",
            "8",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn slicerd")
}

fn connect_with_retry(endpoint: &Endpoint, child: &mut Child) -> DaemonClient {
    for _ in 0..200 {
        if let Ok(client) = DaemonClient::connect(endpoint) {
            return client;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("slicerd exited before accepting connections: {status}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("slicerd never became reachable at {endpoint}");
}

#[test]
fn kill_nine_then_restart_serves_identical_verifiable_results() {
    let dir = temp_dir("kill9");
    let socket = dir.join("slicerd.sock");
    let data = dir.join("data");
    let endpoint = Endpoint::Unix(socket.clone());

    // First life: ingest two batches, search, capture the digest.
    let mut child = spawn_daemon(&socket, &data);
    let mut client = connect_with_retry(&endpoint, &mut child);
    let (count, generation, _) = client.ingest(vec![(1, 10), (2, 20), (3, 30)]).unwrap();
    assert_eq!((count, generation), (3, 1));
    let (_, generation, _) = client.ingest(vec![(4, 40)]).unwrap();
    assert_eq!(generation, 2);

    let first = client.search(Query::less_than(25), 1_000).unwrap();
    assert!(first.verified);
    assert_eq!(first.ids, vec![1, 2]);
    let stat_before = client.stat().unwrap();
    assert!(stat_before.index_entries >= 4);

    // SIGKILL: no destructors, no flush — the crash the store is built for.
    child.kill().unwrap();
    child.wait().unwrap();

    // The flight recorder persisted at every request boundary, so even a
    // SIGKILL'd daemon leaves a decodable recording naming its recent
    // requests — here the stat that ran last, with its final outcome.
    let rec = FlightRecording::load(&data.join(FLIGHTREC_FILE))
        .expect("flight recording survives kill -9 and validates");
    assert!(!rec.requests.is_empty());
    assert!(
        rec.requests
            .iter()
            .any(|r| r.kind == "stat" && r.outcome == "ok"),
        "{:?}",
        rec.requests
    );
    assert!(rec.requests.iter().any(|r| r.kind == "search"));
    assert!(rec.in_flight().is_none(), "no request was mid-dispatch");

    // Second life: same data directory, fresh process.
    let mut child = spawn_daemon(&socket, &data);
    let mut client = connect_with_retry(&endpoint, &mut child);

    let stat_after = client.stat().unwrap();
    assert_eq!(
        stat_after.digest, stat_before.digest,
        "restored accumulator digest must be byte-identical"
    );
    assert_eq!(
        stat_after.index_entries, stat_before.index_entries,
        "restored index, not a rebuild"
    );
    assert_eq!(stat_after.generation, 2);

    let again = client.search(Query::less_than(25), 1_000).unwrap();
    assert!(
        again.verified,
        "restored state must serve verifiable results"
    );
    assert_eq!(again.ids, first.ids);

    let (chain_ok, height, digest) = client.verify().unwrap();
    assert!(chain_ok);
    assert!(height > 0);
    assert_eq!(digest, stat_before.digest);

    // The restored daemon keeps accepting writes.
    let (_, generation, _) = client.ingest(vec![(5, 50)]).unwrap();
    assert_eq!(generation, 3);
    let grown = client.search(Query::greater_than(35), 1_000).unwrap();
    assert!(grown.verified);
    let mut ids = grown.ids.clone();
    ids.sort_unstable();
    assert_eq!(ids, vec![4, 5]);

    client.shutdown().unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown exit: {status}");
}

#[test]
fn cli_round_trip_against_a_live_daemon() {
    let dir = temp_dir("cli");
    let socket = dir.join("slicerd.sock");
    let data = dir.join("data");
    let endpoint = Endpoint::Unix(socket.clone());
    let connect = format!("unix://{}", socket.display());

    let mut child = spawn_daemon(&socket, &data);
    // The daemon serves connections sequentially: close the readiness
    // probe before the CLI subprocesses queue up behind it.
    drop(connect_with_retry(&endpoint, &mut child));

    let cli = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_slicer-cli"))
            .args(["--connect", &connect])
            .args(args)
            .output()
            .expect("run slicer-cli")
    };

    let out = cli(&["ingest", "1:10", "2:200"]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("generation="));

    let out = cli(&["search", "gt", "100"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified=true"), "{text}");
    assert!(text.contains("records=[2]"), "{text}");

    let out = cli(&["verify"]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("chain_ok=true"));

    let out = cli(&["stat"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("generation=1"), "{text}");

    // Operations plane through the CLI: scrape, validate, tail, top.
    let out = cli(&["metrics"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("slicer_rpc_requests"), "{text}");
    assert!(text.contains("slicer_rpc_search_ns"), "{text}");

    let out = cli(&["metrics", "--check"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("metrics-check json=ok"), "{text}");
    assert!(text.contains("metrics-check prometheus=ok"), "{text}");

    let out = cli(&["tail", "50"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"target\":\"slicerd.boot\""), "{text}");

    let out = cli(&["top", "--interval-ms", "10"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("req/s"), "{text}");

    let out = cli(&["shutdown"]);
    assert!(out.status.success(), "{out:?}");
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown exit: {status}");

    // A clean shutdown stamps the recording; the offline decoder reads
    // it without a daemon and exits 0 (nothing was in flight).
    let out = Command::new(env!("CARGO_BIN_EXE_slicer-cli"))
        .args([
            "flightrec",
            &data.join(FLIGHTREC_FILE).display().to_string(),
        ])
        .output()
        .expect("run slicer-cli flightrec");
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("reason=shutdown"), "{text}");
    assert!(text.contains("kind=ingest"), "{text}");
}

#[test]
fn oversize_frame_gets_a_clean_error_and_the_connection_survives() {
    use slicer_daemon::proto::{
        read_message, write_message, Request, RequestBody, Response, ResponseBody, MAX_FRAME_LEN,
    };

    let dir = temp_dir("oversize");
    let socket = dir.join("slicerd.sock");
    let data = dir.join("data");
    let endpoint = Endpoint::Unix(socket.clone());

    let mut child = spawn_daemon(&socket, &data);
    drop(connect_with_retry(&endpoint, &mut child));

    // Hand-roll a frame whose length prefix exceeds the 64 MiB cap. The
    // daemon must drain it, answer with a framed error, and keep the
    // connection usable — not hang up.
    let declared = MAX_FRAME_LEN + 1;
    let mut stream = endpoint.connect().unwrap();
    stream.write_all(&declared.to_be_bytes()).unwrap();
    let chunk = vec![0u8; 1 << 20];
    let mut remaining = declared as usize;
    while remaining > 0 {
        let n = remaining.min(chunk.len());
        stream.write_all(&chunk[..n]).unwrap();
        remaining -= n;
    }
    stream.flush().unwrap();

    let reply: Response = read_message(&mut stream)
        .expect("framed reply, not a dropped connection")
        .expect("a response frame");
    let ResponseBody::Error(msg) = reply.body else {
        panic!("want Error, got {:?}", reply.body);
    };
    assert!(msg.contains("frame too large"), "{msg}");

    // Same connection, well-formed request: still served.
    write_message(
        &mut stream,
        &Request {
            trace_id: 9,
            body: RequestBody::Stat,
        },
    )
    .unwrap();
    let reply: Response = read_message(&mut stream).unwrap().expect("stat reply");
    assert!(
        matches!(reply.body, ResponseBody::Stats { .. }),
        "{reply:?}"
    );
    // The daemon serves sequentially: close this connection before the
    // metrics client queues up behind it.
    drop(stream);

    // The rejection landed in the error taxonomy.
    let mut client = DaemonClient::connect(&endpoint).unwrap();
    let metrics = client.metrics().unwrap();
    let oversize = metrics
        .counters
        .iter()
        .find(|(n, _)| n == "rpc.error.oversize")
        .map_or(0, |(_, v)| *v);
    assert_eq!(oversize, 1, "{:?}", metrics.counters);

    client.shutdown().unwrap();
    child.wait().unwrap();
}
