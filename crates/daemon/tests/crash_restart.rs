//! The headline durability guarantee, end-to-end over real processes:
//! `kill -9` a serving daemon, restart it on the same data directory,
//! and it serves verifiable searches with a byte-identical accumulator
//! digest — no rebuild.

use slicer_core::Query;
use slicer_daemon::{DaemonClient, Endpoint};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slicerd-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn spawn_daemon(socket: &Path, data: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_slicerd"))
        .args([
            "--listen",
            &format!("unix://{}", socket.display()),
            "--data",
            &data.display().to_string(),
            "--seed",
            "11",
            "--bits",
            "8",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn slicerd")
}

fn connect_with_retry(endpoint: &Endpoint, child: &mut Child) -> DaemonClient {
    for _ in 0..200 {
        if let Ok(client) = DaemonClient::connect(endpoint) {
            return client;
        }
        if let Ok(Some(status)) = child.try_wait() {
            panic!("slicerd exited before accepting connections: {status}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("slicerd never became reachable at {endpoint}");
}

#[test]
fn kill_nine_then_restart_serves_identical_verifiable_results() {
    let dir = temp_dir("kill9");
    let socket = dir.join("slicerd.sock");
    let data = dir.join("data");
    let endpoint = Endpoint::Unix(socket.clone());

    // First life: ingest two batches, search, capture the digest.
    let mut child = spawn_daemon(&socket, &data);
    let mut client = connect_with_retry(&endpoint, &mut child);
    let (count, generation, _) = client.ingest(vec![(1, 10), (2, 20), (3, 30)]).unwrap();
    assert_eq!((count, generation), (3, 1));
    let (_, generation, _) = client.ingest(vec![(4, 40)]).unwrap();
    assert_eq!(generation, 2);

    let first = client.search(Query::less_than(25), 1_000).unwrap();
    assert!(first.verified);
    assert_eq!(first.ids, vec![1, 2]);
    let stat_before = client.stat().unwrap();
    assert!(stat_before.index_entries >= 4);

    // SIGKILL: no destructors, no flush — the crash the store is built for.
    child.kill().unwrap();
    child.wait().unwrap();

    // Second life: same data directory, fresh process.
    let mut child = spawn_daemon(&socket, &data);
    let mut client = connect_with_retry(&endpoint, &mut child);

    let stat_after = client.stat().unwrap();
    assert_eq!(
        stat_after.digest, stat_before.digest,
        "restored accumulator digest must be byte-identical"
    );
    assert_eq!(
        stat_after.index_entries, stat_before.index_entries,
        "restored index, not a rebuild"
    );
    assert_eq!(stat_after.generation, 2);

    let again = client.search(Query::less_than(25), 1_000).unwrap();
    assert!(
        again.verified,
        "restored state must serve verifiable results"
    );
    assert_eq!(again.ids, first.ids);

    let (chain_ok, height, digest) = client.verify().unwrap();
    assert!(chain_ok);
    assert!(height > 0);
    assert_eq!(digest, stat_before.digest);

    // The restored daemon keeps accepting writes.
    let (_, generation, _) = client.ingest(vec![(5, 50)]).unwrap();
    assert_eq!(generation, 3);
    let grown = client.search(Query::greater_than(35), 1_000).unwrap();
    assert!(grown.verified);
    let mut ids = grown.ids.clone();
    ids.sort_unstable();
    assert_eq!(ids, vec![4, 5]);

    client.shutdown().unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown exit: {status}");
}

#[test]
fn cli_round_trip_against_a_live_daemon() {
    let dir = temp_dir("cli");
    let socket = dir.join("slicerd.sock");
    let data = dir.join("data");
    let endpoint = Endpoint::Unix(socket.clone());
    let connect = format!("unix://{}", socket.display());

    let mut child = spawn_daemon(&socket, &data);
    // The daemon serves connections sequentially: close the readiness
    // probe before the CLI subprocesses queue up behind it.
    drop(connect_with_retry(&endpoint, &mut child));

    let cli = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_slicer-cli"))
            .args(["--connect", &connect])
            .args(args)
            .output()
            .expect("run slicer-cli")
    };

    let out = cli(&["ingest", "1:10", "2:200"]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("generation="));

    let out = cli(&["search", "gt", "100"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("verified=true"), "{text}");
    assert!(text.contains("records=[2]"), "{text}");

    let out = cli(&["verify"]);
    assert!(out.status.success(), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stdout).contains("chain_ok=true"));

    let out = cli(&["stat"]);
    assert!(out.status.success(), "{out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("generation=1"), "{text}");

    let out = cli(&["shutdown"]);
    assert!(out.status.success(), "{out:?}");
    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown exit: {status}");
}
