//! Cross-process trace continuity, end to end through the profiling
//! plane: a client opens its own root span, sends the daemon a request
//! carrying that span's trace id, and the daemon's adopted
//! `daemon.request` span must (a) graft under the client root in the
//! flamegraph fold and (b) land on the same Chrome-trace track
//! (`tid` = trace id) as the client span — one distributed trace, not
//! two disconnected ones.
//!
//! The test shares a single in-process telemetry handle between "client"
//! and daemon, which is exactly what the wire protocol reproduces across
//! real processes: the request's `trace_id` field is the only thing that
//! links the two sides, and it is the only thing this test relies on.

use slicer_core::Query;
use slicer_daemon::{Daemon, DaemonConfig, Request, RequestBody, ResponseBody};
use slicer_telemetry::{
    chrome_trace, Event, FanoutSink, LogicalClock, MemorySink, ProfileAggregator, ProfileMode,
    Sink, TelemetryHandle,
};
use std::path::PathBuf;
use std::sync::Arc;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slicerd-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn adopted_daemon_request_joins_the_client_trace() {
    let events = Arc::new(MemorySink::new());
    let profile = Arc::new(ProfileAggregator::new());
    let fanout = FanoutSink::new(vec![
        Arc::clone(&profile) as Arc<dyn Sink>,
        Arc::clone(&events) as Arc<dyn Sink>,
    ]);
    let telemetry = TelemetryHandle::with(Arc::new(LogicalClock::with_step(100)), Arc::new(fanout));

    let dir = temp_dir("adopt");
    let mut daemon = Daemon::open_profiled(
        &dir,
        DaemonConfig {
            seed: 11,
            value_bits: 8,
            ..DaemonConfig::default()
        },
        telemetry.clone(),
        Some(Arc::clone(&profile)),
        Some(Arc::clone(&events)),
    )
    .expect("fresh boot");

    // Plain request with no client-side trace: the daemon mints its own.
    let ingest = daemon.handle(&Request {
        trace_id: 0,
        body: RequestBody::Ingest {
            records: vec![(1, 10), (2, 20), (3, 30)],
        },
    });
    assert!(
        matches!(ingest.body, ResponseBody::Ingested { .. }),
        "ingest failed: {ingest:?}"
    );

    // The "CLI" side of the distributed trace: a client root span whose
    // trace id rides the request, exactly as DaemonClient sends it.
    let client_span = telemetry.span("cli.search");
    let ctx = client_span
        .ctx()
        .expect("recording handle yields a context");
    let client_trace = ctx.trace;
    let search = daemon.handle(&Request {
        trace_id: client_trace.0,
        body: RequestBody::Search {
            query: Query::less_than(25),
            payment: 1_000,
        },
    });
    match &search.body {
        ResponseBody::Found { verified, .. } => assert!(verified, "search must verify"),
        other => panic!("expected Found, got {other:?}"),
    }
    drop(client_span);

    // (a) Flamegraph continuity: the daemon's adopted request folds
    // *under* the client root — one stack, rooted at cli.search, with
    // the protocol's search span below the daemon dispatch frame.
    let folded = profile.snapshot().to_folded(ProfileMode::Wall);
    assert!(
        folded
            .lines()
            .any(|l| l.starts_with("cli.search;daemon.request;protocol.search")),
        "adopted request did not graft under the client root:\n{folded}"
    );
    // The plain ingest (trace_id 0) must NOT appear under the client.
    assert!(
        folded.lines().any(|l| l.starts_with("daemon.request;")),
        "daemon-minted ingest trace missing its own root:\n{folded}"
    );

    // (b) Chrome-trace continuity: client span and adopted daemon span
    // share the same track (tid = trace id) in the exported document.
    let recorded = events.events();
    let trace_of = |wanted: &str| -> Vec<u64> {
        recorded
            .iter()
            .filter_map(|e| match e {
                Event::SpanEnd { trace, name, .. } if name == wanted => Some(trace.0),
                _ => None,
            })
            .collect()
    };
    let client_traces = trace_of("cli.search");
    assert_eq!(client_traces, vec![client_trace.0]);
    let daemon_traces = trace_of("daemon.request");
    assert!(
        daemon_traces.contains(&client_trace.0),
        "no daemon.request span on the client trace: {daemon_traces:?}"
    );
    // And the two daemon requests really are on *different* tracks: the
    // ingest minted a fresh trace distinct from the client's.
    assert!(
        daemon_traces.iter().any(|t| *t != client_trace.0),
        "ingest unexpectedly joined the client trace: {daemon_traces:?}"
    );

    // The export itself stays a valid RFC 8259 document with both spans
    // on the shared tid.
    let doc = chrome_trace(&recorded);
    slicer_telemetry::json::parse(&doc).expect("chrome trace is valid JSON");
    let tid_marker = format!("\"tid\":{}", client_trace.0);
    let on_track = doc.matches(&tid_marker).count();
    assert!(
        on_track >= 2,
        "expected client + daemon spans on tid {}, found {on_track} in:\n{doc}",
        client_trace.0
    );

    let _ = std::fs::remove_dir_all(&dir);
}
