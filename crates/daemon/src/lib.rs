//! # slicer-daemon
//!
//! `slicerd` — a long-lived serving daemon for one Slicer deployment —
//! plus the framed wire protocol it speaks and a blocking client.
//!
//! The paper's cloud server is a long-lived party; this crate makes it
//! one in practice. `slicerd` boots by restoring the last sealed
//! generation from a [`slicer_persist::SegmentStore`] (byte-identical
//! accumulator digest, no index rebuild — see `Daemon::open`), then
//! serves `ingest` / `search` / `verify` / `stat` over TCP or a
//! Unix-domain socket. Every ingest commits a new on-disk generation
//! before the daemon acknowledges, so a `kill -9` at any moment loses at
//! most the unacknowledged batch.
//!
//! Wire format (see [`proto`]): 4-byte big-endian length prefix, then a
//! [`slicer_crypto::codec`]-encoded [`Request`]/[`Response`]. Requests
//! carry a trace id the daemon adopts for its per-request root span, so
//! client and daemon telemetry stitch into one distributed trace.
//!
//! Binaries: `slicerd` (the daemon) and `slicer-cli` (the front-end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod flightrec;
mod net;
pub mod proto;
mod server;

pub use client::{DaemonClient, MetricsReply, ProfileReply, SearchReply, StatReply};
pub use error::DaemonError;
pub use flightrec::{FlightRecord, FlightRecorder, FlightRecording, FLIGHTREC_FILE, IN_FLIGHT};
pub use net::{Endpoint, Listener, Meter, MeteredStream, Stream};
pub use proto::{
    ReadOutcome, Request, RequestBody, Response, ResponseBody, WireHistogram, MAX_FRAME_LEN,
};
pub use server::{hex, instrumented_telemetry, Boot, Daemon, DaemonConfig, DEFAULT_EVENT_RING};
