//! The `slicerd` daemon: one durable Slicer deployment behind a socket.
//!
//! Boot path: [`Daemon::open`] loads the last sealed generation from the
//! [`SegmentStore`] and resumes via `SlicerInstance::try_restore_with` —
//! no index rebuild, and the restored accumulator digest is asserted
//! byte-identical to the snapshot's before a single request is served.
//! With no sealed generation it performs a fresh paper-§IV setup.
//!
//! The daemon serves connections *sequentially* on the accept loop. This
//! is deliberate, not a simplification: request handling mutates one
//! `SlicerInstance` and one chain, the workspace's determinism lint
//! (`det.thread`) bans ad-hoc threading outside `slicer-par`, and the
//! instance already fans out CPU-bound witness work through the sanctioned
//! pool internally.

use crate::error::DaemonError;
use crate::flightrec::{FlightRecorder, FLIGHTREC_FILE};
use crate::net::{Listener, Meter, MeteredStream};
use crate::proto::{
    read_message_lenient, write_message, ReadOutcome, Request, RequestBody, Response, ResponseBody,
    MAX_FRAME_LEN,
};
use slicer_chain::Blockchain;
use slicer_core::{Query, RecordId, SlicerConfig, SlicerInstance};
use slicer_persist::{SegmentStore, Snapshot};
use slicer_telemetry::{
    FanoutSink, Level, MemoryLogSink, MemorySink, MonotonicClock, ProfileAggregator, ProfileMode,
    Sink, TelemetryHandle, TraceId,
};
use std::path::Path;
use std::sync::Arc;

/// How many accept failures in a row the serve loop tolerates before
/// concluding the listener is gone and bailing out.
const MAX_CONSECUTIVE_ACCEPT_FAILURES: u32 = 8;

/// Boot parameters for a daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Key-derivation seed for a *fresh* deployment. A restored daemon
    /// uses the persisted seed — the on-disk state is authoritative.
    pub seed: u64,
    /// Value bit width `b` for a fresh deployment (1..=64); likewise
    /// superseded by the persisted width on restore.
    pub value_bits: u8,
    /// Requests taking at least this long earn a warn-level
    /// `slow request` log line.
    pub slow_request_ns: u64,
    /// Capacity of the in-memory structured-log ring serving `Tail`
    /// and embedded in the flight recorder.
    pub log_ring: usize,
    /// How many recent requests the flight recorder retains.
    pub flightrec_requests: usize,
    /// Capacity of the bounded telemetry event ring a profiled daemon
    /// retains (see [`instrumented_telemetry`]).
    pub event_ring: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            seed: 7,
            value_bits: 16,
            slow_request_ns: 250_000_000,
            log_ring: slicer_telemetry::DEFAULT_LOG_RING,
            flightrec_requests: 64,
            event_ring: DEFAULT_EVENT_RING,
        }
    }
}

/// Default capacity of the daemon's bounded span-event ring: enough for
/// thousands of requests' spans, bounded so a long-lived `slicerd`
/// cannot grow without limit (evictions are counted, not silent).
pub const DEFAULT_EVENT_RING: usize = 65_536;

/// Builds the telemetry stack `slicerd` boots with: a live handle whose
/// event stream fans out to a [`ProfileAggregator`] (the live flamegraph
/// fold) and a bounded [`MemorySink`] ring of capacity `event_ring`
/// (recent raw events, eviction-counted). Pass the returned aggregator
/// and ring to [`Daemon::open_profiled`] so the `Profile` RPC, the
/// flight recorder and the `telemetry.events.dropped` gauge see them.
pub fn instrumented_telemetry(
    event_ring: usize,
) -> (TelemetryHandle, Arc<ProfileAggregator>, Arc<MemorySink>) {
    let profile = Arc::new(ProfileAggregator::new());
    let events = Arc::new(MemorySink::with_capacity(event_ring));
    let fanout = FanoutSink::new(vec![
        Arc::clone(&profile) as Arc<dyn Sink>,
        Arc::clone(&events) as Arc<dyn Sink>,
    ]);
    let telemetry = TelemetryHandle::with(Arc::new(MonotonicClock::new()), Arc::new(fanout));
    (telemetry, profile, events)
}

/// How the daemon came up: fresh setup or restored from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boot {
    /// No sealed generation existed; a fresh setup ran.
    Fresh,
    /// State was restored from the given sealed generation.
    Restored(u64),
}

/// One durable Slicer deployment: instance + chain + segment store,
/// plus the operations plane (log ring, flight recorder, byte meter).
#[derive(Debug)]
pub struct Daemon {
    instance: SlicerInstance,
    chain: Blockchain,
    store: SegmentStore,
    seed: u64,
    generation: u64,
    boot: Boot,
    telemetry: TelemetryHandle,
    slow_request_ns: u64,
    boot_ns: u64,
    meter: Meter,
    log_ring: Arc<MemoryLogSink>,
    flightrec: FlightRecorder,
    /// The live collapsed-stack fold, when profiling is enabled.
    profile: Option<Arc<ProfileAggregator>>,
    /// The bounded raw-event ring, when profiling is enabled.
    events: Option<Arc<MemorySink>>,
}

impl Daemon {
    /// Opens the segment store at `data_dir` and boots: restore the last
    /// sealed generation if one exists (asserting the restored
    /// accumulator digest byte-identical to the snapshot's), otherwise
    /// run a fresh setup with `config`.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] on out-of-range `value_bits`,
    /// [`DaemonError::Persist`] when the store directory is unusable or
    /// holds only corrupt generations, [`DaemonError::Slicer`] when
    /// setup/restore fails.
    pub fn open(
        data_dir: &Path,
        config: DaemonConfig,
        telemetry: TelemetryHandle,
    ) -> Result<Self, DaemonError> {
        Self::open_profiled(data_dir, config, telemetry, None, None)
    }

    /// [`Daemon::open`] plus the profiling plane: `profile` is the
    /// aggregator the handle's sink already feeds (see
    /// [`instrumented_telemetry`]) — the daemon serves its snapshots via
    /// the `Profile` RPC and embeds its folded stacks in flight
    /// recordings; `events` is the bounded raw-event ring whose
    /// evictions surface in the `telemetry.events.dropped` gauge.
    ///
    /// # Errors
    ///
    /// As [`Daemon::open`].
    pub fn open_profiled(
        data_dir: &Path,
        config: DaemonConfig,
        telemetry: TelemetryHandle,
        profile: Option<Arc<ProfileAggregator>>,
        events: Option<Arc<MemorySink>>,
    ) -> Result<Self, DaemonError> {
        if !(1..=64).contains(&config.value_bits) {
            return Err(DaemonError::Config(format!(
                "value_bits must be in 1..=64, got {}",
                config.value_bits
            )));
        }
        let store = SegmentStore::open(data_dir)?;
        let mut chain = Blockchain::new();
        let workers = slicer_par::configured_workers();

        // The operations plane comes up before the instance: the log
        // ring catches boot-time records and the flight recorder's first
        // persist happens on the first request.
        let log_ring = Arc::new(MemoryLogSink::with_capacity(config.log_ring));
        telemetry.add_log_sink(log_ring.clone() as _);
        let flightrec = FlightRecorder::new(
            data_dir.join(FLIGHTREC_FILE),
            config.flightrec_requests,
            log_ring.clone(),
            profile.clone(),
        );
        let boot_ns = telemetry.now_nanos();

        let daemon = match store.load()? {
            Some((generation, snapshot)) => {
                let expected = snapshot.accumulator_digest();
                let seed = snapshot.meta.seed;
                let slicer_config = snapshot.meta.config_with_workers(workers);
                let instance = SlicerInstance::try_restore_with(
                    slicer_config,
                    seed,
                    &mut chain,
                    telemetry.clone(),
                    snapshot.owner,
                    snapshot.accumulator,
                    snapshot.cloud,
                )?;
                let daemon = Daemon {
                    instance,
                    chain,
                    store,
                    seed,
                    generation,
                    boot: Boot::Restored(generation),
                    telemetry,
                    slow_request_ns: config.slow_request_ns,
                    boot_ns,
                    meter: Meter::new(),
                    log_ring,
                    flightrec,
                    profile,
                    events,
                };
                let restored = daemon.digest();
                if restored != expected {
                    return Err(DaemonError::Slicer(format!(
                        "restored digest diverges from snapshot (generation {generation}): \
                         {} != {}",
                        hex(&restored),
                        hex(&expected)
                    )));
                }
                daemon
            }
            None => {
                let slicer_config =
                    SlicerConfig::with_bits(config.value_bits).with_workers(workers);
                let instance = SlicerInstance::try_setup_with(
                    slicer_config,
                    config.seed,
                    &mut chain,
                    telemetry.clone(),
                )?;
                Daemon {
                    instance,
                    chain,
                    store,
                    seed: config.seed,
                    generation: 0,
                    boot: Boot::Fresh,
                    telemetry,
                    slow_request_ns: config.slow_request_ns,
                    boot_ns,
                    meter: Meter::new(),
                    log_ring,
                    flightrec,
                    profile,
                    events,
                }
            }
        };
        daemon.telemetry.log(
            Level::Info,
            "slicerd.boot",
            match daemon.boot {
                Boot::Fresh => "fresh setup complete",
                Boot::Restored(_) => "restored from sealed generation",
            },
            vec![
                ("generation", daemon.generation.into()),
                ("restored", matches!(daemon.boot, Boot::Restored(_)).into()),
            ],
        );
        Ok(daemon)
    }

    /// How this daemon booted.
    pub fn boot(&self) -> Boot {
        self.boot
    }

    /// The last sealed on-disk generation (0 = nothing persisted yet).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Canonical accumulator digest (big-endian, modulus-width padded) —
    /// the bytes the chain holds and the crash/restart cycle compares.
    pub fn digest(&self) -> Vec<u8> {
        let width = self.instance.owner.config().accumulator.element_bytes();
        self.instance.owner.accumulator().to_bytes_be_padded(width)
    }

    /// The daemon's flight recorder — `slicerd` clones this into its
    /// panic hook and persists on shutdown / fatal serve errors.
    pub fn flight_recorder(&self) -> FlightRecorder {
        self.flightrec.clone()
    }

    /// Handles one request, opening the per-request telemetry root span
    /// inside the client's trace (a zero trace id mints a fresh trace).
    /// Domain failures become [`ResponseBody::Error`]; the daemon
    /// survives them.
    ///
    /// Accounting per request: `rpc.requests` counter, the per-kind
    /// `rpc.<kind>.ns` histogram, `rpc.error.internal` on a domain
    /// failure, a flight-recorder entry persisted in-flight *before*
    /// dispatch (so `kill -9` mid-request names the request on disk) and
    /// finalized after, and a warn-level log line above the configured
    /// slow-request threshold.
    pub fn handle(&mut self, request: &Request) -> Response {
        let kind = request.body.kind();
        self.telemetry.count("rpc.requests", 1);
        // The daemon dispatches sequentially, so in-flight is 0 or 1 —
        // but a scrape served *during* a request (Metrics is itself a
        // request) truthfully reports 1.
        self.telemetry.gauge("rpc.inflight", 1);
        let start_ns = self.telemetry.now_nanos();
        let (seq, persist_err) = self.flightrec.begin(request.trace_id, kind, start_ns);
        if let Some(e) = persist_err {
            self.warn_persist(&e);
        }
        let mut span = self
            .telemetry
            .span_in_trace("daemon.request", TraceId(request.trace_id));
        let trace_id = span.ctx().map_or(request.trace_id, |c| c.trace.0);
        let body = match &request.body {
            RequestBody::Ingest { records } => self.ingest(records),
            RequestBody::Search { query, payment } => self.search(query, *payment),
            RequestBody::Verify => self.verify(),
            RequestBody::Stat => Ok(self.stat()),
            RequestBody::Shutdown => Ok(ResponseBody::ShuttingDown),
            RequestBody::Metrics => Ok(self.metrics_report()),
            RequestBody::Tail { count } => Ok(self.tail(*count)),
            RequestBody::Profile { svg, gas } => self.profile_report(*svg, *gas),
        }
        .unwrap_or_else(|e| ResponseBody::Error(e.to_string()));
        let outcome = match &body {
            ResponseBody::Error(msg) => {
                self.telemetry.count("rpc.error.internal", 1);
                format!("error: {msg}")
            }
            _ => "ok".to_string(),
        };
        if span.is_recording() {
            span.attr("rpc.kind", kind);
            span.attr("outcome.error", matches!(body, ResponseBody::Error(_)));
        }
        drop(span);
        let duration_ns = self.telemetry.now_nanos().saturating_sub(start_ns);
        self.telemetry
            .observe_ns(request.body.metric(), duration_ns);
        if duration_ns >= self.slow_request_ns {
            self.telemetry.log(
                Level::Warn,
                "slicerd.rpc",
                "slow request",
                vec![
                    ("rpc.kind", kind.into()),
                    ("duration.ns", duration_ns.into()),
                    ("threshold.ns", self.slow_request_ns.into()),
                    ("trace", trace_id.into()),
                ],
            );
        }
        if let Some(e) = self.flightrec.end(seq, duration_ns, &outcome) {
            self.warn_persist(&e);
        }
        self.telemetry.gauge("rpc.inflight", 0);
        Response { trace_id, body }
    }

    /// Logs a flight-recorder persist failure — the one fault the
    /// recorder never propagates into request handling.
    fn warn_persist(&self, e: &DaemonError) {
        self.telemetry.count("rpc.error.io", 1);
        self.telemetry.log(
            Level::Warn,
            "slicerd.flightrec",
            format!("flight recorder persist failed: {e}"),
            vec![],
        );
    }

    fn ingest(&mut self, records: &[(u64, u64)]) -> Result<ResponseBody, DaemonError> {
        let batch: Vec<(RecordId, u64)> = records
            .iter()
            .map(|&(id, value)| (RecordId::from_u64(id), value))
            .collect();
        self.instance.insert(&mut self.chain, &batch)?;
        let snapshot = Snapshot::capture(self.seed, &self.instance.owner, &self.instance.cloud);
        self.generation = self.store.commit(&snapshot)?;
        self.telemetry.count("daemon.commits", 1);
        Ok(ResponseBody::Ingested {
            records: batch.len() as u64,
            generation: self.generation,
            digest: snapshot.accumulator_digest(),
        })
    }

    fn search(&mut self, query: &Query, payment: u128) -> Result<ResponseBody, DaemonError> {
        let outcome = self.instance.search(&mut self.chain, query, payment)?;
        Ok(ResponseBody::Found {
            ids: outcome
                .records
                .iter()
                .filter_map(RecordId::as_u64)
                .collect(),
            verified: outcome.verified,
            paid_cloud: outcome.paid_cloud,
            request_gas: outcome.request_gas,
            verify_gas: outcome.verify_gas,
            digest: self.digest(),
        })
    }

    fn verify(&mut self) -> Result<ResponseBody, DaemonError> {
        Ok(ResponseBody::Verified {
            chain_ok: self.chain.verify_chain(),
            height: self.chain.height(),
            digest: self.digest(),
        })
    }

    fn stat(&self) -> ResponseBody {
        let storage = self.instance.cloud.storage();
        ResponseBody::Stats {
            index_entries: storage.index.len() as u64,
            primes: storage.primes.len() as u64,
            generation: self.generation,
            chain_height: self.chain.height(),
            digest: self.digest(),
        }
    }

    fn metrics_report(&self) -> ResponseBody {
        // Refresh transport gauges right before the snapshot so a
        // scrape always sees current byte counts, not the state at the
        // end of some earlier connection.
        self.telemetry.gauge("net.bytes_in", self.meter.bytes_in());
        self.telemetry
            .gauge("net.bytes_out", self.meter.bytes_out());
        self.telemetry.gauge("log.dropped", self.log_ring.dropped());
        // Telemetry-plane losses: event-ring evictions plus profile
        // stacks discarded at the aggregator's cap.
        let events_dropped = self.events.as_ref().map_or(0, |e| e.dropped())
            + self.profile.as_ref().map_or(0, |p| p.dropped_stacks());
        self.telemetry
            .gauge("telemetry.events.dropped", events_dropped);
        let snap = self.telemetry.snapshot();
        ResponseBody::MetricsReport {
            uptime_ns: self.telemetry.now_nanos().saturating_sub(self.boot_ns),
            version: env!("CARGO_PKG_VERSION").to_string(),
            boot: match self.boot {
                Boot::Fresh => "fresh".to_string(),
                Boot::Restored(generation) => format!("restored:{generation}"),
            },
            generation: self.generation,
            prometheus: snap.to_prometheus_text(),
            json: snap.to_json(),
            counters: snap.counters().to_vec(),
            gauges: snap.gauges().to_vec(),
            histograms: snap
                .histograms()
                .iter()
                .map(|(name, h)| (name.clone(), h.into()))
                .collect(),
        }
    }

    fn profile_report(&self, svg: bool, gas: bool) -> Result<ResponseBody, DaemonError> {
        let Some(agg) = &self.profile else {
            return Err(DaemonError::Config(
                "profiling is not enabled on this daemon (no profile aggregator attached)".into(),
            ));
        };
        let profile = agg.snapshot();
        let mode = if gas {
            ProfileMode::Gas
        } else {
            ProfileMode::Wall
        };
        let mode_name = if gas { "gas" } else { "wall" };
        let rendered = if svg {
            profile.to_svg(mode, &format!("slicerd {mode_name} profile"))
        } else {
            profile.to_folded(mode)
        };
        Ok(ResponseBody::ProfileReport {
            format: if svg { "svg" } else { "folded" }.to_string(),
            mode: mode_name.to_string(),
            rendered,
            total: profile.total(mode),
            stacks: profile.entries.len() as u64,
            dropped_stacks: profile.dropped_stacks,
        })
    }

    fn tail(&self, count: u64) -> ResponseBody {
        let n = usize::try_from(count).unwrap_or(usize::MAX);
        ResponseBody::LogTail {
            lines: self
                .log_ring
                .tail(n)
                .iter()
                .map(slicer_telemetry::LogRecord::to_json_line)
                .collect(),
            dropped: self.log_ring.dropped(),
        }
    }

    /// Serves connections sequentially until a `Shutdown` request
    /// arrives. A failed connection — or a failed accept — is logged
    /// and counted under the `rpc.error.*` taxonomy and the loop
    /// continues: one bad client never takes the daemon down.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] after [`MAX_CONSECUTIVE_ACCEPT_FAILURES`]
    /// accepts fail back-to-back (the listener is gone — nothing left
    /// to serve). The flight recorder is persisted with reason
    /// `"serve-error"` before bailing.
    pub fn serve(&mut self, listener: &Listener) -> Result<(), DaemonError> {
        let mut failed_accepts = 0u32;
        loop {
            let stream = match listener.accept() {
                Ok(stream) => {
                    failed_accepts = 0;
                    stream
                }
                Err(e) => {
                    failed_accepts += 1;
                    self.telemetry.count("rpc.error.io", 1);
                    self.telemetry.log(
                        Level::Error,
                        "slicerd.net",
                        format!("accept failed: {e}"),
                        vec![("consecutive", failed_accepts.into())],
                    );
                    if failed_accepts >= MAX_CONSECUTIVE_ACCEPT_FAILURES {
                        if let Err(persist) = self.flightrec.persist("serve-error") {
                            self.warn_persist(&persist);
                        }
                        return Err(e);
                    }
                    continue;
                }
            };
            self.telemetry.count("net.connections", 1);
            let conn_start_ns = self.telemetry.now_nanos();
            let served = self.serve_connection(MeteredStream::new(stream, self.meter.clone()));
            self.telemetry.observe_ns(
                "net.connection.lifetime.ns",
                self.telemetry.now_nanos().saturating_sub(conn_start_ns),
            );
            match served {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => {
                    self.telemetry.count(error_counter(&e), 1);
                    self.telemetry.log(
                        Level::Warn,
                        "slicerd.net",
                        format!("connection error: {e}"),
                        vec![],
                    );
                }
            }
        }
    }

    /// Serves one connection until the peer closes it. Returns `true`
    /// when the peer requested shutdown. Oversized and undecodable
    /// frames are answered with a clean [`ResponseBody::Error`] (and
    /// counted under `rpc.error.oversize` / `rpc.error.decode`) instead
    /// of dropping the connection — the lenient reader keeps the stream
    /// framed in both cases.
    fn serve_connection(&mut self, mut stream: MeteredStream) -> Result<bool, DaemonError> {
        loop {
            let request = match read_message_lenient::<Request>(&mut stream)? {
                ReadOutcome::Eof => return Ok(false),
                ReadOutcome::Msg(request) => request,
                ReadOutcome::Oversize { declared } => {
                    self.telemetry.count("rpc.error.oversize", 1);
                    self.telemetry.log(
                        Level::Warn,
                        "slicerd.rpc",
                        "oversize frame rejected",
                        vec![("declared", declared.into()), ("cap", MAX_FRAME_LEN.into())],
                    );
                    write_message(
                        &mut stream,
                        &Response {
                            trace_id: 0,
                            body: ResponseBody::Error(format!(
                                "frame too large: {declared} bytes exceeds cap {MAX_FRAME_LEN}"
                            )),
                        },
                    )?;
                    continue;
                }
                ReadOutcome::Undecodable(msg) => {
                    self.telemetry.count("rpc.error.decode", 1);
                    self.telemetry.log(
                        Level::Warn,
                        "slicerd.rpc",
                        format!("undecodable request: {msg}"),
                        vec![],
                    );
                    write_message(
                        &mut stream,
                        &Response {
                            trace_id: 0,
                            body: ResponseBody::Error(format!("undecodable request: {msg}")),
                        },
                    )?;
                    continue;
                }
            };
            let shutdown = matches!(request.body, RequestBody::Shutdown);
            let response = self.handle(&request);
            write_message(&mut stream, &response)?;
            if shutdown {
                return Ok(true);
            }
        }
    }
}

/// Maps a transport-level failure to its `rpc.error.*` taxonomy counter.
fn error_counter(e: &DaemonError) -> &'static str {
    match e {
        DaemonError::Io(_) => "rpc.error.io",
        DaemonError::Protocol(_) => "rpc.error.protocol",
        _ => "rpc.error.internal",
    }
}

/// Lowercase hex rendering for digests in error messages and logs.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slicer-daemon-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> DaemonConfig {
        DaemonConfig {
            seed: 11,
            value_bits: 8,
            ..DaemonConfig::default()
        }
    }

    #[test]
    fn fresh_boot_serves_ingest_search_verify_stat() {
        let dir = tmp("fresh");
        let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
        assert_eq!(daemon.boot(), Boot::Fresh);

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(1, 10), (2, 20), (3, 30)],
            },
        });
        let ResponseBody::Ingested {
            records,
            generation,
            ..
        } = resp.body
        else {
            panic!("want Ingested, got {:?}", resp.body);
        };
        assert_eq!(records, 3);
        assert_eq!(generation, 1);

        let resp = daemon.handle(&Request {
            trace_id: 42,
            body: RequestBody::Search {
                query: Query::less_than(25),
                payment: 1_000,
            },
        });
        let ResponseBody::Found { ids, verified, .. } = resp.body else {
            panic!("want Found, got {:?}", resp.body);
        };
        assert!(verified);
        assert_eq!(ids, vec![1, 2]);

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Verify,
        });
        let ResponseBody::Verified {
            chain_ok, height, ..
        } = resp.body
        else {
            panic!("want Verified, got {:?}", resp.body);
        };
        assert!(chain_ok);
        assert!(height > 0);

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Stat,
        });
        let ResponseBody::Stats {
            index_entries,
            primes,
            ..
        } = resp.body
        else {
            panic!("want Stats, got {:?}", resp.body);
        };
        // Each record contributes one slice label per covered keyword,
        // so the encrypted index strictly dominates the record count.
        assert!(index_entries >= 3, "got {index_entries}");
        assert!(primes >= 3, "got {primes}");
    }

    #[test]
    fn reopen_restores_identical_digest_without_rebuild() {
        let dir = tmp("reopen");
        let digest_before;
        {
            let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
            daemon.handle(&Request {
                trace_id: 0,
                body: RequestBody::Ingest {
                    records: vec![(7, 70), (8, 80)],
                },
            });
            digest_before = daemon.digest();
        } // dropped without any clean shutdown — like a crash after commit

        let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
        assert_eq!(daemon.boot(), Boot::Restored(1));
        assert_eq!(
            daemon.digest(),
            digest_before,
            "digest must be byte-identical"
        );

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Search {
                query: Query::greater_than(75),
                payment: 500,
            },
        });
        let ResponseBody::Found { ids, verified, .. } = resp.body else {
            panic!("want Found, got {:?}", resp.body);
        };
        assert!(verified, "restored index must serve verifiable results");
        assert_eq!(ids, vec![8]);
    }

    #[test]
    fn domain_errors_become_error_responses_not_crashes() {
        let dir = tmp("err");
        let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
        // Value 300 exceeds the 8-bit domain: the owner rejects it.
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(1, 300)],
            },
        });
        assert!(matches!(resp.body, ResponseBody::Error(_)));
        // The daemon still serves afterwards.
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Stat,
        });
        assert!(matches!(resp.body, ResponseBody::Stats { .. }));
    }

    #[test]
    fn requests_are_accounted_and_metrics_scrape_reflects_them() {
        use slicer_telemetry::{LogicalClock, NullSink};
        let dir = tmp("metrics");
        let telemetry =
            TelemetryHandle::with(Arc::new(LogicalClock::with_step(1_000)), Arc::new(NullSink));
        let mut daemon = Daemon::open(&dir, cfg(), telemetry.clone()).unwrap();

        daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(1, 10), (2, 20)],
            },
        });
        daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Search {
                query: Query::less_than(15),
                payment: 100,
            },
        });
        // A domain failure lands in the internal-error bucket.
        daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(9, 9_999)],
            },
        });

        let ResponseBody::MetricsReport {
            boot,
            generation,
            prometheus,
            json,
            counters,
            histograms,
            ..
        } = daemon.metrics_report()
        else {
            panic!("want MetricsReport");
        };
        assert_eq!(boot, "fresh");
        assert_eq!(generation, 1);
        let counter = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        // Metrics itself is not yet observed (the report is built
        // mid-request), so only the three handled requests count.
        assert_eq!(counter("rpc.requests"), 3);
        assert_eq!(counter("rpc.error.internal"), 1);
        let (_, ingest) = histograms
            .iter()
            .find(|(n, _)| n == "rpc.ingest.ns")
            .expect("ingest histogram");
        assert_eq!(ingest.count, 2);
        assert!(prometheus.contains("slicer_rpc_requests 3"), "{prometheus}");
        // The JSON export must be RFC 8259-valid.
        slicer_telemetry::json::parse(&json).expect("valid JSON export");
    }

    #[test]
    fn tail_returns_json_log_lines_and_flightrec_names_requests() {
        use slicer_telemetry::{LogicalClock, NullSink};
        let dir = tmp("tail");
        let telemetry =
            TelemetryHandle::with(Arc::new(LogicalClock::with_step(1)), Arc::new(NullSink));
        let config = DaemonConfig {
            slow_request_ns: 0, // every request logs as slow
            ..cfg()
        };
        let mut daemon = Daemon::open(&dir, config, telemetry).unwrap();
        daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Stat,
        });

        let ResponseBody::LogTail { lines, dropped } = daemon.tail(10) else {
            panic!("want LogTail");
        };
        assert_eq!(dropped, 0);
        assert!(!lines.is_empty());
        for line in &lines {
            slicer_telemetry::json::parse(line).expect("valid JSON line");
        }
        assert!(
            lines.iter().any(|l| l.contains("slow request")),
            "{lines:?}"
        );

        // The flight recorder persisted the stat request with its
        // final outcome — and a fresh scrape request, begun but not
        // ended, shows up as in-flight on disk.
        let (_, err) = daemon.flightrec.begin(7, "metrics", 123);
        assert!(err.is_none());
        let rec = crate::flightrec::FlightRecording::load(daemon.flightrec.path()).unwrap();
        assert_eq!(rec.reason, "request-start");
        assert!(rec
            .requests
            .iter()
            .any(|r| r.kind == "stat" && r.outcome == "ok"));
        let in_flight = rec.in_flight().expect("one in-flight request");
        assert_eq!(in_flight.kind, "metrics");
    }

    #[test]
    fn profile_rpc_serves_stacks_that_reconcile_with_gas_counters() {
        use slicer_telemetry::{LogicalClock, ProfileAggregator};
        let dir = tmp("profile");
        let profile = Arc::new(ProfileAggregator::new());
        // A deliberately tiny event ring: the boot + request span
        // traffic must overflow it, exercising eviction accounting.
        let events = Arc::new(MemorySink::with_capacity(4));
        let fanout = FanoutSink::new(vec![
            Arc::clone(&profile) as Arc<dyn Sink>,
            Arc::clone(&events) as Arc<dyn Sink>,
        ]);
        let telemetry =
            TelemetryHandle::with(Arc::new(LogicalClock::with_step(100)), Arc::new(fanout));
        let mut daemon =
            Daemon::open_profiled(&dir, cfg(), telemetry.clone(), Some(profile), Some(events))
                .unwrap();
        daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(1, 10), (2, 20), (3, 30)],
            },
        });
        daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Search {
                query: Query::less_than(25),
                payment: 1_000,
            },
        });

        // Folded wall profile: per-request spans fold under one
        // daemon.request root.
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Profile {
                svg: false,
                gas: false,
            },
        });
        let ResponseBody::ProfileReport {
            format,
            mode,
            rendered,
            total,
            stacks,
            ..
        } = resp.body
        else {
            panic!("want ProfileReport, got {:?}", resp.body);
        };
        assert_eq!(format, "folded");
        assert_eq!(mode, "wall");
        assert!(stacks > 0);
        assert!(total > 0);
        assert!(
            rendered.lines().any(|l| l.starts_with("daemon.request;")),
            "{rendered}"
        );

        // Gas profile total reconciles exactly with the phase gas
        // counters (the span attrs carry the same settle/verify split).
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Profile {
                svg: false,
                gas: true,
            },
        });
        let ResponseBody::ProfileReport { total, .. } = resp.body else {
            panic!("want ProfileReport");
        };
        let phase_gas: u64 = ["setup", "build", "token", "search", "verify", "settle"]
            .iter()
            .map(|p| {
                telemetry
                    .counter_value(&format!("phase.{p}.gas"))
                    .unwrap_or(0)
            })
            .sum();
        assert!(phase_gas > 0);
        assert_eq!(total, phase_gas, "gas profile must match phase counters");

        // SVG rendering is well-formed XML.
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Profile {
                svg: true,
                gas: false,
            },
        });
        let ResponseBody::ProfileReport {
            format, rendered, ..
        } = resp.body
        else {
            panic!("want ProfileReport");
        };
        assert_eq!(format, "svg");
        slicer_telemetry::xml::check(&rendered).expect("well-formed SVG");

        // The tiny event ring overflowed; the scrape surfaces it, and
        // the in-flight gauge reads 1 mid-request by construction.
        let ResponseBody::MetricsReport { gauges, .. } = daemon.metrics_report() else {
            panic!("want MetricsReport");
        };
        let gauge = |name: &str| {
            gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        assert!(gauge("telemetry.events.dropped") > 0);

        // An unprofiled daemon answers Profile with a clean error.
        let dir2 = tmp("unprofiled");
        let mut plain = Daemon::open(&dir2, cfg(), TelemetryHandle::disabled()).unwrap();
        let resp = plain.handle(&Request {
            trace_id: 0,
            body: RequestBody::Profile {
                svg: false,
                gas: false,
            },
        });
        assert!(matches!(resp.body, ResponseBody::Error(_)));
    }

    #[test]
    fn bad_value_bits_is_a_config_error() {
        let dir = tmp("bits");
        let bad = DaemonConfig {
            seed: 1,
            value_bits: 0,
            ..DaemonConfig::default()
        };
        assert!(matches!(
            Daemon::open(&dir, bad, TelemetryHandle::disabled()),
            Err(DaemonError::Config(_))
        ));
    }
}
