//! The `slicerd` daemon: one durable Slicer deployment behind a socket.
//!
//! Boot path: [`Daemon::open`] loads the last sealed generation from the
//! [`SegmentStore`] and resumes via `SlicerInstance::try_restore_with` —
//! no index rebuild, and the restored accumulator digest is asserted
//! byte-identical to the snapshot's before a single request is served.
//! With no sealed generation it performs a fresh paper-§IV setup.
//!
//! The daemon serves connections *sequentially* on the accept loop. This
//! is deliberate, not a simplification: request handling mutates one
//! `SlicerInstance` and one chain, the workspace's determinism lint
//! (`det.thread`) bans ad-hoc threading outside `slicer-par`, and the
//! instance already fans out CPU-bound witness work through the sanctioned
//! pool internally.

use crate::error::DaemonError;
use crate::net::{Listener, Stream};
use crate::proto::{read_message, write_message, Request, RequestBody, Response, ResponseBody};
use slicer_chain::Blockchain;
use slicer_core::{Query, RecordId, SlicerConfig, SlicerInstance};
use slicer_persist::{SegmentStore, Snapshot};
use slicer_telemetry::{TelemetryHandle, TraceId};
use std::path::Path;

/// Boot parameters for a daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Key-derivation seed for a *fresh* deployment. A restored daemon
    /// uses the persisted seed — the on-disk state is authoritative.
    pub seed: u64,
    /// Value bit width `b` for a fresh deployment (1..=64); likewise
    /// superseded by the persisted width on restore.
    pub value_bits: u8,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            seed: 7,
            value_bits: 16,
        }
    }
}

/// How the daemon came up: fresh setup or restored from disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Boot {
    /// No sealed generation existed; a fresh setup ran.
    Fresh,
    /// State was restored from the given sealed generation.
    Restored(u64),
}

/// One durable Slicer deployment: instance + chain + segment store.
#[derive(Debug)]
pub struct Daemon {
    instance: SlicerInstance,
    chain: Blockchain,
    store: SegmentStore,
    seed: u64,
    generation: u64,
    boot: Boot,
    telemetry: TelemetryHandle,
}

impl Daemon {
    /// Opens the segment store at `data_dir` and boots: restore the last
    /// sealed generation if one exists (asserting the restored
    /// accumulator digest byte-identical to the snapshot's), otherwise
    /// run a fresh setup with `config`.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] on out-of-range `value_bits`,
    /// [`DaemonError::Persist`] when the store directory is unusable or
    /// holds only corrupt generations, [`DaemonError::Slicer`] when
    /// setup/restore fails.
    pub fn open(
        data_dir: &Path,
        config: DaemonConfig,
        telemetry: TelemetryHandle,
    ) -> Result<Self, DaemonError> {
        if !(1..=64).contains(&config.value_bits) {
            return Err(DaemonError::Config(format!(
                "value_bits must be in 1..=64, got {}",
                config.value_bits
            )));
        }
        let store = SegmentStore::open(data_dir)?;
        let mut chain = Blockchain::new();
        let workers = slicer_par::configured_workers();

        match store.load()? {
            Some((generation, snapshot)) => {
                let expected = snapshot.accumulator_digest();
                let seed = snapshot.meta.seed;
                let slicer_config = snapshot.meta.config_with_workers(workers);
                let instance = SlicerInstance::try_restore_with(
                    slicer_config,
                    seed,
                    &mut chain,
                    telemetry.clone(),
                    snapshot.owner,
                    snapshot.accumulator,
                    snapshot.cloud,
                )?;
                let daemon = Daemon {
                    instance,
                    chain,
                    store,
                    seed,
                    generation,
                    boot: Boot::Restored(generation),
                    telemetry,
                };
                let restored = daemon.digest();
                if restored != expected {
                    return Err(DaemonError::Slicer(format!(
                        "restored digest diverges from snapshot (generation {generation}): \
                         {} != {}",
                        hex(&restored),
                        hex(&expected)
                    )));
                }
                Ok(daemon)
            }
            None => {
                let slicer_config =
                    SlicerConfig::with_bits(config.value_bits).with_workers(workers);
                let instance = SlicerInstance::try_setup_with(
                    slicer_config,
                    config.seed,
                    &mut chain,
                    telemetry.clone(),
                )?;
                Ok(Daemon {
                    instance,
                    chain,
                    store,
                    seed: config.seed,
                    generation: 0,
                    boot: Boot::Fresh,
                    telemetry,
                })
            }
        }
    }

    /// How this daemon booted.
    pub fn boot(&self) -> Boot {
        self.boot
    }

    /// The last sealed on-disk generation (0 = nothing persisted yet).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Canonical accumulator digest (big-endian, modulus-width padded) —
    /// the bytes the chain holds and the crash/restart cycle compares.
    pub fn digest(&self) -> Vec<u8> {
        let width = self.instance.owner.config().accumulator.element_bytes();
        self.instance.owner.accumulator().to_bytes_be_padded(width)
    }

    /// Handles one request, opening the per-request telemetry root span
    /// inside the client's trace (a zero trace id mints a fresh trace).
    /// Domain failures become [`ResponseBody::Error`]; the daemon
    /// survives them.
    pub fn handle(&mut self, request: &Request) -> Response {
        let mut span = self
            .telemetry
            .span_in_trace("daemon.request", TraceId(request.trace_id));
        let trace_id = span.ctx().map_or(request.trace_id, |c| c.trace.0);
        let body = match &request.body {
            RequestBody::Ingest { records } => self.ingest(records),
            RequestBody::Search { query, payment } => self.search(query, *payment),
            RequestBody::Verify => self.verify(),
            RequestBody::Stat => Ok(self.stat()),
            RequestBody::Shutdown => Ok(ResponseBody::ShuttingDown),
        }
        .unwrap_or_else(|e| ResponseBody::Error(e.to_string()));
        if span.is_recording() {
            span.attr("outcome.error", matches!(body, ResponseBody::Error(_)));
        }
        Response { trace_id, body }
    }

    fn ingest(&mut self, records: &[(u64, u64)]) -> Result<ResponseBody, DaemonError> {
        let batch: Vec<(RecordId, u64)> = records
            .iter()
            .map(|&(id, value)| (RecordId::from_u64(id), value))
            .collect();
        self.instance.insert(&mut self.chain, &batch)?;
        let snapshot = Snapshot::capture(self.seed, &self.instance.owner, &self.instance.cloud);
        self.generation = self.store.commit(&snapshot)?;
        self.telemetry.count("daemon.commits", 1);
        Ok(ResponseBody::Ingested {
            records: batch.len() as u64,
            generation: self.generation,
            digest: snapshot.accumulator_digest(),
        })
    }

    fn search(&mut self, query: &Query, payment: u128) -> Result<ResponseBody, DaemonError> {
        let outcome = self.instance.search(&mut self.chain, query, payment)?;
        Ok(ResponseBody::Found {
            ids: outcome
                .records
                .iter()
                .filter_map(RecordId::as_u64)
                .collect(),
            verified: outcome.verified,
            paid_cloud: outcome.paid_cloud,
            request_gas: outcome.request_gas,
            verify_gas: outcome.verify_gas,
            digest: self.digest(),
        })
    }

    fn verify(&mut self) -> Result<ResponseBody, DaemonError> {
        Ok(ResponseBody::Verified {
            chain_ok: self.chain.verify_chain(),
            height: self.chain.height(),
            digest: self.digest(),
        })
    }

    fn stat(&self) -> ResponseBody {
        let storage = self.instance.cloud.storage();
        ResponseBody::Stats {
            index_entries: storage.index.len() as u64,
            primes: storage.primes.len() as u64,
            generation: self.generation,
            chain_height: self.chain.height(),
            digest: self.digest(),
        }
    }

    /// Serves connections sequentially until a `Shutdown` request
    /// arrives. A failed connection is logged and the loop continues —
    /// one bad client never takes the daemon down.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when `accept` itself fails (the listener is
    /// gone — nothing left to serve).
    pub fn serve(&mut self, listener: &Listener) -> Result<(), DaemonError> {
        loop {
            let stream = listener.accept()?;
            match self.serve_connection(stream) {
                Ok(true) => return Ok(()),
                Ok(false) => {}
                Err(e) => eprintln!("slicerd: connection error: {e}"),
            }
        }
    }

    /// Serves one connection until the peer closes it. Returns `true`
    /// when the peer requested shutdown.
    fn serve_connection(&mut self, mut stream: Stream) -> Result<bool, DaemonError> {
        loop {
            let Some(request) = read_message::<Request>(&mut stream)? else {
                return Ok(false);
            };
            let shutdown = matches!(request.body, RequestBody::Shutdown);
            let response = self.handle(&request);
            write_message(&mut stream, &response)?;
            if shutdown {
                return Ok(true);
            }
        }
    }
}

/// Lowercase hex rendering for digests in error messages and logs.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slicer-daemon-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn cfg() -> DaemonConfig {
        DaemonConfig {
            seed: 11,
            value_bits: 8,
        }
    }

    #[test]
    fn fresh_boot_serves_ingest_search_verify_stat() {
        let dir = tmp("fresh");
        let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
        assert_eq!(daemon.boot(), Boot::Fresh);

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(1, 10), (2, 20), (3, 30)],
            },
        });
        let ResponseBody::Ingested {
            records,
            generation,
            ..
        } = resp.body
        else {
            panic!("want Ingested, got {:?}", resp.body);
        };
        assert_eq!(records, 3);
        assert_eq!(generation, 1);

        let resp = daemon.handle(&Request {
            trace_id: 42,
            body: RequestBody::Search {
                query: Query::less_than(25),
                payment: 1_000,
            },
        });
        let ResponseBody::Found { ids, verified, .. } = resp.body else {
            panic!("want Found, got {:?}", resp.body);
        };
        assert!(verified);
        assert_eq!(ids, vec![1, 2]);

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Verify,
        });
        let ResponseBody::Verified {
            chain_ok, height, ..
        } = resp.body
        else {
            panic!("want Verified, got {:?}", resp.body);
        };
        assert!(chain_ok);
        assert!(height > 0);

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Stat,
        });
        let ResponseBody::Stats {
            index_entries,
            primes,
            ..
        } = resp.body
        else {
            panic!("want Stats, got {:?}", resp.body);
        };
        // Each record contributes one slice label per covered keyword,
        // so the encrypted index strictly dominates the record count.
        assert!(index_entries >= 3, "got {index_entries}");
        assert!(primes >= 3, "got {primes}");
    }

    #[test]
    fn reopen_restores_identical_digest_without_rebuild() {
        let dir = tmp("reopen");
        let digest_before;
        {
            let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
            daemon.handle(&Request {
                trace_id: 0,
                body: RequestBody::Ingest {
                    records: vec![(7, 70), (8, 80)],
                },
            });
            digest_before = daemon.digest();
        } // dropped without any clean shutdown — like a crash after commit

        let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
        assert_eq!(daemon.boot(), Boot::Restored(1));
        assert_eq!(
            daemon.digest(),
            digest_before,
            "digest must be byte-identical"
        );

        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Search {
                query: Query::greater_than(75),
                payment: 500,
            },
        });
        let ResponseBody::Found { ids, verified, .. } = resp.body else {
            panic!("want Found, got {:?}", resp.body);
        };
        assert!(verified, "restored index must serve verifiable results");
        assert_eq!(ids, vec![8]);
    }

    #[test]
    fn domain_errors_become_error_responses_not_crashes() {
        let dir = tmp("err");
        let mut daemon = Daemon::open(&dir, cfg(), TelemetryHandle::disabled()).unwrap();
        // Value 300 exceeds the 8-bit domain: the owner rejects it.
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Ingest {
                records: vec![(1, 300)],
            },
        });
        assert!(matches!(resp.body, ResponseBody::Error(_)));
        // The daemon still serves afterwards.
        let resp = daemon.handle(&Request {
            trace_id: 0,
            body: RequestBody::Stat,
        });
        assert!(matches!(resp.body, ResponseBody::Stats { .. }));
    }

    #[test]
    fn bad_value_bits_is_a_config_error() {
        let dir = tmp("bits");
        let bad = DaemonConfig {
            seed: 1,
            value_bits: 0,
        };
        assert!(matches!(
            Daemon::open(&dir, bad, TelemetryHandle::disabled()),
            Err(DaemonError::Config(_))
        ));
    }
}
