//! Transport: TCP or Unix-domain endpoints behind one enum.
//!
//! Endpoint strings: `tcp://HOST:PORT`, `unix:///path/to.sock`, or a
//! bare path (treated as a Unix socket path).

use crate::error::DaemonError;
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where the daemon listens / the client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7411`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Config`] on an empty address.
    pub fn parse(s: &str) -> Result<Self, DaemonError> {
        let ep = if let Some(addr) = s.strip_prefix("tcp://") {
            Endpoint::Tcp(addr.to_string())
        } else if let Some(path) = s.strip_prefix("unix://") {
            Endpoint::Unix(PathBuf::from(path))
        } else {
            Endpoint::Unix(PathBuf::from(s))
        };
        match &ep {
            Endpoint::Tcp(a) if a.is_empty() => {
                Err(DaemonError::Config("empty tcp address".into()))
            }
            Endpoint::Unix(p) if p.as_os_str().is_empty() => {
                Err(DaemonError::Config("empty unix socket path".into()))
            }
            _ => Ok(ep),
        }
    }

    /// Binds a listener on this endpoint. For Unix sockets a stale
    /// socket file left by a killed daemon is removed first — exactly
    /// the crash/restart path the persistence layer is built for.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the bind fails.
    pub fn bind(&self) -> Result<Listener, DaemonError> {
        match self {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
        }
    }

    /// Connects a client stream to this endpoint.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the connection fails.
    pub fn connect(&self) -> Result<Stream, DaemonError> {
        match self {
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// A bound listener over either transport.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Accepts the next connection (blocking).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the accept fails.
    pub fn accept(&self) -> Result<Stream, DaemonError> {
        match self {
            Listener::Tcp(l) => Ok(Stream::Tcp(l.accept()?.0)),
            Listener::Unix(l) => Ok(Stream::Unix(l.accept()?.0)),
        }
    }
}

/// A connected stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// Cumulative transport byte counters, shared between the metered
/// streams that feed them and the observer (the daemon's `net.bytes_*`
/// gauges). Clones share the same counters.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    bytes_in: Arc<AtomicU64>,
    bytes_out: Arc<AtomicU64>,
}

impl Meter {
    /// A fresh meter with both counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes read through streams wearing this meter.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    /// Total bytes written through streams wearing this meter.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }
}

/// A [`Stream`] that counts every byte through a shared [`Meter`].
#[derive(Debug)]
pub struct MeteredStream {
    inner: Stream,
    meter: Meter,
}

impl MeteredStream {
    /// Wraps `stream`; reads and writes accumulate into `meter`.
    pub fn new(stream: Stream, meter: Meter) -> Self {
        MeteredStream {
            inner: stream,
            meter,
        }
    }
}

impl Read for MeteredStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.meter.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl Write for MeteredStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.meter.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_strings_parse_and_display() {
        assert_eq!(
            Endpoint::parse("tcp://127.0.0.1:7411").unwrap(),
            Endpoint::Tcp("127.0.0.1:7411".into())
        );
        assert_eq!(
            Endpoint::parse("unix:///tmp/s.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/s.sock"))
        );
        assert_eq!(
            Endpoint::parse("/tmp/bare.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/bare.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp://h:1").unwrap().to_string(),
            "tcp://h:1"
        );
        assert!(Endpoint::parse("tcp://").is_err());
        assert!(Endpoint::parse("").is_err());
    }

    #[test]
    fn metered_stream_counts_both_directions() {
        let dir = std::env::temp_dir().join(format!("slicer-meter-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ep = Endpoint::Unix(dir.join("meter.sock"));
        let listener = ep.bind().unwrap();
        let mut client = ep.connect().unwrap();
        let meter = Meter::new();
        let mut server = MeteredStream::new(listener.accept().unwrap(), meter.clone());

        client.write_all(b"12345").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 5];
        server.read_exact(&mut buf).unwrap();
        server.write_all(b"ok").unwrap();
        server.flush().unwrap();
        let mut back = [0u8; 2];
        client.read_exact(&mut back).unwrap();

        assert_eq!(meter.bytes_in(), 5);
        assert_eq!(meter.bytes_out(), 2);
        // Clones observe the same counters.
        assert_eq!(meter.clone().bytes_in(), 5);
    }

    #[test]
    fn unix_roundtrip_over_a_real_socket() {
        let dir = std::env::temp_dir().join(format!("slicer-net-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ep = Endpoint::Unix(dir.join("echo.sock"));
        let listener = ep.bind().unwrap();
        // Rebinding over a stale socket file must succeed.
        let listener2 = ep.bind().unwrap();
        drop(listener);

        let mut client = ep.connect().unwrap();
        let mut server = listener2.accept().unwrap();
        client.write_all(b"ping").unwrap();
        client.flush().unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }
}
