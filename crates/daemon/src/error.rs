//! The daemon error type.

use slicer_persist::PersistError;
use std::error::Error;
use std::fmt;

/// Errors raised by the daemon, its wire protocol and its client.
#[derive(Debug)]
pub enum DaemonError {
    /// A socket or filesystem failure.
    Io(String),
    /// A malformed frame, undecodable message or protocol violation
    /// (oversized frame, mismatched trace id, unexpected response).
    Protocol(String),
    /// A segment-store failure while loading or committing state.
    Persist(PersistError),
    /// A protocol-level failure inside the Slicer instance.
    Slicer(String),
    /// Invalid configuration (bad endpoint string, out-of-range bits).
    Config(String),
    /// The daemon reported an error for a request.
    Remote(String),
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Io(msg) => write!(f, "i/o error: {msg}"),
            DaemonError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DaemonError::Persist(e) => write!(f, "persistence error: {e}"),
            DaemonError::Slicer(msg) => write!(f, "slicer error: {msg}"),
            DaemonError::Config(msg) => write!(f, "config error: {msg}"),
            DaemonError::Remote(msg) => write!(f, "daemon error: {msg}"),
        }
    }
}

impl Error for DaemonError {}

impl From<PersistError> for DaemonError {
    fn from(e: PersistError) -> Self {
        DaemonError::Persist(e)
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e.to_string())
    }
}

impl From<slicer_core::SlicerError> for DaemonError {
    fn from(e: slicer_core::SlicerError) -> Self {
        DaemonError::Slicer(e.to_string())
    }
}

impl From<slicer_crypto::codec::CodecError> for DaemonError {
    fn from(e: slicer_crypto::codec::CodecError) -> Self {
        DaemonError::Protocol(e.to_string())
    }
}
