//! A blocking client for the `slicerd` wire protocol.

use crate::error::DaemonError;
use crate::net::{Endpoint, Stream};
use crate::proto::{
    read_message, write_message, Request, RequestBody, Response, ResponseBody, WireHistogram,
};
use slicer_core::Query;

/// One connection to a running `slicerd`.
///
/// Each call sends one request frame and blocks for the response. The
/// client owns a trace-id counter seeded from its process id, so spans
/// from different CLI invocations land in distinct traces while every
/// request within one invocation is correlatable.
#[derive(Debug)]
pub struct DaemonClient {
    stream: Stream,
    next_trace: u64,
}

impl DaemonClient {
    /// Connects to a daemon at `endpoint`.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Io`] when the connection fails.
    pub fn connect(endpoint: &Endpoint) -> Result<Self, DaemonError> {
        Ok(DaemonClient {
            stream: endpoint.connect()?,
            next_trace: u64::from(std::process::id()) << 20,
        })
    }

    fn call(&mut self, body: RequestBody) -> Result<ResponseBody, DaemonError> {
        self.next_trace = self.next_trace.wrapping_add(1);
        let request = Request {
            trace_id: self.next_trace,
            body,
        };
        write_message(&mut self.stream, &request)?;
        let response: Response = read_message(&mut self.stream)?
            .ok_or_else(|| DaemonError::Io("daemon closed the connection".into()))?;
        match response.body {
            ResponseBody::Error(msg) => Err(DaemonError::Remote(msg)),
            body => Ok(body),
        }
    }

    /// Inserts `(record id, value)` pairs; the daemon commits a new
    /// generation before replying.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] /
    /// [`DaemonError::Protocol`] on a daemon-side failure.
    pub fn ingest(&mut self, records: Vec<(u64, u64)>) -> Result<(u64, u64, Vec<u8>), DaemonError> {
        match self.call(RequestBody::Ingest { records })? {
            ResponseBody::Ingested {
                records,
                generation,
                digest,
            } => Ok((records, generation, digest)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Runs one verifiable search.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] /
    /// [`DaemonError::Protocol`] on a daemon-side failure.
    pub fn search(&mut self, query: Query, payment: u128) -> Result<SearchReply, DaemonError> {
        match self.call(RequestBody::Search { query, payment })? {
            ResponseBody::Found {
                ids,
                verified,
                paid_cloud,
                request_gas,
                verify_gas,
                digest,
            } => Ok(SearchReply {
                ids,
                verified,
                paid_cloud,
                request_gas,
                verify_gas,
                digest,
            }),
            other => Err(unexpected("Found", &other)),
        }
    }

    /// Verifies the daemon's chain: `(chain_ok, height, digest)`.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] /
    /// [`DaemonError::Protocol`] on a daemon-side failure.
    pub fn verify(&mut self) -> Result<(bool, u64, Vec<u8>), DaemonError> {
        match self.call(RequestBody::Verify)? {
            ResponseBody::Verified {
                chain_ok,
                height,
                digest,
            } => Ok((chain_ok, height, digest)),
            other => Err(unexpected("Verified", &other)),
        }
    }

    /// Fetches store/index statistics.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] /
    /// [`DaemonError::Protocol`] on a daemon-side failure.
    pub fn stat(&mut self) -> Result<StatReply, DaemonError> {
        match self.call(RequestBody::Stat)? {
            ResponseBody::Stats {
                index_entries,
                primes,
                generation,
                chain_height,
                digest,
            } => Ok(StatReply {
                index_entries,
                primes,
                generation,
                chain_height,
                digest,
            }),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Scrapes the daemon's live metrics: rendered Prometheus-text and
    /// JSON exports plus the structured counter/gauge/histogram vectors
    /// (so callers like `slicer-cli top` need no JSON parsing).
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] /
    /// [`DaemonError::Protocol`] on a daemon-side failure.
    pub fn metrics(&mut self) -> Result<MetricsReply, DaemonError> {
        match self.call(RequestBody::Metrics)? {
            ResponseBody::MetricsReport {
                uptime_ns,
                version,
                boot,
                generation,
                prometheus,
                json,
                counters,
                gauges,
                histograms,
            } => Ok(MetricsReply {
                uptime_ns,
                version,
                boot,
                generation,
                prometheus,
                json,
                counters,
                gauges,
                histograms,
            }),
            other => Err(unexpected("MetricsReport", &other)),
        }
    }

    /// Fetches the last `count` structured-log records as JSON lines,
    /// plus how many older records the daemon's ring has evicted.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] /
    /// [`DaemonError::Protocol`] on a daemon-side failure.
    pub fn tail(&mut self, count: u64) -> Result<(Vec<String>, u64), DaemonError> {
        match self.call(RequestBody::Tail { count })? {
            ResponseBody::LogTail { lines, dropped } => Ok((lines, dropped)),
            other => Err(unexpected("LogTail", &other)),
        }
    }

    /// Fetches a live profile from the daemon: folded stacks or a
    /// rendered SVG flamegraph, weighted by wall-time or gas.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Remote`] when the daemon
    /// was booted without a profile aggregator.
    pub fn profile(&mut self, svg: bool, gas: bool) -> Result<ProfileReply, DaemonError> {
        match self.call(RequestBody::Profile { svg, gas })? {
            ResponseBody::ProfileReport {
                format,
                mode,
                rendered,
                total,
                stacks,
                dropped_stacks,
            } => Ok(ProfileReply {
                format,
                mode,
                rendered,
                total,
                stacks,
                dropped_stacks,
            }),
            other => Err(unexpected("ProfileReport", &other)),
        }
    }

    /// Asks the daemon to exit after acknowledging.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`DaemonError::Protocol`] on an unexpected
    /// reply.
    pub fn shutdown(&mut self) -> Result<(), DaemonError> {
        match self.call(RequestBody::Shutdown)? {
            ResponseBody::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(want: &str, got: &ResponseBody) -> DaemonError {
    DaemonError::Protocol(format!("expected {want} response, got {got:?}"))
}

/// A [`DaemonClient::search`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchReply {
    /// Decrypted matching record ids.
    pub ids: Vec<u64>,
    /// Whether on-chain verification passed.
    pub verified: bool,
    /// Whether the escrowed fee settled to the cloud.
    pub paid_cloud: bool,
    /// Gas spent registering the request.
    pub request_gas: u64,
    /// Gas spent on submission + verification.
    pub verify_gas: u64,
    /// Canonical accumulator digest the proof verified against.
    pub digest: Vec<u8>,
}

/// A [`DaemonClient::metrics`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReply {
    /// Nanoseconds since the daemon booted (its telemetry clock).
    pub uptime_ns: u64,
    /// The daemon's crate version.
    pub version: String,
    /// `"fresh"` or `"restored:<generation>"`.
    pub boot: String,
    /// Last sealed on-disk generation.
    pub generation: u64,
    /// Rendered Prometheus text exposition.
    pub prometheus: String,
    /// Rendered JSON export of the same snapshot.
    pub json: String,
    /// Counter names and values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge names and values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram names and summaries, sorted by name.
    pub histograms: Vec<(String, WireHistogram)>,
}

/// A [`DaemonClient::profile`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReply {
    /// `"folded"` or `"svg"`.
    pub format: String,
    /// `"wall"` or `"gas"`.
    pub mode: String,
    /// The rendered profile in the requested format.
    pub rendered: String,
    /// Total self-weight across all stacks (ns or gas units).
    pub total: u64,
    /// Number of distinct stacks in the profile.
    pub stacks: u64,
    /// Stacks discarded once the aggregator hit its cap.
    pub dropped_stacks: u64,
}

/// A [`DaemonClient::stat`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct StatReply {
    /// Entries in the encrypted index `I`.
    pub index_entries: u64,
    /// Primes in the list `X`.
    pub primes: u64,
    /// Last sealed on-disk generation.
    pub generation: u64,
    /// Current chain height.
    pub chain_height: u64,
    /// Canonical accumulator digest.
    pub digest: Vec<u8>,
}
