//! The framed wire protocol `slicerd` speaks.
//!
//! Every message travels as one frame: a 4-byte big-endian `u32` length
//! prefix followed by exactly that many payload bytes, the payload being
//! a [`slicer_crypto::codec`] encoding of [`Request`] or [`Response`].
//! The length prefix is capped at [`MAX_FRAME_LEN`] so a corrupt or
//! hostile peer cannot make the daemon allocate unbounded memory.
//!
//! Requests carry the client's trace id; the daemon opens its per-request
//! telemetry root span *inside that trace* (via
//! `TelemetryHandle::span_in_trace`), so one search initiated by
//! `slicer-cli` produces a single distributed trace spanning both
//! processes. A trace id of 0 means "no trace": the daemon mints a fresh
//! one.

use crate::error::DaemonError;
use slicer_core::Query;
use slicer_crypto::codec::{from_bytes, to_bytes, CodecError, Decode, Encode, Reader};
use std::io::{Read, Write};

/// Upper bound on a frame's payload length. Large enough for any real
/// response (an index chunk is a few MiB), small enough to bound the
/// allocation a corrupt length prefix can trigger.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// A client request: the caller's trace id plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client-side trace id (0 = none; the daemon mints one).
    pub trace_id: u64,
    /// The requested operation.
    pub body: RequestBody,
}

slicer_crypto::impl_codec!(Request { trace_id, body });

/// The operations `slicerd` serves.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Insert `(record id, value)` pairs and commit a new generation.
    Ingest {
        /// The records to insert.
        records: Vec<(u64, u64)>,
    },
    /// Run one verifiable search, escrowing `payment` on the chain.
    Search {
        /// The numerical query.
        query: Query,
        /// The search fee the user escrows.
        payment: u128,
    },
    /// Verify the daemon's chain and report the on-chain digest.
    Verify,
    /// Report store/index statistics.
    Stat,
    /// Ask the daemon to stop accepting connections and exit.
    Shutdown,
    /// Scrape the daemon's metrics registry: Prometheus text + JSON
    /// exports plus structured counter/gauge/histogram listings and
    /// uptime/build info.
    Metrics,
    /// Fetch the last `count` structured log records as JSON lines.
    Tail {
        /// How many records to return (capped by the daemon's ring).
        count: u64,
    },
    /// Fetch the daemon's live accumulated collapsed-stack profile.
    Profile {
        /// Render an SVG flamegraph instead of folded text.
        svg: bool,
        /// Weight stacks by gas instead of wall nanoseconds.
        gas: bool,
    },
}

impl RequestBody {
    /// Short operation name, used as the `rpc.kind` attribute and in
    /// flight-recorder entries.
    pub fn kind(&self) -> &'static str {
        match self {
            RequestBody::Ingest { .. } => "ingest",
            RequestBody::Search { .. } => "search",
            RequestBody::Verify => "verify",
            RequestBody::Stat => "stat",
            RequestBody::Shutdown => "shutdown",
            RequestBody::Metrics => "metrics",
            RequestBody::Tail { .. } => "tail",
            RequestBody::Profile { .. } => "profile",
        }
    }

    /// Name of the per-operation latency histogram this request feeds —
    /// `'static` so the hot path never allocates a metric name.
    pub fn metric(&self) -> &'static str {
        match self {
            RequestBody::Ingest { .. } => "rpc.ingest.ns",
            RequestBody::Search { .. } => "rpc.search.ns",
            RequestBody::Verify => "rpc.verify.ns",
            RequestBody::Stat => "rpc.stat.ns",
            RequestBody::Shutdown => "rpc.shutdown.ns",
            RequestBody::Metrics => "rpc.metrics.ns",
            RequestBody::Tail { .. } => "rpc.tail.ns",
            RequestBody::Profile { .. } => "rpc.profile.ns",
        }
    }
}

impl Encode for RequestBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RequestBody::Ingest { records } => {
                0u32.encode(out);
                records.encode(out);
            }
            RequestBody::Search { query, payment } => {
                1u32.encode(out);
                query.encode(out);
                payment.encode(out);
            }
            RequestBody::Verify => 2u32.encode(out),
            RequestBody::Stat => 3u32.encode(out),
            RequestBody::Shutdown => 4u32.encode(out),
            RequestBody::Metrics => 5u32.encode(out),
            RequestBody::Tail { count } => {
                6u32.encode(out);
                count.encode(out);
            }
            RequestBody::Profile { svg, gas } => {
                7u32.encode(out);
                svg.encode(out);
                gas.encode(out);
            }
        }
    }
}

impl Decode for RequestBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(RequestBody::Ingest {
                records: Vec::decode(reader)?,
            }),
            1 => Ok(RequestBody::Search {
                query: Query::decode(reader)?,
                payment: u128::decode(reader)?,
            }),
            2 => Ok(RequestBody::Verify),
            3 => Ok(RequestBody::Stat),
            4 => Ok(RequestBody::Shutdown),
            5 => Ok(RequestBody::Metrics),
            6 => Ok(RequestBody::Tail {
                count: u64::decode(reader)?,
            }),
            7 => Ok(RequestBody::Profile {
                svg: bool::decode(reader)?,
                gas: bool::decode(reader)?,
            }),
            v => Err(CodecError::msg(format!("invalid RequestBody variant {v}"))),
        }
    }
}

/// The daemon's reply; echoes the request's trace id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The trace id the request carried (or the one the daemon minted).
    pub trace_id: u64,
    /// The operation's outcome.
    pub body: ResponseBody,
}

slicer_crypto::impl_codec!(Response { trace_id, body });

/// Outcomes of the operations in [`RequestBody`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The operation failed; the daemon stays up.
    Error(String),
    /// Records ingested and a new generation sealed.
    Ingested {
        /// How many records the batch held.
        records: u64,
        /// The generation the commit sealed.
        generation: u64,
        /// Canonical accumulator digest after the insert.
        digest: Vec<u8>,
    },
    /// A verifiable search completed.
    Found {
        /// Decrypted matching record ids.
        ids: Vec<u64>,
        /// Whether on-chain verification passed.
        verified: bool,
        /// Whether the escrowed fee settled to the cloud.
        paid_cloud: bool,
        /// Gas spent registering the request.
        request_gas: u64,
        /// Gas spent on submission + verification.
        verify_gas: u64,
        /// Canonical accumulator digest the proof verified against.
        digest: Vec<u8>,
    },
    /// Chain verification report.
    Verified {
        /// Whether every block's hash chain checks out.
        chain_ok: bool,
        /// Current chain height.
        height: u64,
        /// Canonical accumulator digest.
        digest: Vec<u8>,
    },
    /// Store and index statistics.
    Stats {
        /// Entries in the encrypted index `I`.
        index_entries: u64,
        /// Primes in the list `X`.
        primes: u64,
        /// Last sealed on-disk generation (0 = nothing persisted yet).
        generation: u64,
        /// Current chain height.
        chain_height: u64,
        /// Canonical accumulator digest.
        digest: Vec<u8>,
    },
    /// The daemon acknowledges shutdown and will exit.
    ShuttingDown,
    /// A metrics scrape: rendered exports plus the structured registry,
    /// so clients (`slicer-cli top`) need no JSON parsing.
    MetricsReport {
        /// Nanoseconds since the daemon's clock saw its boot reading.
        uptime_ns: u64,
        /// The daemon's crate version (build info).
        version: String,
        /// How the daemon booted: `"fresh"` or `"restored:<gen>"`.
        boot: String,
        /// Last sealed on-disk generation.
        generation: u64,
        /// The registry in Prometheus exposition format.
        prometheus: String,
        /// The registry as one JSON document.
        json: String,
        /// Sorted `(name, value)` counter pairs.
        counters: Vec<(String, u64)>,
        /// Sorted `(name, value)` gauge pairs.
        gauges: Vec<(String, u64)>,
        /// Sorted `(name, summary)` histogram pairs.
        histograms: Vec<(String, WireHistogram)>,
    },
    /// The last N structured log records, one JSON line each.
    LogTail {
        /// JSON-encoded log records, oldest first.
        lines: Vec<String>,
        /// Records the daemon's ring has evicted so far.
        dropped: u64,
    },
    /// The live collapsed-stack profile, rendered as requested.
    ProfileReport {
        /// `"folded"` or `"svg"` — what `rendered` holds.
        format: String,
        /// `"wall"` or `"gas"` — the weighting used.
        mode: String,
        /// The rendered document (folded text or SVG).
        rendered: String,
        /// Total weight across all stacks (ns or gas per `mode`).
        total: u64,
        /// Distinct stacks in the profile.
        stacks: u64,
        /// Stacks the aggregator discarded at its cap.
        dropped_stacks: u64,
    },
}

/// A histogram summary on the wire — mirrors
/// [`slicer_telemetry::HistogramSummary`], defined here so it can carry
/// this crate's codec impl (the telemetry crate knows nothing about the
/// wire format).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireHistogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
}

slicer_crypto::impl_codec!(WireHistogram {
    count,
    sum,
    min,
    max,
    p50,
    p90,
    p99
});

impl From<&slicer_telemetry::HistogramSummary> for WireHistogram {
    fn from(h: &slicer_telemetry::HistogramSummary) -> Self {
        WireHistogram {
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
            p50: h.p50,
            p90: h.p90,
            p99: h.p99,
        }
    }
}

impl WireHistogram {
    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }
}

impl Encode for ResponseBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ResponseBody::Error(msg) => {
                0u32.encode(out);
                msg.encode(out);
            }
            ResponseBody::Ingested {
                records,
                generation,
                digest,
            } => {
                1u32.encode(out);
                records.encode(out);
                generation.encode(out);
                digest.encode(out);
            }
            ResponseBody::Found {
                ids,
                verified,
                paid_cloud,
                request_gas,
                verify_gas,
                digest,
            } => {
                2u32.encode(out);
                ids.encode(out);
                verified.encode(out);
                paid_cloud.encode(out);
                request_gas.encode(out);
                verify_gas.encode(out);
                digest.encode(out);
            }
            ResponseBody::Verified {
                chain_ok,
                height,
                digest,
            } => {
                3u32.encode(out);
                chain_ok.encode(out);
                height.encode(out);
                digest.encode(out);
            }
            ResponseBody::Stats {
                index_entries,
                primes,
                generation,
                chain_height,
                digest,
            } => {
                4u32.encode(out);
                index_entries.encode(out);
                primes.encode(out);
                generation.encode(out);
                chain_height.encode(out);
                digest.encode(out);
            }
            ResponseBody::ShuttingDown => 5u32.encode(out),
            ResponseBody::MetricsReport {
                uptime_ns,
                version,
                boot,
                generation,
                prometheus,
                json,
                counters,
                gauges,
                histograms,
            } => {
                6u32.encode(out);
                uptime_ns.encode(out);
                version.encode(out);
                boot.encode(out);
                generation.encode(out);
                prometheus.encode(out);
                json.encode(out);
                counters.encode(out);
                gauges.encode(out);
                histograms.encode(out);
            }
            ResponseBody::LogTail { lines, dropped } => {
                7u32.encode(out);
                lines.encode(out);
                dropped.encode(out);
            }
            ResponseBody::ProfileReport {
                format,
                mode,
                rendered,
                total,
                stacks,
                dropped_stacks,
            } => {
                8u32.encode(out);
                format.encode(out);
                mode.encode(out);
                rendered.encode(out);
                total.encode(out);
                stacks.encode(out);
                dropped_stacks.encode(out);
            }
        }
    }
}

impl Decode for ResponseBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(ResponseBody::Error(String::decode(reader)?)),
            1 => Ok(ResponseBody::Ingested {
                records: u64::decode(reader)?,
                generation: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            2 => Ok(ResponseBody::Found {
                ids: Vec::decode(reader)?,
                verified: bool::decode(reader)?,
                paid_cloud: bool::decode(reader)?,
                request_gas: u64::decode(reader)?,
                verify_gas: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            3 => Ok(ResponseBody::Verified {
                chain_ok: bool::decode(reader)?,
                height: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            4 => Ok(ResponseBody::Stats {
                index_entries: u64::decode(reader)?,
                primes: u64::decode(reader)?,
                generation: u64::decode(reader)?,
                chain_height: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            5 => Ok(ResponseBody::ShuttingDown),
            6 => Ok(ResponseBody::MetricsReport {
                uptime_ns: u64::decode(reader)?,
                version: String::decode(reader)?,
                boot: String::decode(reader)?,
                generation: u64::decode(reader)?,
                prometheus: String::decode(reader)?,
                json: String::decode(reader)?,
                counters: Vec::decode(reader)?,
                gauges: Vec::decode(reader)?,
                histograms: Vec::decode(reader)?,
            }),
            7 => Ok(ResponseBody::LogTail {
                lines: Vec::decode(reader)?,
                dropped: u64::decode(reader)?,
            }),
            8 => Ok(ResponseBody::ProfileReport {
                format: String::decode(reader)?,
                mode: String::decode(reader)?,
                rendered: String::decode(reader)?,
                total: u64::decode(reader)?,
                stacks: u64::decode(reader)?,
                dropped_stacks: u64::decode(reader)?,
            }),
            v => Err(CodecError::msg(format!("invalid ResponseBody variant {v}"))),
        }
    }
}

/// Writes one length-prefixed message and flushes the stream.
///
/// # Errors
///
/// [`DaemonError::Protocol`] when the encoding exceeds [`MAX_FRAME_LEN`],
/// [`DaemonError::Io`] on socket failure.
pub fn write_message<T: Encode>(stream: &mut impl Write, message: &T) -> Result<(), DaemonError> {
    let payload = to_bytes(message)?;
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            DaemonError::Protocol(format!(
                "outgoing frame too large ({} bytes)",
                payload.len()
            ))
        })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed message. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// [`DaemonError::Protocol`] on an oversized frame or undecodable
/// payload, [`DaemonError::Io`] on socket failure or mid-frame EOF.
pub fn read_message<T: Decode>(stream: &mut impl Read) -> Result<Option<T>, DaemonError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while let Some(unfilled) = len_bytes.get_mut(filled..).filter(|s| !s.is_empty()) {
        let n = stream.read(unfilled)?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(DaemonError::Io("eof inside frame length".into()));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(DaemonError::Protocol(format!(
            "incoming frame too large ({len} bytes)"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(from_bytes(&payload)?))
}

/// What [`read_message_lenient`] found on the stream.
#[derive(Debug)]
pub enum ReadOutcome<T> {
    /// Clean EOF at a frame boundary — the peer closed the connection.
    Eof,
    /// One well-formed message.
    Msg(T),
    /// The frame declared a payload above [`MAX_FRAME_LEN`]. The payload
    /// has been drained, so the stream is still framed and the caller
    /// can reply with an error and keep serving the connection.
    Oversize {
        /// The declared payload length.
        declared: u32,
    },
    /// A well-framed payload that does not decode. The frame has been
    /// consumed, so the stream stays framed.
    Undecodable(String),
}

/// Reads one length-prefixed message without giving up on the
/// connection for recoverable faults: an oversized frame is drained
/// (bounded, never buffered) and an undecodable payload is reported
/// instead of raised, so the serving loop can answer with a clean
/// [`ResponseBody::Error`] and keep the stream alive. Hard transport
/// faults (mid-frame EOF, socket errors) still raise.
///
/// # Errors
///
/// [`DaemonError::Io`] on socket failure or EOF inside a frame.
pub fn read_message_lenient<T: Decode>(
    stream: &mut impl Read,
) -> Result<ReadOutcome<T>, DaemonError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while let Some(unfilled) = len_bytes.get_mut(filled..).filter(|s| !s.is_empty()) {
        let n = stream.read(unfilled)?;
        if n == 0 {
            if filled == 0 {
                return Ok(ReadOutcome::Eof);
            }
            return Err(DaemonError::Io("eof inside frame length".into()));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        // Consume the declared payload through a bounded copy into the
        // sink — no allocation proportional to the hostile length. A
        // short read (peer gave up mid-payload) surfaces on the next
        // frame read as EOF.
        std::io::copy(&mut stream.take(u64::from(len)), &mut std::io::sink())?;
        return Ok(ReadOutcome::Oversize { declared: len });
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    match from_bytes(&payload) {
        Ok(message) => Ok(ReadOutcome::Msg(message)),
        Err(e) => Ok(ReadOutcome::Undecodable(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: Request) {
        let mut wire = Vec::new();
        write_message(&mut wire, &req).unwrap();
        let mut cursor = wire.as_slice();
        let back: Request = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(back, req);
        assert!(cursor.is_empty());
    }

    #[test]
    fn requests_roundtrip_through_the_frame() {
        roundtrip(Request {
            trace_id: 7,
            body: RequestBody::Ingest {
                records: vec![(1, 10), (2, 20)],
            },
        });
        roundtrip(Request {
            trace_id: 0,
            body: RequestBody::Search {
                query: Query::less_than(42),
                payment: 1_000,
            },
        });
        roundtrip(Request {
            trace_id: u64::MAX,
            body: RequestBody::Shutdown,
        });
        roundtrip(Request {
            trace_id: 3,
            body: RequestBody::Metrics,
        });
        roundtrip(Request {
            trace_id: 4,
            body: RequestBody::Tail { count: 50 },
        });
        roundtrip(Request {
            trace_id: 5,
            body: RequestBody::Profile {
                svg: true,
                gas: false,
            },
        });
    }

    #[test]
    fn observability_responses_roundtrip_through_the_frame() {
        for body in [
            ResponseBody::MetricsReport {
                uptime_ns: 12_345,
                version: "0.1.0".into(),
                boot: "restored:2".into(),
                generation: 2,
                prometheus: "# TYPE slicer_rpc_requests counter\n".into(),
                json: "{\"counters\": {}}".into(),
                counters: vec![("rpc.requests".into(), 9)],
                gauges: vec![("net.bytes_in".into(), 100)],
                histograms: vec![(
                    "rpc.search.ns".into(),
                    WireHistogram {
                        count: 2,
                        sum: 30,
                        min: 10,
                        max: 20,
                        p50: 15,
                        p90: 20,
                        p99: 20,
                    },
                )],
            },
            ResponseBody::LogTail {
                lines: vec!["{\"ts_ns\":1}".into(), "{\"ts_ns\":2}".into()],
                dropped: 3,
            },
            ResponseBody::ProfileReport {
                format: "folded".into(),
                mode: "gas".into(),
                rendered: "daemon.request;protocol.search 42\n".into(),
                total: 42,
                stacks: 1,
                dropped_stacks: 0,
            },
        ] {
            let resp = Response { trace_id: 8, body };
            let mut wire = Vec::new();
            write_message(&mut wire, &resp).unwrap();
            let back: Response = read_message(&mut wire.as_slice()).unwrap().unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn kind_and_metric_names_cover_every_request() {
        let bodies = [
            RequestBody::Ingest { records: vec![] },
            RequestBody::Search {
                query: Query::equal(1),
                payment: 0,
            },
            RequestBody::Verify,
            RequestBody::Stat,
            RequestBody::Shutdown,
            RequestBody::Metrics,
            RequestBody::Tail { count: 1 },
            RequestBody::Profile {
                svg: false,
                gas: true,
            },
        ];
        for body in &bodies {
            assert!(!body.kind().is_empty());
            assert_eq!(body.metric(), format!("rpc.{}.ns", body.kind()));
        }
    }

    #[test]
    fn lenient_reader_reports_instead_of_raising() {
        // Clean EOF.
        let empty: &[u8] = &[];
        assert!(matches!(
            read_message_lenient::<Request>(&mut { empty }).unwrap(),
            ReadOutcome::Eof
        ));

        // A good message still decodes.
        let mut wire = Vec::new();
        write_message(
            &mut wire,
            &Request {
                trace_id: 5,
                body: RequestBody::Stat,
            },
        )
        .unwrap();
        let ReadOutcome::Msg(req) = read_message_lenient::<Request>(&mut wire.as_slice()).unwrap()
        else {
            panic!("want Msg");
        };
        assert_eq!(req.trace_id, 5);

        // Oversize: declared length above the cap is reported with the
        // payload drained, and a following frame is still readable.
        let declared = MAX_FRAME_LEN + 1;
        let mut wire = (declared).to_be_bytes().to_vec();
        wire.extend(std::iter::repeat(0u8).take(declared as usize));
        write_message(
            &mut wire,
            &Request {
                trace_id: 6,
                body: RequestBody::Verify,
            },
        )
        .unwrap();
        let mut cursor = wire.as_slice();
        let ReadOutcome::Oversize { declared: got } =
            read_message_lenient::<Request>(&mut cursor).unwrap()
        else {
            panic!("want Oversize");
        };
        assert_eq!(got, declared);
        let ReadOutcome::Msg(next) = read_message_lenient::<Request>(&mut cursor).unwrap() else {
            panic!("the stream must stay framed after the drain");
        };
        assert_eq!(next.trace_id, 6);

        // Undecodable payload: consumed and reported, not raised.
        let payload = [0xFFu8; 3];
        let mut wire = (payload.len() as u32).to_be_bytes().to_vec();
        wire.extend_from_slice(&payload);
        assert!(matches!(
            read_message_lenient::<Request>(&mut wire.as_slice()).unwrap(),
            ReadOutcome::Undecodable(_)
        ));
    }

    #[test]
    fn responses_roundtrip_through_the_frame() {
        let resp = Response {
            trace_id: 99,
            body: ResponseBody::Found {
                ids: vec![3, 1, 2],
                verified: true,
                paid_cloud: true,
                request_gas: 11,
                verify_gas: 22,
                digest: vec![0xAB; 32],
            },
        };
        let mut wire = Vec::new();
        write_message(&mut wire, &resp).unwrap();
        let back: Response = read_message(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn clean_eof_is_none_and_torn_frame_is_error() {
        let empty: &[u8] = &[];
        assert!(read_message::<Request>(&mut { empty }).unwrap().is_none());

        let mut wire = Vec::new();
        write_message(
            &mut wire,
            &Request {
                trace_id: 1,
                body: RequestBody::Stat,
            },
        )
        .unwrap();
        wire.truncate(wire.len() - 1);
        let err = read_message::<Request>(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, DaemonError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let wire = u32::MAX.to_be_bytes();
        let err = read_message::<Request>(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, DaemonError::Protocol(_)), "{err}");
    }

    #[test]
    fn undecodable_payload_is_a_protocol_error() {
        // A well-framed payload that is not a valid Request encoding.
        let payload = [0xFFu8; 3];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&payload);
        let err = read_message::<Request>(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, DaemonError::Protocol(_)), "{err}");
    }
}
