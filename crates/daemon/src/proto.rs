//! The framed wire protocol `slicerd` speaks.
//!
//! Every message travels as one frame: a 4-byte big-endian `u32` length
//! prefix followed by exactly that many payload bytes, the payload being
//! a [`slicer_crypto::codec`] encoding of [`Request`] or [`Response`].
//! The length prefix is capped at [`MAX_FRAME_LEN`] so a corrupt or
//! hostile peer cannot make the daemon allocate unbounded memory.
//!
//! Requests carry the client's trace id; the daemon opens its per-request
//! telemetry root span *inside that trace* (via
//! `TelemetryHandle::span_in_trace`), so one search initiated by
//! `slicer-cli` produces a single distributed trace spanning both
//! processes. A trace id of 0 means "no trace": the daemon mints a fresh
//! one.

use crate::error::DaemonError;
use slicer_core::Query;
use slicer_crypto::codec::{from_bytes, to_bytes, CodecError, Decode, Encode, Reader};
use std::io::{Read, Write};

/// Upper bound on a frame's payload length. Large enough for any real
/// response (an index chunk is a few MiB), small enough to bound the
/// allocation a corrupt length prefix can trigger.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// A client request: the caller's trace id plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The client-side trace id (0 = none; the daemon mints one).
    pub trace_id: u64,
    /// The requested operation.
    pub body: RequestBody,
}

slicer_crypto::impl_codec!(Request { trace_id, body });

/// The operations `slicerd` serves.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Insert `(record id, value)` pairs and commit a new generation.
    Ingest {
        /// The records to insert.
        records: Vec<(u64, u64)>,
    },
    /// Run one verifiable search, escrowing `payment` on the chain.
    Search {
        /// The numerical query.
        query: Query,
        /// The search fee the user escrows.
        payment: u128,
    },
    /// Verify the daemon's chain and report the on-chain digest.
    Verify,
    /// Report store/index statistics.
    Stat,
    /// Ask the daemon to stop accepting connections and exit.
    Shutdown,
}

impl Encode for RequestBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RequestBody::Ingest { records } => {
                0u32.encode(out);
                records.encode(out);
            }
            RequestBody::Search { query, payment } => {
                1u32.encode(out);
                query.encode(out);
                payment.encode(out);
            }
            RequestBody::Verify => 2u32.encode(out),
            RequestBody::Stat => 3u32.encode(out),
            RequestBody::Shutdown => 4u32.encode(out),
        }
    }
}

impl Decode for RequestBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(RequestBody::Ingest {
                records: Vec::decode(reader)?,
            }),
            1 => Ok(RequestBody::Search {
                query: Query::decode(reader)?,
                payment: u128::decode(reader)?,
            }),
            2 => Ok(RequestBody::Verify),
            3 => Ok(RequestBody::Stat),
            4 => Ok(RequestBody::Shutdown),
            v => Err(CodecError::msg(format!("invalid RequestBody variant {v}"))),
        }
    }
}

/// The daemon's reply; echoes the request's trace id.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The trace id the request carried (or the one the daemon minted).
    pub trace_id: u64,
    /// The operation's outcome.
    pub body: ResponseBody,
}

slicer_crypto::impl_codec!(Response { trace_id, body });

/// Outcomes of the operations in [`RequestBody`].
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// The operation failed; the daemon stays up.
    Error(String),
    /// Records ingested and a new generation sealed.
    Ingested {
        /// How many records the batch held.
        records: u64,
        /// The generation the commit sealed.
        generation: u64,
        /// Canonical accumulator digest after the insert.
        digest: Vec<u8>,
    },
    /// A verifiable search completed.
    Found {
        /// Decrypted matching record ids.
        ids: Vec<u64>,
        /// Whether on-chain verification passed.
        verified: bool,
        /// Whether the escrowed fee settled to the cloud.
        paid_cloud: bool,
        /// Gas spent registering the request.
        request_gas: u64,
        /// Gas spent on submission + verification.
        verify_gas: u64,
        /// Canonical accumulator digest the proof verified against.
        digest: Vec<u8>,
    },
    /// Chain verification report.
    Verified {
        /// Whether every block's hash chain checks out.
        chain_ok: bool,
        /// Current chain height.
        height: u64,
        /// Canonical accumulator digest.
        digest: Vec<u8>,
    },
    /// Store and index statistics.
    Stats {
        /// Entries in the encrypted index `I`.
        index_entries: u64,
        /// Primes in the list `X`.
        primes: u64,
        /// Last sealed on-disk generation (0 = nothing persisted yet).
        generation: u64,
        /// Current chain height.
        chain_height: u64,
        /// Canonical accumulator digest.
        digest: Vec<u8>,
    },
    /// The daemon acknowledges shutdown and will exit.
    ShuttingDown,
}

impl Encode for ResponseBody {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ResponseBody::Error(msg) => {
                0u32.encode(out);
                msg.encode(out);
            }
            ResponseBody::Ingested {
                records,
                generation,
                digest,
            } => {
                1u32.encode(out);
                records.encode(out);
                generation.encode(out);
                digest.encode(out);
            }
            ResponseBody::Found {
                ids,
                verified,
                paid_cloud,
                request_gas,
                verify_gas,
                digest,
            } => {
                2u32.encode(out);
                ids.encode(out);
                verified.encode(out);
                paid_cloud.encode(out);
                request_gas.encode(out);
                verify_gas.encode(out);
                digest.encode(out);
            }
            ResponseBody::Verified {
                chain_ok,
                height,
                digest,
            } => {
                3u32.encode(out);
                chain_ok.encode(out);
                height.encode(out);
                digest.encode(out);
            }
            ResponseBody::Stats {
                index_entries,
                primes,
                generation,
                chain_height,
                digest,
            } => {
                4u32.encode(out);
                index_entries.encode(out);
                primes.encode(out);
                generation.encode(out);
                chain_height.encode(out);
                digest.encode(out);
            }
            ResponseBody::ShuttingDown => 5u32.encode(out),
        }
    }
}

impl Decode for ResponseBody {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(ResponseBody::Error(String::decode(reader)?)),
            1 => Ok(ResponseBody::Ingested {
                records: u64::decode(reader)?,
                generation: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            2 => Ok(ResponseBody::Found {
                ids: Vec::decode(reader)?,
                verified: bool::decode(reader)?,
                paid_cloud: bool::decode(reader)?,
                request_gas: u64::decode(reader)?,
                verify_gas: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            3 => Ok(ResponseBody::Verified {
                chain_ok: bool::decode(reader)?,
                height: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            4 => Ok(ResponseBody::Stats {
                index_entries: u64::decode(reader)?,
                primes: u64::decode(reader)?,
                generation: u64::decode(reader)?,
                chain_height: u64::decode(reader)?,
                digest: Vec::decode(reader)?,
            }),
            5 => Ok(ResponseBody::ShuttingDown),
            v => Err(CodecError::msg(format!("invalid ResponseBody variant {v}"))),
        }
    }
}

/// Writes one length-prefixed message and flushes the stream.
///
/// # Errors
///
/// [`DaemonError::Protocol`] when the encoding exceeds [`MAX_FRAME_LEN`],
/// [`DaemonError::Io`] on socket failure.
pub fn write_message<T: Encode>(stream: &mut impl Write, message: &T) -> Result<(), DaemonError> {
    let payload = to_bytes(message)?;
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            DaemonError::Protocol(format!(
                "outgoing frame too large ({} bytes)",
                payload.len()
            ))
        })?;
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(&payload)?;
    stream.flush()?;
    Ok(())
}

/// Reads one length-prefixed message. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed the connection).
///
/// # Errors
///
/// [`DaemonError::Protocol`] on an oversized frame or undecodable
/// payload, [`DaemonError::Io`] on socket failure or mid-frame EOF.
pub fn read_message<T: Decode>(stream: &mut impl Read) -> Result<Option<T>, DaemonError> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0usize;
    while let Some(unfilled) = len_bytes.get_mut(filled..).filter(|s| !s.is_empty()) {
        let n = stream.read(unfilled)?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(DaemonError::Io("eof inside frame length".into()));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME_LEN {
        return Err(DaemonError::Protocol(format!(
            "incoming frame too large ({len} bytes)"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(Some(from_bytes(&payload)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: Request) {
        let mut wire = Vec::new();
        write_message(&mut wire, &req).unwrap();
        let mut cursor = wire.as_slice();
        let back: Request = read_message(&mut cursor).unwrap().unwrap();
        assert_eq!(back, req);
        assert!(cursor.is_empty());
    }

    #[test]
    fn requests_roundtrip_through_the_frame() {
        roundtrip(Request {
            trace_id: 7,
            body: RequestBody::Ingest {
                records: vec![(1, 10), (2, 20)],
            },
        });
        roundtrip(Request {
            trace_id: 0,
            body: RequestBody::Search {
                query: Query::less_than(42),
                payment: 1_000,
            },
        });
        roundtrip(Request {
            trace_id: u64::MAX,
            body: RequestBody::Shutdown,
        });
    }

    #[test]
    fn responses_roundtrip_through_the_frame() {
        let resp = Response {
            trace_id: 99,
            body: ResponseBody::Found {
                ids: vec![3, 1, 2],
                verified: true,
                paid_cloud: true,
                request_gas: 11,
                verify_gas: 22,
                digest: vec![0xAB; 32],
            },
        };
        let mut wire = Vec::new();
        write_message(&mut wire, &resp).unwrap();
        let back: Response = read_message(&mut wire.as_slice()).unwrap().unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn clean_eof_is_none_and_torn_frame_is_error() {
        let empty: &[u8] = &[];
        assert!(read_message::<Request>(&mut { empty }).unwrap().is_none());

        let mut wire = Vec::new();
        write_message(
            &mut wire,
            &Request {
                trace_id: 1,
                body: RequestBody::Stat,
            },
        )
        .unwrap();
        wire.truncate(wire.len() - 1);
        let err = read_message::<Request>(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, DaemonError::Io(_)), "{err}");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let wire = u32::MAX.to_be_bytes();
        let err = read_message::<Request>(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, DaemonError::Protocol(_)), "{err}");
    }

    #[test]
    fn undecodable_payload_is_a_protocol_error() {
        // A well-framed payload that is not a valid Request encoding.
        let payload = [0xFFu8; 3];
        let mut wire = Vec::new();
        wire.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        wire.extend_from_slice(&payload);
        let err = read_message::<Request>(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, DaemonError::Protocol(_)), "{err}");
    }
}
