//! `slicerd` — the Slicer serving daemon.
//!
//! ```text
//! slicerd --listen <endpoint> --data <dir> [--seed <n>] [--bits <n>]
//!         [--log-level <debug|info|warn|error>] [--log-format <text|json>]
//!         [--slow-ms <n>] [--event-ring <n>]
//! ```
//!
//! Endpoints: `tcp://HOST:PORT`, `unix:///path/to.sock`, or a bare
//! socket path. On boot the daemon restores the last sealed generation
//! from `--data` (fresh setup if none), prints one `READY` line, then
//! serves until a `shutdown` request.
//!
//! The operations plane is always on: request metrics are scrapeable via
//! `slicer-cli metrics`, structured logs stream to stderr (and into the
//! in-memory ring behind `slicer-cli tail`), and a crash flight recorder
//! persists the recent request history — on panic, on clean shutdown, on
//! a fatal serve-loop error, and in-flight at the start of every request
//! so even `kill -9` leaves the current request named on disk.

use slicer_daemon::{
    hex, instrumented_telemetry, Boot, Daemon, DaemonConfig, DaemonError, Endpoint, FlightRecorder,
};
use slicer_telemetry::{Level, LogFormat, WriterLogSink};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("slicerd: {e}");
            std::process::exit(2);
        }
    }
}

struct Args {
    listen: Endpoint,
    data: PathBuf,
    config: DaemonConfig,
    log_level: Level,
    log_format: LogFormat,
}

fn parse_args(args: &[String]) -> Result<Args, DaemonError> {
    let mut listen = None;
    let mut data = None;
    let mut config = DaemonConfig::default();
    let mut log_level = Level::Info;
    let mut log_format = LogFormat::Text;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => listen = Some(Endpoint::parse(value(&mut it, "--listen")?)?),
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--seed" => config.seed = parse_u64(value(&mut it, "--seed")?, "--seed")?,
            "--bits" => {
                let v = parse_u64(value(&mut it, "--bits")?, "--bits")?;
                config.value_bits = u8::try_from(v)
                    .map_err(|_| DaemonError::Config(format!("--bits out of range: {v}")))?;
            }
            "--slow-ms" => {
                config.slow_request_ns =
                    parse_u64(value(&mut it, "--slow-ms")?, "--slow-ms")?.saturating_mul(1_000_000);
            }
            "--event-ring" => {
                let v = parse_u64(value(&mut it, "--event-ring")?, "--event-ring")?;
                config.event_ring = usize::try_from(v)
                    .map_err(|_| DaemonError::Config(format!("--event-ring out of range: {v}")))?;
            }
            "--log-level" => {
                let v = value(&mut it, "--log-level")?;
                log_level = Level::parse(v)
                    .ok_or_else(|| DaemonError::Config(format!("bad --log-level {v:?}")))?;
            }
            "--log-format" => {
                log_format = match value(&mut it, "--log-format")?.as_str() {
                    "text" => LogFormat::Text,
                    "json" => LogFormat::JsonLines,
                    other => {
                        return Err(DaemonError::Config(format!(
                            "bad --log-format {other:?}, want text|json"
                        )))
                    }
                };
            }
            // Telemetry is always on now; the flag stays accepted so
            // existing scripts keep working.
            "--telemetry" => {}
            "--help" | "-h" => {
                return Err(DaemonError::Config(
                    "usage: slicerd --listen <endpoint> --data <dir> \
                     [--seed <n>] [--bits <n>] [--log-level <level>] \
                     [--log-format <text|json>] [--slow-ms <n>] \
                     [--event-ring <n>]"
                        .into(),
                ))
            }
            other => return Err(DaemonError::Config(format!("unknown flag {other}"))),
        }
    }
    Ok(Args {
        listen: listen.ok_or_else(|| DaemonError::Config("--listen is required".into()))?,
        data: data.ok_or_else(|| DaemonError::Config("--data is required".into()))?,
        config,
        log_level,
        log_format,
    })
}

fn value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, DaemonError> {
    it.next()
        .ok_or_else(|| DaemonError::Config(format!("{flag} needs a value")))
}

fn parse_u64(s: &str, flag: &str) -> Result<u64, DaemonError> {
    s.parse()
        .map_err(|_| DaemonError::Config(format!("{flag} wants an integer, got {s:?}")))
}

/// Chains a flight-recorder persist onto the default panic hook, so a
/// panicking daemon leaves its recent request history on disk before
/// the process aborts.
fn install_panic_hook(recorder: FlightRecorder) {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        // Best effort: a failed persist must not mask the panic itself.
        let _ = recorder.persist("panic");
        previous(info);
    }));
}

fn run(raw: Vec<String>) -> Result<(), DaemonError> {
    let args = parse_args(&raw)?;
    // The profiling plane is always on: every span feeds both the
    // flamegraph aggregator (behind the `profile` RPC) and a bounded
    // event ring, so `slicer-cli profile` works against any daemon.
    let (telemetry, profile, events) = instrumented_telemetry(args.config.event_ring);
    telemetry.set_log_level(args.log_level);
    telemetry.add_log_sink(Arc::new(match args.log_format {
        LogFormat::Text => WriterLogSink::stderr_text(),
        LogFormat::JsonLines => WriterLogSink::stderr_json(),
    }));
    let mut daemon = Daemon::open_profiled(
        &args.data,
        args.config,
        telemetry,
        Some(profile),
        Some(events),
    )?;
    install_panic_hook(daemon.flight_recorder());
    let boot = match daemon.boot() {
        Boot::Fresh => "fresh".to_string(),
        Boot::Restored(generation) => format!("restored generation {generation}"),
    };
    let listener = args.listen.bind()?;
    // The READY line is the machine-readable handshake the CLI smoke
    // stage and the integration tests wait for.
    println!(
        "READY listen={} boot={} digest={}",
        args.listen,
        boot,
        hex(&daemon.digest())
    );
    match daemon.serve(&listener) {
        Ok(()) => {
            let _ = daemon.flight_recorder().persist("shutdown");
            println!("slicerd: shutdown requested, exiting");
            Ok(())
        }
        Err(e) => {
            // serve() already persisted with reason "serve-error".
            Err(e)
        }
    }
}
