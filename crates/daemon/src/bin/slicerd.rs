//! `slicerd` — the Slicer serving daemon.
//!
//! ```text
//! slicerd --listen <endpoint> --data <dir> [--seed <n>] [--bits <n>] [--telemetry]
//! ```
//!
//! Endpoints: `tcp://HOST:PORT`, `unix:///path/to.sock`, or a bare
//! socket path. On boot the daemon restores the last sealed generation
//! from `--data` (fresh setup if none), prints one `READY` line, then
//! serves until a `shutdown` request.

use slicer_daemon::{hex, Boot, Daemon, DaemonConfig, DaemonError, Endpoint};
use slicer_telemetry::TelemetryHandle;
use std::path::PathBuf;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("slicerd: {e}");
            std::process::exit(2);
        }
    }
}

struct Args {
    listen: Endpoint,
    data: PathBuf,
    config: DaemonConfig,
    telemetry: bool,
}

fn parse_args(args: &[String]) -> Result<Args, DaemonError> {
    let mut listen = None;
    let mut data = None;
    let mut config = DaemonConfig::default();
    let mut telemetry = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => listen = Some(Endpoint::parse(value(&mut it, "--listen")?)?),
            "--data" => data = Some(PathBuf::from(value(&mut it, "--data")?)),
            "--seed" => config.seed = parse_u64(value(&mut it, "--seed")?, "--seed")?,
            "--bits" => {
                let v = parse_u64(value(&mut it, "--bits")?, "--bits")?;
                config.value_bits = u8::try_from(v)
                    .map_err(|_| DaemonError::Config(format!("--bits out of range: {v}")))?;
            }
            "--telemetry" => telemetry = true,
            "--help" | "-h" => {
                return Err(DaemonError::Config(
                    "usage: slicerd --listen <endpoint> --data <dir> \
                     [--seed <n>] [--bits <n>] [--telemetry]"
                        .into(),
                ))
            }
            other => return Err(DaemonError::Config(format!("unknown flag {other}"))),
        }
    }
    Ok(Args {
        listen: listen.ok_or_else(|| DaemonError::Config("--listen is required".into()))?,
        data: data.ok_or_else(|| DaemonError::Config("--data is required".into()))?,
        config,
        telemetry,
    })
}

fn value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<&'a String, DaemonError> {
    it.next()
        .ok_or_else(|| DaemonError::Config(format!("{flag} needs a value")))
}

fn parse_u64(s: &str, flag: &str) -> Result<u64, DaemonError> {
    s.parse()
        .map_err(|_| DaemonError::Config(format!("{flag} wants an integer, got {s:?}")))
}

fn run(raw: Vec<String>) -> Result<(), DaemonError> {
    let args = parse_args(&raw)?;
    let telemetry = if args.telemetry {
        TelemetryHandle::enabled()
    } else {
        TelemetryHandle::disabled()
    };
    let mut daemon = Daemon::open(&args.data, args.config, telemetry)?;
    let boot = match daemon.boot() {
        Boot::Fresh => "fresh".to_string(),
        Boot::Restored(generation) => format!("restored generation {generation}"),
    };
    let listener = args.listen.bind()?;
    // The READY line is the machine-readable handshake the CLI smoke
    // stage and the integration tests wait for.
    println!(
        "READY listen={} boot={} digest={}",
        args.listen,
        boot,
        hex(&daemon.digest())
    );
    daemon.serve(&listener)?;
    println!("slicerd: shutdown requested, exiting");
    Ok(())
}
