//! `slicer-cli` — command-line front-end for a running `slicerd`.
//!
//! ```text
//! slicer-cli --connect <endpoint> ingest <id>:<value> [...]
//! slicer-cli --connect <endpoint> search (eq|lt|gt) <value> [--payment <n>]
//! slicer-cli --connect <endpoint> verify
//! slicer-cli --connect <endpoint> stat
//! slicer-cli --connect <endpoint> metrics [--json | --check]
//! slicer-cli --connect <endpoint> tail [<n>]
//! slicer-cli --connect <endpoint> top [--interval-ms <n>]
//! slicer-cli --connect <endpoint> profile [--svg] [--gas] [--check]
//! slicer-cli --connect <endpoint> shutdown
//! slicer-cli flightrec <path>
//! slicer-cli bench-diff <baseline.json> <candidate.json> [--timing-rel <pct>]
//! ```
//!
//! `profile` pulls the daemon's live span aggregate as collapsed stacks
//! (`stack;frames weight` folded text, ready for any flamegraph tool) or
//! a self-contained SVG flamegraph; `--gas` switches the weights from
//! wall-nanoseconds to gas units, and `--check` reconciles the profile
//! against the metrics surface instead of printing it.
//!
//! `flightrec` decodes a crash flight-recorder segment straight from
//! disk and `bench-diff` compares two bench-JSON documents — neither
//! needs a daemon. Exit status: 0 on success; 1 when a search is
//! unverified, the chain fails verification, a flight recording shows an
//! in-flight (crashed) request, or a bench diff finds a regression; 2 on
//! usage, transport, daemon or validation errors.

use slicer_core::Query;
use slicer_daemon::{
    hex, DaemonClient, DaemonError, Endpoint, FlightRecording, MetricsReply, IN_FLIGHT,
};
use std::path::Path;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("slicer-cli: {e}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage: slicer-cli --connect <endpoint> \
                     (ingest <id>:<value>... | search (eq|lt|gt) <value> [--payment <n>] \
                     | verify | stat | metrics [--json|--check] | tail [<n>] \
                     | top [--interval-ms <n>] | profile [--svg] [--gas] [--check] \
                     | shutdown) \
                     — or: slicer-cli flightrec <path> \
                     — or: slicer-cli bench-diff <baseline.json> <candidate.json> [--timing-rel <pct>]";

fn run(args: Vec<String>) -> Result<i32, DaemonError> {
    let mut it = args.iter();
    let mut connect = None;
    let mut command = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                let ep = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--connect needs a value".into()))?;
                connect = Some(Endpoint::parse(ep)?);
            }
            "--help" | "-h" => return Err(DaemonError::Config(USAGE.into())),
            _ => {
                command = Some((arg.clone(), it.map(String::clone).collect::<Vec<_>>()));
                break;
            }
        }
    }
    let (name, rest) = command.ok_or_else(|| DaemonError::Config(USAGE.into()))?;
    // The flight-recorder decoder and the bench comparator read files,
    // not a socket.
    if name == "flightrec" {
        return flightrec(&rest);
    }
    if name == "bench-diff" {
        return bench_diff(&rest);
    }
    let endpoint = connect.ok_or_else(|| DaemonError::Config("--connect is required".into()))?;
    let mut client = DaemonClient::connect(&endpoint)?;
    match name.as_str() {
        "ingest" => ingest(&mut client, &rest),
        "search" => search(&mut client, &rest),
        "verify" => verify(&mut client),
        "stat" => stat(&mut client),
        "metrics" => metrics(&mut client, &rest),
        "tail" => tail(&mut client, &rest),
        "top" => top(&mut client, &rest),
        "profile" => profile(&mut client, &rest),
        "shutdown" => {
            client.shutdown()?;
            println!("shutdown acknowledged");
            Ok(0)
        }
        other => Err(DaemonError::Config(format!(
            "unknown command {other:?}; {USAGE}"
        ))),
    }
}

fn ingest(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    if rest.is_empty() {
        return Err(DaemonError::Config(
            "ingest wants at least one <id>:<value> pair".into(),
        ));
    }
    let mut records = Vec::with_capacity(rest.len());
    for pair in rest {
        let (id, value) = pair.split_once(':').ok_or_else(|| {
            DaemonError::Config(format!("bad record {pair:?}, want <id>:<value>"))
        })?;
        records.push((
            parse_u64(id, "record id")?,
            parse_u64(value, "record value")?,
        ));
    }
    let (count, generation, digest) = client.ingest(records)?;
    println!(
        "ingested records={count} generation={generation} digest={}",
        hex(&digest)
    );
    Ok(0)
}

fn search(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let mut it = rest.iter();
    let op = it
        .next()
        .ok_or_else(|| DaemonError::Config("search wants (eq|lt|gt) <value>".into()))?;
    let value = parse_u64(
        it.next()
            .ok_or_else(|| DaemonError::Config("search wants a value".into()))?,
        "search value",
    )?;
    let mut payment: u128 = 1_000;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--payment" => {
                let v = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--payment needs a value".into()))?;
                payment = v
                    .parse()
                    .map_err(|_| DaemonError::Config(format!("bad --payment {v:?}")))?;
            }
            other => return Err(DaemonError::Config(format!("unknown search flag {other}"))),
        }
    }
    let query = match op.as_str() {
        "eq" => Query::equal(value),
        "lt" => Query::less_than(value),
        "gt" => Query::greater_than(value),
        other => {
            return Err(DaemonError::Config(format!(
                "unknown operator {other:?}, want eq|lt|gt"
            )))
        }
    };
    let reply = client.search(query, payment)?;
    let ids: Vec<String> = reply.ids.iter().map(u64::to_string).collect();
    println!(
        "verified={} records=[{}] paid_cloud={} request_gas={} verify_gas={} digest={}",
        reply.verified,
        ids.join(","),
        reply.paid_cloud,
        reply.request_gas,
        reply.verify_gas,
        hex(&reply.digest)
    );
    Ok(if reply.verified { 0 } else { 1 })
}

fn verify(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let (chain_ok, height, digest) = client.verify()?;
    println!(
        "chain_ok={chain_ok} height={height} digest={}",
        hex(&digest)
    );
    Ok(if chain_ok { 0 } else { 1 })
}

fn stat(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let reply = client.stat()?;
    println!(
        "index_entries={} primes={} generation={} chain_height={} digest={}",
        reply.index_entries,
        reply.primes,
        reply.generation,
        reply.chain_height,
        hex(&reply.digest)
    );
    Ok(0)
}

/// `metrics` — scrape the daemon. Default prints the Prometheus text
/// exposition; `--json` prints the JSON export; `--check` validates both
/// renderings (JSON via the in-crate RFC 8259 parser, Prometheus via a
/// line-shape check) and prints machine-readable `metrics-check` markers.
fn metrics(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let reply = client.metrics()?;
    match rest.first().map(String::as_str) {
        None => {
            print!("{}", reply.prometheus);
            Ok(0)
        }
        Some("--json") => {
            println!("{}", reply.json);
            Ok(0)
        }
        Some("--check") => {
            let mut ok = true;
            match slicer_telemetry::json::parse(&reply.json) {
                Ok(()) => println!("metrics-check json=ok bytes={}", reply.json.len()),
                Err(e) => {
                    ok = false;
                    println!("metrics-check json=INVALID error={e}");
                }
            }
            match check_prometheus(&reply.prometheus) {
                Ok(samples) => println!("metrics-check prometheus=ok samples={samples}"),
                Err(e) => {
                    ok = false;
                    println!("metrics-check prometheus=INVALID error={e}");
                }
            }
            println!(
                "metrics-check uptime_ns={} version={} boot={} generation={}",
                reply.uptime_ns, reply.version, reply.boot, reply.generation
            );
            Ok(if ok { 0 } else { 2 })
        }
        Some(other) => Err(DaemonError::Config(format!(
            "unknown metrics flag {other}, want --json|--check"
        ))),
    }
}

/// Validates the Prometheus text exposition shape: every line is either
/// a `# TYPE <name> <kind>` comment or `<name>[{labels}] <integer>`, and
/// at least one sample is present.
fn check_prometheus(text: &str) -> Result<u64, String> {
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut words = comment.split_whitespace();
            if words.next() != Some("TYPE") {
                return Err(format!("line {}: unexpected comment {line:?}", i + 1));
            }
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample value in {line:?}", i + 1))?;
        if name.is_empty() || !name.starts_with("slicer_") {
            return Err(format!(
                "line {}: metric {name:?} lacks slicer_ prefix",
                i + 1
            ));
        }
        value
            .parse::<u64>()
            .map_err(|_| format!("line {}: non-integer sample {value:?}", i + 1))?;
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

/// `tail [<n>]` — print the last `n` (default 20) structured-log records
/// as JSON lines, newest last, plus a trailing drop count to stderr.
fn tail(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let count = match rest.first() {
        Some(n) => parse_u64(n, "tail count")?,
        None => 20,
    };
    let (lines, dropped) = client.tail(count)?;
    for line in &lines {
        println!("{line}");
    }
    if dropped > 0 {
        eprintln!("slicer-cli: ring dropped {dropped} older records");
    }
    Ok(0)
}

/// `top [--interval-ms <n>]` — one-shot dashboard: two metrics samples
/// `interval` apart, printed as request/error/byte rates plus per-RPC
/// latency quantiles.
fn top(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let mut interval_ms: u64 = 1_000;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--interval-ms" => {
                interval_ms = parse_u64(
                    it.next()
                        .ok_or_else(|| DaemonError::Config("--interval-ms needs a value".into()))?,
                    "--interval-ms",
                )?;
            }
            other => return Err(DaemonError::Config(format!("unknown top flag {other}"))),
        }
    }
    let first = client.metrics()?;
    // A one-shot observer pausing between two scrapes of a remote
    // process — no protocol state is touched, so the determinism
    // argument the lint protects does not apply here.
    std::thread::sleep(std::time::Duration::from_millis(interval_ms)); // slicer-lint: allow(det.thread) — sampling delay in an observer CLI, outside any protocol path
    let second = client.metrics()?;

    let window_ns = second.uptime_ns.saturating_sub(first.uptime_ns).max(1);
    println!(
        "slicerd {} boot={} generation={} uptime={:.1}s window={}ms",
        second.version,
        second.boot,
        second.generation,
        second.uptime_ns as f64 / 1e9,
        window_ns / 1_000_000
    );
    let rate = |name: &str| {
        let delta = counter(&second, name).saturating_sub(counter(&first, name));
        delta as f64 * 1e9 / window_ns as f64
    };
    println!(
        "req/s {:>8.1}   conn/s {:>6.1}   in {:>10.0} B/s   out {:>10.0} B/s",
        rate("rpc.requests"),
        rate("net.connections"),
        gauge_rate(&first, &second, "net.bytes_in", window_ns),
        gauge_rate(&first, &second, "net.bytes_out", window_ns),
    );
    let errors: Vec<String> = second
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("rpc.error."))
        .map(|(n, v)| format!("{}={v}", n.trim_start_matches("rpc.error.")))
        .collect();
    println!(
        "errors {}",
        if errors.is_empty() {
            "none".to_string()
        } else {
            errors.join(" ")
        }
    );
    let gauge = |name: &str| {
        second
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    println!(
        "inflight {}   dropped_events {}",
        gauge("rpc.inflight"),
        gauge("telemetry.events.dropped")
    );
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10}",
        "rpc", "count", "p50us", "p90us", "p99us"
    );
    // Per-RPC service latency, plus the connection-lifetime histogram so
    // long-lived client connections are visible next to the request mix.
    for (name, h) in &second.histograms {
        let shown = name.starts_with("rpc.") || name == "net.connection.lifetime.ns";
        if !shown || h.count == 0 {
            continue;
        }
        println!(
            "{:<22} {:>8} {:>10} {:>10} {:>10}",
            name.trim_end_matches(".ns"),
            h.count,
            h.p50 / 1_000,
            h.p90 / 1_000,
            h.p99 / 1_000
        );
    }
    Ok(0)
}

/// `profile [--svg] [--gas]` — pull the daemon's live span aggregate.
/// Default prints folded stacks (`frame;frame;frame weight`, one stack
/// per line — pipe into any flamegraph renderer); `--svg` prints a
/// self-contained SVG flamegraph instead. `--gas` weighs frames by gas
/// units rather than wall nanoseconds. `--check` reconciles the profile
/// against the metrics surface instead of printing it: gas totals must
/// equal the `phase.*.gas` counters exactly, wall totals must stay
/// within the `rpc.*.ns` histogram envelope, and the SVG must pass the
/// in-crate XML well-formedness checker.
fn profile(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let mut svg = false;
    let mut gas = false;
    let mut check = false;
    for flag in rest {
        match flag.as_str() {
            "--svg" => svg = true,
            "--gas" => gas = true,
            "--check" => check = true,
            other => {
                return Err(DaemonError::Config(format!(
                    "unknown profile flag {other}, want --svg|--gas|--check"
                )))
            }
        }
    }
    if check {
        return profile_check(client);
    }
    let reply = client.profile(svg, gas)?;
    print!("{}", reply.rendered);
    if !reply.rendered.ends_with('\n') {
        println!();
    }
    eprintln!(
        "slicer-cli: profile format={} mode={} total={} stacks={} dropped_stacks={}",
        reply.format, reply.mode, reply.total, reply.stacks, reply.dropped_stacks
    );
    Ok(0)
}

/// The `profile --check` reconciliation pass. Three RPCs (folded wall,
/// folded gas, SVG) plus one metrics scrape, then three verdicts:
///
/// * `svg` — the rendered flamegraph is well-formed XML.
/// * `wall` — the `daemon.request` root's inclusive wall total in the
///   profile does not exceed the summed `rpc.*.ns` histograms (the
///   histograms are scraped *after* the profile, so they cover a
///   superset of the profiled requests).
/// * `gas` — the profile's gas total equals the summed `phase.*.gas`
///   counters exactly; both surfaces are fed by the same span
///   attributes, so any drift means lost or double-counted gas.
fn profile_check(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let wall = client.profile(false, false)?;
    let gas = client.profile(false, true)?;
    let svg = client.profile(true, false)?;
    let metrics = client.metrics()?;

    let mut ok = true;
    match slicer_telemetry::xml::check(&svg.rendered) {
        Ok(()) => println!("profile-check svg=ok bytes={}", svg.rendered.len()),
        Err(e) => {
            ok = false;
            println!("profile-check svg=INVALID error={e}");
        }
    }

    let wall_root: u64 = wall
        .rendered
        .lines()
        .filter_map(|line| {
            let (stack, weight) = line.rsplit_once(' ')?;
            let first = stack.split(';').next().unwrap_or(stack);
            (first == "daemon.request").then(|| weight.parse::<u64>().ok())?
        })
        .sum();
    let rpc_ns: u64 = metrics
        .histograms
        .iter()
        .filter(|(n, _)| n.starts_with("rpc.") && n.ends_with(".ns"))
        .map(|(_, h)| h.sum)
        .sum();
    if wall_root <= rpc_ns {
        println!("profile-check wall=ok profile_ns={wall_root} rpc_ns={rpc_ns}");
    } else {
        ok = false;
        println!("profile-check wall=INVALID profile_ns={wall_root} rpc_ns={rpc_ns}");
    }

    let phase_gas: u64 = metrics
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("phase.") && n.ends_with(".gas"))
        .map(|(_, v)| *v)
        .sum();
    if gas.total == phase_gas {
        println!(
            "profile-check gas=ok profile_gas={} counters_gas={phase_gas}",
            gas.total
        );
    } else {
        ok = false;
        println!(
            "profile-check gas=INVALID profile_gas={} counters_gas={phase_gas}",
            gas.total
        );
    }
    println!(
        "profile-check stacks={} dropped_stacks={}",
        wall.stacks, wall.dropped_stacks
    );
    Ok(if ok { 0 } else { 2 })
}

/// `bench-diff <baseline> <candidate> [--timing-rel <pct>]` — compare
/// two bench-JSON documents with the testkit comparator. Deterministic
/// metrics (counters, gauges, histogram counts) must match exactly;
/// timing metrics are informational unless `--timing-rel` supplies a
/// tolerance in percent. Exit 0 when clean, 1 on regression.
fn bench_diff(rest: &[String]) -> Result<i32, DaemonError> {
    let mut paths = Vec::new();
    let mut config = slicer_testkit::DiffConfig::default();
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--timing-rel" => {
                let v = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--timing-rel needs a value".into()))?;
                let pct: f64 = v
                    .parse()
                    .map_err(|_| DaemonError::Config(format!("bad --timing-rel {v:?}")))?;
                config.timing_rel = Some(pct / 100.0);
            }
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return Err(DaemonError::Config(
            "bench-diff wants exactly two files: <baseline.json> <candidate.json>".into(),
        ));
    };
    let load = |path: &str| -> Result<slicer_testkit::BenchDoc, DaemonError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| DaemonError::Config(format!("cannot read {path}: {e}")))?;
        slicer_testkit::parse_bench_json(&text)
            .map_err(|e| DaemonError::Config(format!("{path}: {e}")))
    };
    let old = load(baseline)?;
    let new = load(candidate)?;
    let report = slicer_testkit::diff(&old, &new, &config);
    print!("{}", report.render());
    Ok(if report.ok() { 0 } else { 1 })
}

fn counter(reply: &MetricsReply, name: &str) -> u64 {
    reply
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn gauge_rate(first: &MetricsReply, second: &MetricsReply, name: &str, window_ns: u64) -> f64 {
    let at = |reply: &MetricsReply| {
        reply
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    at(second).saturating_sub(at(first)) as f64 * 1e9 / window_ns as f64
}

/// `flightrec <path>` — decode a flight-recorder segment from disk:
/// persist reason, the recent request ring (oldest first), and the log
/// transcript the daemon held when it wrote the segment.
fn flightrec(rest: &[String]) -> Result<i32, DaemonError> {
    let path = rest
        .first()
        .ok_or_else(|| DaemonError::Config("flightrec wants a segment path".into()))?;
    let rec = FlightRecording::load(Path::new(path))?;
    println!(
        "flightrec reason={} requests={} next_seq={}",
        rec.reason,
        rec.requests.len(),
        rec.next_seq
    );
    let mut crashed = false;
    for r in &rec.requests {
        if r.outcome == IN_FLIGHT {
            crashed = true;
        }
        println!(
            "  seq={} kind={} trace={} start_ns={} duration_ns={} outcome={}",
            r.seq, r.kind, r.trace_id, r.start_ns, r.duration_ns, r.outcome
        );
    }
    if !rec.log.is_empty() {
        println!("--- log transcript ---");
        print!("{}", rec.log);
        if !rec.log.ends_with('\n') {
            println!();
        }
    }
    // Version-2 recordings embed the daemon's final profile, so a crash
    // dump carries its own flamegraph input.
    for (title, folded) in [
        ("wall profile (folded)", &rec.profile_wall),
        ("gas profile (folded)", &rec.profile_gas),
    ] {
        if !folded.is_empty() {
            println!("--- {title} ---");
            print!("{folded}");
            if !folded.ends_with('\n') {
                println!();
            }
        }
    }
    Ok(if crashed { 1 } else { 0 })
}

fn parse_u64(s: &str, what: &str) -> Result<u64, DaemonError> {
    s.parse()
        .map_err(|_| DaemonError::Config(format!("bad {what} {s:?}, want an integer")))
}
