//! `slicer-cli` — command-line front-end for a running `slicerd`.
//!
//! ```text
//! slicer-cli --connect <endpoint> ingest <id>:<value> [...]
//! slicer-cli --connect <endpoint> search (eq|lt|gt) <value> [--payment <n>]
//! slicer-cli --connect <endpoint> verify
//! slicer-cli --connect <endpoint> stat
//! slicer-cli --connect <endpoint> metrics [--json | --check]
//! slicer-cli --connect <endpoint> tail [<n>]
//! slicer-cli --connect <endpoint> top [--interval-ms <n>]
//! slicer-cli --connect <endpoint> shutdown
//! slicer-cli flightrec <path>
//! ```
//!
//! `flightrec` decodes a crash flight-recorder segment straight from
//! disk and needs no daemon. Exit status: 0 on success; 1 when a search
//! is unverified, the chain fails verification, or a flight recording
//! shows an in-flight (crashed) request; 2 on usage, transport, daemon
//! or validation errors.

use slicer_core::Query;
use slicer_daemon::{
    hex, DaemonClient, DaemonError, Endpoint, FlightRecording, MetricsReply, IN_FLIGHT,
};
use std::path::Path;

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("slicer-cli: {e}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage: slicer-cli --connect <endpoint> \
                     (ingest <id>:<value>... | search (eq|lt|gt) <value> [--payment <n>] \
                     | verify | stat | metrics [--json|--check] | tail [<n>] \
                     | top [--interval-ms <n>] | shutdown) \
                     — or: slicer-cli flightrec <path>";

fn run(args: Vec<String>) -> Result<i32, DaemonError> {
    let mut it = args.iter();
    let mut connect = None;
    let mut command = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                let ep = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--connect needs a value".into()))?;
                connect = Some(Endpoint::parse(ep)?);
            }
            "--help" | "-h" => return Err(DaemonError::Config(USAGE.into())),
            _ => {
                command = Some((arg.clone(), it.map(String::clone).collect::<Vec<_>>()));
                break;
            }
        }
    }
    let (name, rest) = command.ok_or_else(|| DaemonError::Config(USAGE.into()))?;
    // The flight-recorder decoder reads a file, not a socket.
    if name == "flightrec" {
        return flightrec(&rest);
    }
    let endpoint = connect.ok_or_else(|| DaemonError::Config("--connect is required".into()))?;
    let mut client = DaemonClient::connect(&endpoint)?;
    match name.as_str() {
        "ingest" => ingest(&mut client, &rest),
        "search" => search(&mut client, &rest),
        "verify" => verify(&mut client),
        "stat" => stat(&mut client),
        "metrics" => metrics(&mut client, &rest),
        "tail" => tail(&mut client, &rest),
        "top" => top(&mut client, &rest),
        "shutdown" => {
            client.shutdown()?;
            println!("shutdown acknowledged");
            Ok(0)
        }
        other => Err(DaemonError::Config(format!(
            "unknown command {other:?}; {USAGE}"
        ))),
    }
}

fn ingest(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    if rest.is_empty() {
        return Err(DaemonError::Config(
            "ingest wants at least one <id>:<value> pair".into(),
        ));
    }
    let mut records = Vec::with_capacity(rest.len());
    for pair in rest {
        let (id, value) = pair.split_once(':').ok_or_else(|| {
            DaemonError::Config(format!("bad record {pair:?}, want <id>:<value>"))
        })?;
        records.push((
            parse_u64(id, "record id")?,
            parse_u64(value, "record value")?,
        ));
    }
    let (count, generation, digest) = client.ingest(records)?;
    println!(
        "ingested records={count} generation={generation} digest={}",
        hex(&digest)
    );
    Ok(0)
}

fn search(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let mut it = rest.iter();
    let op = it
        .next()
        .ok_or_else(|| DaemonError::Config("search wants (eq|lt|gt) <value>".into()))?;
    let value = parse_u64(
        it.next()
            .ok_or_else(|| DaemonError::Config("search wants a value".into()))?,
        "search value",
    )?;
    let mut payment: u128 = 1_000;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--payment" => {
                let v = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--payment needs a value".into()))?;
                payment = v
                    .parse()
                    .map_err(|_| DaemonError::Config(format!("bad --payment {v:?}")))?;
            }
            other => return Err(DaemonError::Config(format!("unknown search flag {other}"))),
        }
    }
    let query = match op.as_str() {
        "eq" => Query::equal(value),
        "lt" => Query::less_than(value),
        "gt" => Query::greater_than(value),
        other => {
            return Err(DaemonError::Config(format!(
                "unknown operator {other:?}, want eq|lt|gt"
            )))
        }
    };
    let reply = client.search(query, payment)?;
    let ids: Vec<String> = reply.ids.iter().map(u64::to_string).collect();
    println!(
        "verified={} records=[{}] paid_cloud={} request_gas={} verify_gas={} digest={}",
        reply.verified,
        ids.join(","),
        reply.paid_cloud,
        reply.request_gas,
        reply.verify_gas,
        hex(&reply.digest)
    );
    Ok(if reply.verified { 0 } else { 1 })
}

fn verify(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let (chain_ok, height, digest) = client.verify()?;
    println!(
        "chain_ok={chain_ok} height={height} digest={}",
        hex(&digest)
    );
    Ok(if chain_ok { 0 } else { 1 })
}

fn stat(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let reply = client.stat()?;
    println!(
        "index_entries={} primes={} generation={} chain_height={} digest={}",
        reply.index_entries,
        reply.primes,
        reply.generation,
        reply.chain_height,
        hex(&reply.digest)
    );
    Ok(0)
}

/// `metrics` — scrape the daemon. Default prints the Prometheus text
/// exposition; `--json` prints the JSON export; `--check` validates both
/// renderings (JSON via the in-crate RFC 8259 parser, Prometheus via a
/// line-shape check) and prints machine-readable `metrics-check` markers.
fn metrics(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let reply = client.metrics()?;
    match rest.first().map(String::as_str) {
        None => {
            print!("{}", reply.prometheus);
            Ok(0)
        }
        Some("--json") => {
            println!("{}", reply.json);
            Ok(0)
        }
        Some("--check") => {
            let mut ok = true;
            match slicer_telemetry::json::parse(&reply.json) {
                Ok(()) => println!("metrics-check json=ok bytes={}", reply.json.len()),
                Err(e) => {
                    ok = false;
                    println!("metrics-check json=INVALID error={e}");
                }
            }
            match check_prometheus(&reply.prometheus) {
                Ok(samples) => println!("metrics-check prometheus=ok samples={samples}"),
                Err(e) => {
                    ok = false;
                    println!("metrics-check prometheus=INVALID error={e}");
                }
            }
            println!(
                "metrics-check uptime_ns={} version={} boot={} generation={}",
                reply.uptime_ns, reply.version, reply.boot, reply.generation
            );
            Ok(if ok { 0 } else { 2 })
        }
        Some(other) => Err(DaemonError::Config(format!(
            "unknown metrics flag {other}, want --json|--check"
        ))),
    }
}

/// Validates the Prometheus text exposition shape: every line is either
/// a `# TYPE <name> <kind>` comment or `<name>[{labels}] <integer>`, and
/// at least one sample is present.
fn check_prometheus(text: &str) -> Result<u64, String> {
    let mut samples = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix("# ") {
            let mut words = comment.split_whitespace();
            if words.next() != Some("TYPE") {
                return Err(format!("line {}: unexpected comment {line:?}", i + 1));
            }
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no sample value in {line:?}", i + 1))?;
        if name.is_empty() || !name.starts_with("slicer_") {
            return Err(format!(
                "line {}: metric {name:?} lacks slicer_ prefix",
                i + 1
            ));
        }
        value
            .parse::<u64>()
            .map_err(|_| format!("line {}: non-integer sample {value:?}", i + 1))?;
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".into());
    }
    Ok(samples)
}

/// `tail [<n>]` — print the last `n` (default 20) structured-log records
/// as JSON lines, newest last, plus a trailing drop count to stderr.
fn tail(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let count = match rest.first() {
        Some(n) => parse_u64(n, "tail count")?,
        None => 20,
    };
    let (lines, dropped) = client.tail(count)?;
    for line in &lines {
        println!("{line}");
    }
    if dropped > 0 {
        eprintln!("slicer-cli: ring dropped {dropped} older records");
    }
    Ok(0)
}

/// `top [--interval-ms <n>]` — one-shot dashboard: two metrics samples
/// `interval` apart, printed as request/error/byte rates plus per-RPC
/// latency quantiles.
fn top(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let mut interval_ms: u64 = 1_000;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--interval-ms" => {
                interval_ms = parse_u64(
                    it.next()
                        .ok_or_else(|| DaemonError::Config("--interval-ms needs a value".into()))?,
                    "--interval-ms",
                )?;
            }
            other => return Err(DaemonError::Config(format!("unknown top flag {other}"))),
        }
    }
    let first = client.metrics()?;
    // A one-shot observer pausing between two scrapes of a remote
    // process — no protocol state is touched, so the determinism
    // argument the lint protects does not apply here.
    std::thread::sleep(std::time::Duration::from_millis(interval_ms)); // slicer-lint: allow(det.thread) — sampling delay in an observer CLI, outside any protocol path
    let second = client.metrics()?;

    let window_ns = second.uptime_ns.saturating_sub(first.uptime_ns).max(1);
    println!(
        "slicerd {} boot={} generation={} uptime={:.1}s window={}ms",
        second.version,
        second.boot,
        second.generation,
        second.uptime_ns as f64 / 1e9,
        window_ns / 1_000_000
    );
    let rate = |name: &str| {
        let delta = counter(&second, name).saturating_sub(counter(&first, name));
        delta as f64 * 1e9 / window_ns as f64
    };
    println!(
        "req/s {:>8.1}   conn/s {:>6.1}   in {:>10.0} B/s   out {:>10.0} B/s",
        rate("rpc.requests"),
        rate("net.connections"),
        gauge_rate(&first, &second, "net.bytes_in", window_ns),
        gauge_rate(&first, &second, "net.bytes_out", window_ns),
    );
    let errors: Vec<String> = second
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("rpc.error."))
        .map(|(n, v)| format!("{}={v}", n.trim_start_matches("rpc.error.")))
        .collect();
    println!(
        "errors {}",
        if errors.is_empty() {
            "none".to_string()
        } else {
            errors.join(" ")
        }
    );
    println!(
        "{:<18} {:>8} {:>10} {:>10} {:>10}",
        "rpc", "count", "p50us", "p90us", "p99us"
    );
    for (name, h) in &second.histograms {
        if !name.starts_with("rpc.") || h.count == 0 {
            continue;
        }
        println!(
            "{:<18} {:>8} {:>10} {:>10} {:>10}",
            name.trim_end_matches(".ns"),
            h.count,
            h.p50 / 1_000,
            h.p90 / 1_000,
            h.p99 / 1_000
        );
    }
    Ok(0)
}

fn counter(reply: &MetricsReply, name: &str) -> u64 {
    reply
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

fn gauge_rate(first: &MetricsReply, second: &MetricsReply, name: &str, window_ns: u64) -> f64 {
    let at = |reply: &MetricsReply| {
        reply
            .gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    at(second).saturating_sub(at(first)) as f64 * 1e9 / window_ns as f64
}

/// `flightrec <path>` — decode a flight-recorder segment from disk:
/// persist reason, the recent request ring (oldest first), and the log
/// transcript the daemon held when it wrote the segment.
fn flightrec(rest: &[String]) -> Result<i32, DaemonError> {
    let path = rest
        .first()
        .ok_or_else(|| DaemonError::Config("flightrec wants a segment path".into()))?;
    let rec = FlightRecording::load(Path::new(path))?;
    println!(
        "flightrec reason={} requests={} next_seq={}",
        rec.reason,
        rec.requests.len(),
        rec.next_seq
    );
    let mut crashed = false;
    for r in &rec.requests {
        if r.outcome == IN_FLIGHT {
            crashed = true;
        }
        println!(
            "  seq={} kind={} trace={} start_ns={} duration_ns={} outcome={}",
            r.seq, r.kind, r.trace_id, r.start_ns, r.duration_ns, r.outcome
        );
    }
    if !rec.log.is_empty() {
        println!("--- log transcript ---");
        print!("{}", rec.log);
        if !rec.log.ends_with('\n') {
            println!();
        }
    }
    Ok(if crashed { 1 } else { 0 })
}

fn parse_u64(s: &str, what: &str) -> Result<u64, DaemonError> {
    s.parse()
        .map_err(|_| DaemonError::Config(format!("bad {what} {s:?}, want an integer")))
}
