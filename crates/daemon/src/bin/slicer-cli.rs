//! `slicer-cli` — command-line front-end for a running `slicerd`.
//!
//! ```text
//! slicer-cli --connect <endpoint> ingest <id>:<value> [...]
//! slicer-cli --connect <endpoint> search (eq|lt|gt) <value> [--payment <n>]
//! slicer-cli --connect <endpoint> verify
//! slicer-cli --connect <endpoint> stat
//! slicer-cli --connect <endpoint> shutdown
//! ```
//!
//! Exit status: 0 on success; 1 when a search is unverified or the chain
//! fails verification; 2 on usage, transport or daemon errors.

use slicer_core::Query;
use slicer_daemon::{hex, DaemonClient, DaemonError, Endpoint};

fn main() {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => std::process::exit(code),
        Err(e) => {
            eprintln!("slicer-cli: {e}");
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "usage: slicer-cli --connect <endpoint> \
                     (ingest <id>:<value>... | search (eq|lt|gt) <value> [--payment <n>] \
                     | verify | stat | shutdown)";

fn run(args: Vec<String>) -> Result<i32, DaemonError> {
    let mut it = args.iter();
    let mut connect = None;
    let mut command = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                let ep = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--connect needs a value".into()))?;
                connect = Some(Endpoint::parse(ep)?);
            }
            "--help" | "-h" => return Err(DaemonError::Config(USAGE.into())),
            _ => {
                command = Some((arg.clone(), it.map(String::clone).collect::<Vec<_>>()));
                break;
            }
        }
    }
    let endpoint = connect.ok_or_else(|| DaemonError::Config("--connect is required".into()))?;
    let (name, rest) = command.ok_or_else(|| DaemonError::Config(USAGE.into()))?;
    let mut client = DaemonClient::connect(&endpoint)?;
    match name.as_str() {
        "ingest" => ingest(&mut client, &rest),
        "search" => search(&mut client, &rest),
        "verify" => verify(&mut client),
        "stat" => stat(&mut client),
        "shutdown" => {
            client.shutdown()?;
            println!("shutdown acknowledged");
            Ok(0)
        }
        other => Err(DaemonError::Config(format!(
            "unknown command {other:?}; {USAGE}"
        ))),
    }
}

fn ingest(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    if rest.is_empty() {
        return Err(DaemonError::Config(
            "ingest wants at least one <id>:<value> pair".into(),
        ));
    }
    let mut records = Vec::with_capacity(rest.len());
    for pair in rest {
        let (id, value) = pair.split_once(':').ok_or_else(|| {
            DaemonError::Config(format!("bad record {pair:?}, want <id>:<value>"))
        })?;
        records.push((
            parse_u64(id, "record id")?,
            parse_u64(value, "record value")?,
        ));
    }
    let (count, generation, digest) = client.ingest(records)?;
    println!(
        "ingested records={count} generation={generation} digest={}",
        hex(&digest)
    );
    Ok(0)
}

fn search(client: &mut DaemonClient, rest: &[String]) -> Result<i32, DaemonError> {
    let mut it = rest.iter();
    let op = it
        .next()
        .ok_or_else(|| DaemonError::Config("search wants (eq|lt|gt) <value>".into()))?;
    let value = parse_u64(
        it.next()
            .ok_or_else(|| DaemonError::Config("search wants a value".into()))?,
        "search value",
    )?;
    let mut payment: u128 = 1_000;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--payment" => {
                let v = it
                    .next()
                    .ok_or_else(|| DaemonError::Config("--payment needs a value".into()))?;
                payment = v
                    .parse()
                    .map_err(|_| DaemonError::Config(format!("bad --payment {v:?}")))?;
            }
            other => return Err(DaemonError::Config(format!("unknown search flag {other}"))),
        }
    }
    let query = match op.as_str() {
        "eq" => Query::equal(value),
        "lt" => Query::less_than(value),
        "gt" => Query::greater_than(value),
        other => {
            return Err(DaemonError::Config(format!(
                "unknown operator {other:?}, want eq|lt|gt"
            )))
        }
    };
    let reply = client.search(query, payment)?;
    let ids: Vec<String> = reply.ids.iter().map(u64::to_string).collect();
    println!(
        "verified={} records=[{}] paid_cloud={} request_gas={} verify_gas={} digest={}",
        reply.verified,
        ids.join(","),
        reply.paid_cloud,
        reply.request_gas,
        reply.verify_gas,
        hex(&reply.digest)
    );
    Ok(if reply.verified { 0 } else { 1 })
}

fn verify(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let (chain_ok, height, digest) = client.verify()?;
    println!(
        "chain_ok={chain_ok} height={height} digest={}",
        hex(&digest)
    );
    Ok(if chain_ok { 0 } else { 1 })
}

fn stat(client: &mut DaemonClient) -> Result<i32, DaemonError> {
    let reply = client.stat()?;
    println!(
        "index_entries={} primes={} generation={} chain_height={} digest={}",
        reply.index_entries,
        reply.primes,
        reply.generation,
        reply.chain_height,
        hex(&reply.digest)
    );
    Ok(0)
}

fn parse_u64(s: &str, what: &str) -> Result<u64, DaemonError> {
    s.parse()
        .map_err(|_| DaemonError::Config(format!("bad {what} {s:?}, want an integer")))
}
