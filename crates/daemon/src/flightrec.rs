//! The crash flight recorder: a bounded ring of recent requests plus
//! the structured-log tail, persisted as a checksummed `.slc` segment
//! so *any* death of the daemon — panic, fatal serve-loop error, clean
//! shutdown, even `kill -9` — leaves a decodable post-mortem artifact.
//!
//! `SIGKILL` cannot be caught, so waiting for a panic hook is not
//! enough: the recorder re-persists at every request *start* (marking
//! the entry in-flight) and again at request *end*. A process killed
//! mid-request therefore leaves a segment whose newest entry names the
//! request that was executing — exactly what the crash_restart suite
//! and the ci.sh kill-9 stage assert on. Each persist writes a temp
//! file and renames it over [`FLIGHTREC_FILE`], so the artifact is
//! never torn; the payload frames reuse [`slicer_persist`]'s
//! `[u64 LE len ‖ payload ‖ SHA-256(payload)]` framing, so a corrupted
//! recording fails checksum validation on read instead of decoding
//! garbage.
//!
//! Segment layout (frames behind the standard `SLCSEG1\0` magic):
//!
//! ```text
//! frame 0   FlightHeader  { version, reason, next_seq }
//! frame 1   Vec<FlightRecord>   oldest → newest
//! frame 2   String              log tail, JSON lines
//! frame 3   String              folded wall profile   (version ≥ 2)
//! frame 4   String              folded gas profile    (version ≥ 2)
//! ```
//!
//! Version 2 embeds the daemon's final collapsed-stack profile (when a
//! [`ProfileAggregator`] is attached), so a crash dump answers not just
//! "what was running" but "where the time and gas had gone". Version-1
//! recordings (three frames) still load, with empty profiles.

use crate::error::DaemonError;
use slicer_telemetry::{MemoryLogSink, ProfileAggregator, ProfileMode};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// File name of the recording inside the daemon's data directory.
pub const FLIGHTREC_FILE: &str = "flightrec.slc";

/// Recording format version (frame-0 header field).
const FLIGHTREC_VERSION: u32 = 2;

/// Outcome marker of a request entry that is still executing. A
/// recording whose newest entry carries this outcome names the request
/// that was in flight when the process died.
pub const IN_FLIGHT: &str = "in-flight";

/// One request in the recorder's ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Monotonic request number within this process lifetime.
    pub seq: u64,
    /// The request's trace id (0 = none supplied).
    pub trace_id: u64,
    /// Operation name (`"ingest"`, `"search"`, …).
    pub kind: String,
    /// Clock reading when handling began.
    pub start_ns: u64,
    /// Handling duration (0 while in flight).
    pub duration_ns: u64,
    /// [`IN_FLIGHT`], `"ok"`, or `"error: …"`.
    pub outcome: String,
}

slicer_crypto::impl_codec!(FlightRecord {
    seq,
    trace_id,
    kind,
    start_ns,
    duration_ns,
    outcome
});

#[derive(Debug, Clone, PartialEq, Eq)]
struct FlightHeader {
    version: u32,
    reason: String,
    next_seq: u64,
}

slicer_crypto::impl_codec!(FlightHeader {
    version,
    reason,
    next_seq
});

#[derive(Debug)]
struct RecorderState {
    ring: VecDeque<FlightRecord>,
    next_seq: u64,
}

#[derive(Debug)]
struct RecorderInner {
    path: PathBuf,
    capacity: usize,
    /// The daemon's log ring; its tail is embedded in every persist so
    /// the post-mortem carries the words alongside the requests.
    logs: Arc<MemoryLogSink>,
    /// The daemon's live profile aggregator, when profiling is on; its
    /// folded wall and gas stacks are embedded in every persist.
    profile: Option<Arc<ProfileAggregator>>,
    state: Mutex<RecorderState>,
}

/// Shared handle to the flight recorder. Clones share one ring — the
/// serving loop holds one, the panic hook another.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder persisting to `path`, retaining the last `capacity`
    /// requests (min 1), embedding the tail of `logs` and — when
    /// `profile` is supplied — the live folded wall/gas profiles.
    pub fn new(
        path: PathBuf,
        capacity: usize,
        logs: Arc<MemoryLogSink>,
        profile: Option<Arc<ProfileAggregator>>,
    ) -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                path,
                capacity: capacity.max(1),
                logs,
                profile,
                state: Mutex::new(RecorderState {
                    ring: VecDeque::new(),
                    next_seq: 1,
                }),
            }),
        }
    }

    /// Where the recording lives on disk.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    fn locked(&self) -> MutexGuard<'_, RecorderState> {
        // The recorder is exactly what must keep working while the
        // process is dying — recover a poisoned lock instead of
        // propagating the panic.
        match self.inner.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Registers a request as in flight and persists the recording, so
    /// a `kill -9` during handling leaves the entry on disk. Returns
    /// the entry's sequence number for [`FlightRecorder::end`]. Persist
    /// failures are reported to the caller but never fail the request.
    pub fn begin(&self, trace_id: u64, kind: &str, start_ns: u64) -> (u64, Option<DaemonError>) {
        let seq = {
            let mut state = self.locked();
            let seq = state.next_seq;
            state.next_seq += 1;
            if state.ring.len() == self.inner.capacity {
                state.ring.pop_front();
            }
            state.ring.push_back(FlightRecord {
                seq,
                trace_id,
                kind: kind.to_string(),
                start_ns,
                duration_ns: 0,
                outcome: IN_FLIGHT.to_string(),
            });
            seq
        };
        (seq, self.persist("request-start").err())
    }

    /// Marks entry `seq` finished with `outcome` and persists. A `seq`
    /// already evicted from the ring is ignored.
    pub fn end(&self, seq: u64, duration_ns: u64, outcome: &str) -> Option<DaemonError> {
        {
            let mut state = self.locked();
            if let Some(entry) = state.ring.iter_mut().find(|r| r.seq == seq) {
                entry.duration_ns = duration_ns;
                entry.outcome = outcome.to_string();
            }
        }
        self.persist("request-end").err()
    }

    /// Writes the recording to disk atomically (temp file + rename),
    /// stamping it with `reason` (`"request-start"`, `"request-end"`,
    /// `"shutdown"`, `"panic"`, `"serve-error"`).
    ///
    /// # Errors
    ///
    /// [`DaemonError::Persist`] / [`DaemonError::Io`] on filesystem
    /// failure — callers on the serving path log and continue.
    pub fn persist(&self, reason: &str) -> Result<(), DaemonError> {
        let (records, next_seq) = {
            let state = self.locked();
            (
                state.ring.iter().cloned().collect::<Vec<FlightRecord>>(),
                state.next_seq,
            )
        };
        let header = FlightHeader {
            version: FLIGHTREC_VERSION,
            reason: reason.to_string(),
            next_seq,
        };
        let (profile_wall, profile_gas) = match &self.inner.profile {
            Some(agg) => {
                let p = agg.snapshot();
                (
                    p.to_folded(ProfileMode::Wall),
                    p.to_folded(ProfileMode::Gas),
                )
            }
            None => (String::new(), String::new()),
        };
        let frames = vec![
            slicer_crypto::codec::to_bytes(&header)?,
            slicer_crypto::codec::to_bytes(&records)?,
            slicer_crypto::codec::to_bytes(&self.inner.logs.transcript())?,
            slicer_crypto::codec::to_bytes(&profile_wall)?,
            slicer_crypto::codec::to_bytes(&profile_gas)?,
        ];
        let tmp = self.inner.path.with_extension("slc.tmp");
        slicer_persist::write_frames(&tmp, &frames)?;
        std::fs::rename(&tmp, &self.inner.path)?;
        Ok(())
    }
}

/// A decoded flight recording — what `slicer-cli flightrec` prints and
/// the crash tests assert on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecording {
    /// Why the recording was last persisted.
    pub reason: String,
    /// The next sequence number the recorder would have assigned.
    pub next_seq: u64,
    /// Retained requests, oldest first.
    pub requests: Vec<FlightRecord>,
    /// The embedded log tail, JSON lines.
    pub log: String,
    /// Folded wall-weighted profile (empty in v1 recordings or when the
    /// daemon ran without profiling).
    pub profile_wall: String,
    /// Folded gas-weighted profile (likewise possibly empty).
    pub profile_gas: String,
}

impl FlightRecording {
    /// Reads and checksum-validates a recording from `path`.
    ///
    /// # Errors
    ///
    /// [`DaemonError::Persist`] when the file is unreadable or fails
    /// frame validation, [`DaemonError::Protocol`] when a frame is
    /// missing or does not decode.
    pub fn load(path: &Path) -> Result<Self, DaemonError> {
        let (frames, _) = slicer_persist::read_frames(path)?;
        let mut it = frames.iter();
        let mut frame = |what: &str| {
            it.next()
                .ok_or_else(|| DaemonError::Protocol(format!("flightrec missing {what} frame")))
        };
        let header: FlightHeader = slicer_crypto::codec::from_bytes(frame("header")?)?;
        if !(1..=FLIGHTREC_VERSION).contains(&header.version) {
            return Err(DaemonError::Protocol(format!(
                "unsupported flightrec version {}",
                header.version
            )));
        }
        let requests: Vec<FlightRecord> = slicer_crypto::codec::from_bytes(frame("requests")?)?;
        let log: String = slicer_crypto::codec::from_bytes(frame("log")?)?;
        // Version 1 recordings stop after the log frame.
        let (profile_wall, profile_gas) = if header.version >= 2 {
            (
                slicer_crypto::codec::from_bytes(frame("profile_wall")?)?,
                slicer_crypto::codec::from_bytes(frame("profile_gas")?)?,
            )
        } else {
            (String::new(), String::new())
        };
        Ok(FlightRecording {
            reason: header.reason,
            next_seq: header.next_seq,
            requests,
            log,
            profile_wall,
            profile_gas,
        })
    }

    /// The newest entry still marked [`IN_FLIGHT`], if any — the request
    /// the process died inside.
    pub fn in_flight(&self) -> Option<&FlightRecord> {
        self.requests.iter().rev().find(|r| r.outcome == IN_FLIGHT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_telemetry::{Level, LogRecord, LogSink};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("slicer-fr-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(FLIGHTREC_FILE)
    }

    fn log_ring() -> Arc<MemoryLogSink> {
        let ring = Arc::new(MemoryLogSink::with_capacity(8));
        ring.log(&LogRecord {
            ts_ns: 5,
            level: Level::Info,
            target: "test",
            message: "booted".into(),
            fields: vec![],
        });
        ring
    }

    #[test]
    fn begin_persists_an_in_flight_entry_before_the_request_runs() {
        let path = tmp("begin");
        let rec = FlightRecorder::new(path.clone(), 4, log_ring(), None);
        let (seq, err) = rec.begin(42, "search", 100);
        assert!(err.is_none(), "{err:?}");

        // What a kill -9 mid-request would leave behind:
        let loaded = FlightRecording::load(&path).unwrap();
        assert_eq!(loaded.reason, "request-start");
        let inflight = loaded.in_flight().expect("in-flight entry on disk");
        assert_eq!(inflight.seq, seq);
        assert_eq!(inflight.kind, "search");
        assert_eq!(inflight.trace_id, 42);
        assert!(loaded.log.contains("booted"), "log tail embedded");

        assert!(rec.end(seq, 900, "ok").is_none());
        let loaded = FlightRecording::load(&path).unwrap();
        assert_eq!(loaded.reason, "request-end");
        assert!(loaded.in_flight().is_none());
        assert_eq!(loaded.requests[0].duration_ns, 900);
        assert_eq!(loaded.requests[0].outcome, "ok");
    }

    #[test]
    fn ring_evicts_oldest_and_seq_keeps_counting() {
        let path = tmp("evict");
        let rec = FlightRecorder::new(path.clone(), 2, log_ring(), None);
        for i in 0..4u64 {
            let (seq, _) = rec.begin(i, "stat", i * 10);
            rec.end(seq, 1, "ok");
        }
        let loaded = FlightRecording::load(&path).unwrap();
        assert_eq!(loaded.requests.len(), 2);
        let seqs: Vec<u64> = loaded.requests.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(loaded.next_seq, 5);
        // Ending an evicted seq is a no-op, not a panic.
        assert!(rec.end(1, 7, "ok").is_none());
    }

    #[test]
    fn explicit_persist_stamps_the_reason() {
        let path = tmp("reason");
        let rec = FlightRecorder::new(path.clone(), 4, log_ring(), None);
        rec.persist("shutdown").unwrap();
        assert_eq!(FlightRecording::load(&path).unwrap().reason, "shutdown");
        // Clones (panic hook) share the same ring and path.
        let hook = rec.clone();
        let (_, _) = rec.begin(1, "ingest", 0);
        hook.persist("panic").unwrap();
        let loaded = FlightRecording::load(&path).unwrap();
        assert_eq!(loaded.reason, "panic");
        assert_eq!(loaded.requests.len(), 1);
    }

    #[test]
    fn persist_embeds_the_live_profile() {
        use slicer_telemetry::{Event, Sink, SpanId, TraceId};
        let path = tmp("profile");
        let agg = Arc::new(ProfileAggregator::new());
        agg.record(Event::SpanEnd {
            trace: TraceId(1),
            span: SpanId(1),
            parent: None,
            name: "daemon.request".into(),
            start_ns: 0,
            duration_ns: 40,
            attrs: vec![("gas.used", slicer_telemetry::AttrValue::U64(9))],
        });
        let rec = FlightRecorder::new(path.clone(), 4, log_ring(), Some(agg));
        rec.persist("shutdown").unwrap();
        let loaded = FlightRecording::load(&path).unwrap();
        assert_eq!(loaded.profile_wall, "daemon.request 40\n");
        assert_eq!(loaded.profile_gas, "daemon.request 9\n");
    }

    #[test]
    fn version_1_recordings_still_load_with_empty_profiles() {
        // Hand-assemble a three-frame v1 segment, as an old daemon
        // would have written it.
        let path = tmp("v1");
        let header = FlightHeader {
            version: 1,
            reason: "shutdown".into(),
            next_seq: 3,
        };
        let records = vec![FlightRecord {
            seq: 2,
            trace_id: 0,
            kind: "stat".into(),
            start_ns: 1,
            duration_ns: 2,
            outcome: "ok".into(),
        }];
        let frames = vec![
            slicer_crypto::codec::to_bytes(&header).unwrap(),
            slicer_crypto::codec::to_bytes(&records).unwrap(),
            slicer_crypto::codec::to_bytes(&String::from("{}\n")).unwrap(),
        ];
        slicer_persist::write_frames(&path, &frames).unwrap();
        let loaded = FlightRecording::load(&path).unwrap();
        assert_eq!(loaded.reason, "shutdown");
        assert_eq!(loaded.requests, records);
        assert!(loaded.profile_wall.is_empty());
        assert!(loaded.profile_gas.is_empty());
        // An unknown future version is still rejected.
        let bad = FlightHeader {
            version: 99,
            ..header
        };
        let frames = vec![
            slicer_crypto::codec::to_bytes(&bad).unwrap(),
            slicer_crypto::codec::to_bytes(&Vec::<FlightRecord>::new()).unwrap(),
            slicer_crypto::codec::to_bytes(&String::new()).unwrap(),
        ];
        slicer_persist::write_frames(&path, &frames).unwrap();
        assert!(matches!(
            FlightRecording::load(&path),
            Err(DaemonError::Protocol(_))
        ));
    }

    #[test]
    fn corrupted_recording_fails_validation() {
        let path = tmp("corrupt");
        let rec = FlightRecorder::new(path.clone(), 4, log_ring(), None);
        rec.persist("shutdown").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 40; // inside a payload, not the magic
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            FlightRecording::load(&path),
            Err(DaemonError::Persist(_))
        ));
    }
}
