//! Protocol configuration.

use slicer_accumulator::{RsaParams, DEFAULT_PRIME_BITS};

/// Configuration shared by every party of a Slicer deployment.
#[derive(Debug, Clone)]
pub struct SlicerConfig {
    /// Bit width `b` of the numerical values (the paper evaluates 8, 16
    /// and 24).
    pub value_bits: u8,
    /// Size of `H_prime` prime representatives.
    pub prime_bits: u32,
    /// RSA accumulator public parameters.
    pub accumulator: RsaParams,
    /// Trapdoor-permutation modulus size when generating fresh keys.
    pub trapdoor_bits: u32,
    /// Worker count for the deterministic fan-out pool (`slicer-par`).
    /// Defaults to the `SLICER_THREADS` environment variable, else the
    /// machine's parallelism capped at 8. Protocol outputs and telemetry
    /// transcripts are byte-identical at any setting.
    pub workers: usize,
}

impl SlicerConfig {
    /// Configuration for `value_bits`-bit values with the fixed 512-bit
    /// accumulator parameters — the evaluation setup.
    /// # Panics
    ///
    /// Panics unless `1 <= value_bits <= 64` — a compile-time-style API
    /// contract on a constructor that takes literals.
    pub fn with_bits(value_bits: u8) -> Self {
        // slicer-lint: allow(panic.assert) — constructor precondition on a caller-supplied literal; no fallible path needed
        assert!((1..=64).contains(&value_bits));
        SlicerConfig {
            value_bits,
            prime_bits: DEFAULT_PRIME_BITS,
            accumulator: RsaParams::fixed_512(),
            trapdoor_bits: 512,
            workers: slicer_par::configured_workers(),
        }
    }

    /// Same configuration with an explicit pool size (overrides
    /// `SLICER_THREADS`).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Fast 8-bit test configuration.
    pub fn test_8bit() -> Self {
        Self::with_bits(8)
    }

    /// 16-bit configuration (paper's middle setting).
    pub fn test_16bit() -> Self {
        Self::with_bits(16)
    }

    /// Largest value representable under this configuration.
    pub fn max_value(&self) -> u64 {
        if self.value_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.value_bits) - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_value_matches_width() {
        assert_eq!(SlicerConfig::test_8bit().max_value(), 255);
        assert_eq!(SlicerConfig::with_bits(64).max_value(), u64::MAX);
    }

    #[test]
    fn with_workers_overrides_and_clamps() {
        assert_eq!(SlicerConfig::test_8bit().with_workers(3).workers, 3);
        assert_eq!(SlicerConfig::test_8bit().with_workers(0).workers, 1);
    }

    #[test]
    #[should_panic]
    fn zero_bits_rejected() {
        SlicerConfig::with_bits(0);
    }
}
