//! Owner-side mutable state: the trapdoor dictionary `T` and set-hash
//! dictionary `S` of Algorithms 1–2.

use slicer_mshash::MsetHash;
use slicer_trapdoor::Trapdoor;
use std::collections::BTreeMap;

/// The per-keyword state stored in `T`: the newest trapdoor and the update
/// count `j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordState {
    /// Newest trapdoor `t_j`.
    pub trapdoor: Trapdoor,
    /// Number of insert-updates applied to this keyword (`j`).
    pub updates: u32,
    /// Per-generation counter `c`: entries stored under the newest trapdoor
    /// so far (resets on every trapdoor rotation).
    pub counter: u64,
}

slicer_crypto::impl_codec!(KeywordState {
    trapdoor,
    updates,
    counter,
});

/// Owner state: `T` (trapdoor states, also delegated to users) and `S`
/// (set hashes, owner-only).
///
/// Both dictionaries are ordered maps so that iteration — and everything
/// derived from it: codec bytes, snapshot checksums, merge transcripts — is
/// deterministic across runs and thread counts.
#[derive(Debug, Clone, Default)]
pub struct OwnerState {
    /// `T`: keyword encoding → trapdoor state.
    pub trapdoors: BTreeMap<Vec<u8>, KeywordState>,
    /// `S`: keyword state key (`t‖j‖G1‖G2`) → multiset hash of the
    /// keyword's full result set.
    pub set_hashes: BTreeMap<Vec<u8>, MsetHash>,
}

slicer_crypto::impl_codec!(OwnerState {
    trapdoors,
    set_hashes,
});

impl OwnerState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// The user-visible half (`T` only) shipped during delegation.
    pub fn user_view(&self) -> BTreeMap<Vec<u8>, KeywordState> {
        self.trapdoors.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_bignum::BigUint;

    #[test]
    fn user_view_excludes_set_hashes() {
        let mut s = OwnerState::new();
        s.trapdoors.insert(
            b"w".to_vec(),
            KeywordState {
                trapdoor: Trapdoor::from_value(BigUint::from(5u64)),
                updates: 0,
                counter: 1,
            },
        );
        s.set_hashes.insert(b"k".to_vec(), MsetHash::empty());
        let view = s.user_view();
        assert_eq!(view.len(), 1);
        assert!(view.contains_key(b"w".as_slice()));
    }
}
