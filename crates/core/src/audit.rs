//! Runtime leakage auditing: checks that what an instrumented run
//! *observably does* is exactly what Theorem 2 says it may leak.
//!
//! [`crate::leakage`] computes the declared profiles (`L^build`,
//! `L^search`, `L^repeat`) from protocol values. This module closes the
//! loop: [`LeakageAuditor`] consumes the deterministic trace transcript
//! of a full run (the [`Event`] stream of a
//! [`MemorySink`](slicer_telemetry::MemorySink)), re-derives the
//! observable access pattern **from span attributes alone**, and asserts
//! it matches the declared profiles exactly. If instrumentation — or a
//! future code change — ever exposes anything beyond the declared
//! leakage (an unknown attribute key, a value-dependent span count, a
//! per-entry shape), the audit fails loudly with a typed
//! [`LeakageViolation`].

use crate::leakage::{BuildLeakage, RepeatLeakage, SearchLeakage};
use crate::messages::SearchToken;
use slicer_telemetry::{AttrValue, Event};
use std::collections::BTreeMap;
use std::fmt;

/// Every attribute key the instrumentation is allowed to emit. The
/// auditor rejects any transcript containing a key outside this list:
/// adding observability must be a deliberate, leakage-reviewed act.
pub const ALLOWED_ATTR_KEYS: &[&str] = &[
    // Build shipment shape (exactly L^build).
    "entries",
    "label_bits",
    "value_bits",
    "primes",
    "prime_bits",
    // Counts already revealed by message sizes.
    "tokens",
    "results",
    "witnesses",
    "records",
    "keywords",
    "tuples",
    "targets",
    // Pool fan-out width (`par.map` spans) — a pure count of independent
    // tasks, already revealed by the counts above.
    "tasks",
    // Per-token access pattern (exactly L^search / L^repeat).
    "token.updates",
    "token.hits",
    "token.fp",
    // Public on-chain data.
    "gas.used",
    "gas.category",
    "tx.hash",
    "kind",
    "status",
    "block",
    "txs",
    // Settlement outcome (public by construction).
    "verified",
    "paid_cloud",
];

/// The leakage a run *declares*: accumulated by
/// [`SlicerInstance`](crate::SlicerInstance) as it executes, from
/// protocol values (not from telemetry). [`LeakageAuditor::verify`]
/// compares the observed transcript against this ledger.
#[derive(Debug, Clone, Default)]
pub struct DeclaredLeakage {
    /// One `L^build` profile per build/insert shipment, in order.
    pub builds: Vec<BuildLeakage>,
    /// One `L^search` profile per search (empty-token searches included),
    /// in order.
    pub searches: Vec<SearchLeakage>,
    /// Every token handed to the cloud, in order — the input to
    /// `L^repeat`.
    pub token_history: Vec<SearchToken>,
}

impl DeclaredLeakage {
    /// The declared repeat profile over the full token history.
    pub fn repeat(&self) -> RepeatLeakage {
        RepeatLeakage::of(&self.token_history)
    }
}

/// How an audited transcript deviated from the declared leakage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeakageViolation {
    /// A span carries an attribute key outside [`ALLOWED_ATTR_KEYS`].
    UndeclaredAttribute {
        /// Name of the offending span.
        span: String,
        /// The undeclared key.
        key: String,
    },
    /// A span that should carry an attribute does not.
    MissingAttribute {
        /// Name of the offending span.
        span: String,
        /// The absent key.
        key: &'static str,
    },
    /// An attribute that must be numeric is not.
    MalformedAttribute {
        /// Name of the offending span.
        span: String,
        /// The malformed key.
        key: &'static str,
    },
    /// A `cloud.token` span closed outside any `protocol.search` trace.
    OrphanTokenSpan {
        /// The trace id the span claimed.
        trace: u64,
    },
    /// Observed and declared build counts differ.
    BuildCountMismatch {
        /// Builds re-derived from the transcript.
        observed: usize,
        /// Builds in the declared ledger.
        declared: usize,
    },
    /// One build's observed shape differs from its declared `L^build`.
    BuildMismatch {
        /// Position of the build in shipment order.
        index: usize,
        /// Shape re-derived from span attributes.
        observed: BuildLeakage,
        /// Shape declared by the protocol.
        declared: BuildLeakage,
    },
    /// Observed and declared search counts differ.
    SearchCountMismatch {
        /// Searches re-derived from the transcript.
        observed: usize,
        /// Searches in the declared ledger.
        declared: usize,
    },
    /// One search's observed access pattern differs from its declared
    /// `L^search` — a dropped, duplicated or value-dependent token span.
    SearchMismatch {
        /// Position of the search in request order.
        index: usize,
        /// Per-token `(j, results)` re-derived from span attributes.
        observed: Vec<(u32, usize)>,
        /// Per-token `(j, results)` declared by the protocol.
        declared: Vec<(u32, usize)>,
    },
    /// The repeat matrix re-derived from token fingerprints differs from
    /// the declared `L^repeat`.
    RepeatMismatch {
        /// Matrix re-derived from `token.fp` attributes.
        observed: Vec<Vec<bool>>,
        /// Matrix declared from the token history.
        declared: Vec<Vec<bool>>,
    },
}

impl fmt::Display for LeakageViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LeakageViolation::UndeclaredAttribute { span, key } => {
                write!(f, "span '{span}' leaks undeclared attribute '{key}'")
            }
            LeakageViolation::MissingAttribute { span, key } => {
                write!(f, "span '{span}' is missing attribute '{key}'")
            }
            LeakageViolation::MalformedAttribute { span, key } => {
                write!(f, "span '{span}' attribute '{key}' is not numeric")
            }
            LeakageViolation::OrphanTokenSpan { trace } => {
                write!(f, "cloud.token span outside any search (trace {trace})")
            }
            LeakageViolation::BuildCountMismatch { observed, declared } => {
                write!(f, "observed {observed} builds, declared {declared}")
            }
            LeakageViolation::BuildMismatch { index, .. } => {
                write!(f, "build {index}: observed shape differs from L^build")
            }
            LeakageViolation::SearchCountMismatch { observed, declared } => {
                write!(f, "observed {observed} searches, declared {declared}")
            }
            LeakageViolation::SearchMismatch { index, .. } => {
                write!(
                    f,
                    "search {index}: observed access pattern differs from L^search"
                )
            }
            LeakageViolation::RepeatMismatch { .. } => {
                write!(f, "observed repeat matrix differs from L^repeat")
            }
        }
    }
}

impl std::error::Error for LeakageViolation {}

/// What the auditor certifies after a successful [`LeakageAuditor::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// Build/insert shipments audited.
    pub builds: usize,
    /// Searches audited.
    pub searches: usize,
    /// Tokens observed across all searches.
    pub tokens: usize,
    /// Distinct token identities in the observed repeat matrix.
    pub distinct_tokens: usize,
}

/// The observable access pattern of one search, re-derived purely from
/// `cloud.token` span attributes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ObservedSearch {
    /// Per token, in search order: `(j, results recovered)`.
    tokens: Vec<(u32, usize)>,
    /// Per token: the server-visible identity fingerprint.
    fps: Vec<u64>,
}

/// Re-derives the observable access pattern of a run from its trace
/// transcript and checks it against the declared leakage profiles.
#[derive(Debug, Clone)]
pub struct LeakageAuditor {
    builds: Vec<BuildLeakage>,
    searches: Vec<ObservedSearch>,
}

fn attr_u64(
    span: &str,
    attrs: &[(&'static str, AttrValue)],
    key: &'static str,
) -> Result<u64, LeakageViolation> {
    match attrs.iter().find(|(k, _)| *k == key) {
        None => Err(LeakageViolation::MissingAttribute {
            span: span.to_string(),
            key,
        }),
        Some((_, AttrValue::U64(v))) => Ok(*v),
        Some(_) => Err(LeakageViolation::MalformedAttribute {
            span: span.to_string(),
            key,
        }),
    }
}

impl LeakageAuditor {
    /// Parses a trace transcript (the event stream of a
    /// [`MemorySink`](slicer_telemetry::MemorySink)) into observed
    /// access patterns.
    ///
    /// # Errors
    ///
    /// Returns a [`LeakageViolation`] if any span carries an attribute
    /// outside [`ALLOWED_ATTR_KEYS`], a shape-bearing span is missing an
    /// attribute, or a `cloud.token` span is not owned by a search.
    pub fn from_events(events: &[Event]) -> Result<Self, LeakageViolation> {
        let mut builds = Vec::new();
        let mut searches = Vec::new();
        // Token spans close before their owning protocol.search root, so
        // buffer them per trace until the root closes.
        let mut pending: BTreeMap<u64, ObservedSearch> = BTreeMap::new();
        for event in events {
            let Event::SpanEnd {
                trace, name, attrs, ..
            } = event
            else {
                continue;
            };
            for (key, _) in attrs {
                if !ALLOWED_ATTR_KEYS.contains(key) {
                    return Err(LeakageViolation::UndeclaredAttribute {
                        span: name.clone(),
                        key: (*key).to_string(),
                    });
                }
            }
            match name.as_str() {
                "phase.build" => builds.push(BuildLeakage {
                    label_bits: attr_u64(name, attrs, "label_bits")? as usize,
                    value_bits: attr_u64(name, attrs, "value_bits")? as usize,
                    entries: attr_u64(name, attrs, "entries")? as usize,
                    prime_bits: attr_u64(name, attrs, "prime_bits")? as usize,
                    primes: attr_u64(name, attrs, "primes")? as usize,
                }),
                "cloud.token" => {
                    let slot = pending.entry(trace.0).or_default();
                    slot.tokens.push((
                        u32::try_from(attr_u64(name, attrs, "token.updates")?).map_err(|_| {
                            LeakageViolation::MalformedAttribute {
                                span: name.clone(),
                                key: "token.updates",
                            }
                        })?,
                        attr_u64(name, attrs, "token.hits")? as usize,
                    ));
                    slot.fps.push(attr_u64(name, attrs, "token.fp")?);
                }
                "protocol.search" => {
                    searches.push(pending.remove(&trace.0).unwrap_or_default());
                }
                _ => {}
            }
        }
        if let Some((&trace, _)) = pending.iter().next() {
            return Err(LeakageViolation::OrphanTokenSpan { trace });
        }
        Ok(LeakageAuditor { builds, searches })
    }

    /// Asserts the observed access pattern equals `declared` exactly.
    ///
    /// # Errors
    ///
    /// Returns the first [`LeakageViolation`] found: a count or shape
    /// mismatch on builds, a per-token mismatch on any search, or a
    /// repeat-matrix mismatch.
    pub fn verify(&self, declared: &DeclaredLeakage) -> Result<AuditReport, LeakageViolation> {
        if self.builds.len() != declared.builds.len() {
            return Err(LeakageViolation::BuildCountMismatch {
                observed: self.builds.len(),
                declared: declared.builds.len(),
            });
        }
        for (index, (observed, decl)) in self.builds.iter().zip(&declared.builds).enumerate() {
            if observed != decl {
                return Err(LeakageViolation::BuildMismatch {
                    index,
                    observed: observed.clone(),
                    declared: decl.clone(),
                });
            }
        }

        if self.searches.len() != declared.searches.len() {
            return Err(LeakageViolation::SearchCountMismatch {
                observed: self.searches.len(),
                declared: declared.searches.len(),
            });
        }
        for (index, (observed, decl)) in self.searches.iter().zip(&declared.searches).enumerate() {
            if observed.tokens != decl.tokens {
                return Err(LeakageViolation::SearchMismatch {
                    index,
                    observed: observed.tokens.clone(),
                    declared: decl.tokens.clone(),
                });
            }
        }

        // L^repeat: two tokens look identical to the server iff their
        // fingerprints coincide. The matrix derived from fingerprints
        // alone must match the one computed from the real token history.
        let fps: Vec<u64> = self.searches.iter().flat_map(|s| s.fps.clone()).collect();
        let observed_matrix: Vec<Vec<bool>> = fps
            .iter()
            .map(|a| fps.iter().map(|b| a == b).collect())
            .collect();
        let declared_matrix = declared.repeat().matrix;
        if observed_matrix != declared_matrix {
            return Err(LeakageViolation::RepeatMismatch {
                observed: observed_matrix,
                declared: declared_matrix,
            });
        }

        let distinct = RepeatLeakage {
            matrix: observed_matrix,
        }
        .distinct();
        Ok(AuditReport {
            builds: self.builds.len(),
            searches: self.searches.len(),
            tokens: fps.len(),
            distinct_tokens: distinct,
        })
    }

    /// Number of builds re-derived from the transcript.
    pub fn observed_builds(&self) -> usize {
        self.builds.len()
    }

    /// Number of searches re-derived from the transcript.
    pub fn observed_searches(&self) -> usize {
        self.searches.len()
    }
}
