//! SSE keywords: `w ∈ {v} ∪ {ct_i}` of Algorithm 1.

use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use slicer_sore::SliceTuple;

/// A keyword in Slicer's encrypted index: either the value itself (serving
/// equality queries) or one of its SORE ciphertext tuples (serving order
/// queries).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// The plain value `v` under an attribute — equality search keyword.
    Equality {
        /// Attribute name (empty for single-attribute databases).
        attr: Vec<u8>,
        /// The value.
        value: u64,
    },
    /// A SORE ciphertext tuple `ct_i` — order search keyword.
    Slice(SliceTuple),
}

impl Encode for Keyword {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Keyword::Equality { attr, value } => {
                0u32.encode(out);
                attr.encode(out);
                value.encode(out);
            }
            Keyword::Slice(t) => {
                1u32.encode(out);
                Encode::encode(t, out);
            }
        }
    }
}

impl Decode for Keyword {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u32::decode(reader)? {
            0 => Ok(Keyword::Equality {
                attr: Vec::<u8>::decode(reader)?,
                value: u64::decode(reader)?,
            }),
            1 => Ok(Keyword::Slice(SliceTuple::decode(reader)?)),
            v => Err(CodecError::msg(format!("invalid Keyword variant {v}"))),
        }
    }
}

impl Keyword {
    /// Canonical byte encoding, domain-separated between the two variants
    /// so an equality keyword can never collide with a slice keyword.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Keyword::Equality { attr, value } => {
                let mut out = Vec::with_capacity(11 + attr.len());
                out.push(0x00);
                out.extend_from_slice(&(attr.len() as u16).to_be_bytes());
                out.extend_from_slice(attr);
                out.extend_from_slice(&value.to_be_bytes());
                out
            }
            Keyword::Slice(t) => {
                let mut out = Vec::with_capacity(1 + 13 + t.attr.len());
                out.push(0x01);
                out.extend_from_slice(&t.encode());
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicer_sore::Order;

    #[test]
    fn variants_are_domain_separated() {
        let eq = Keyword::Equality {
            attr: vec![],
            value: 5,
        };
        let slice = Keyword::Slice(SliceTuple {
            attr: vec![],
            index: 1,
            prefix: 0,
            bit: true,
            op: Order::Greater,
        });
        assert_ne!(eq.encode()[0], slice.encode()[0]);
    }

    #[test]
    fn encoding_distinguishes_attrs_and_values() {
        let k1 = Keyword::Equality {
            attr: b"age".to_vec(),
            value: 5,
        };
        let k2 = Keyword::Equality {
            attr: b"age".to_vec(),
            value: 6,
        };
        let k3 = Keyword::Equality {
            attr: b"pay".to_vec(),
            value: 5,
        };
        assert_ne!(k1.encode(), k2.encode());
        assert_ne!(k1.encode(), k3.encode());
    }
}
