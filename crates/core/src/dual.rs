//! Deletion and update via the dual-instance construction (Section V-F).
//!
//! Slicer's index is append-only, so deletion runs a *second* full
//! instance: the insert-instance holds every record ever added, the
//! delete-instance holds every record ever deleted, and a query's answer is
//! the multiset difference of the two instances' results. An update is a
//! deletion followed by an insertion of the new value. Re-inserting a live
//! record ID (or deleting a dead one) is rejected, matching the paper's
//! uniqueness rule.

use crate::config::SlicerConfig;
use crate::error::SlicerError;
use crate::messages::Query;
use crate::record::RecordId;
use crate::system::{SearchOutcome, SlicerInstance};
use slicer_chain::Blockchain;
use std::collections::BTreeMap;

/// A Slicer deployment with deletion and update support: two instances
/// sharing one blockchain.
///
/// # Examples
///
/// ```
/// use slicer_core::{DualSlicer, Query, RecordId, SlicerConfig};
///
/// let mut dual = DualSlicer::setup(SlicerConfig::test_8bit(), 9);
/// dual.insert(&[(RecordId::from_u64(1), 50), (RecordId::from_u64(2), 60)]).unwrap();
/// dual.delete(RecordId::from_u64(1)).unwrap();
/// let out = dual.search(&Query::less_than(100), 10).unwrap();
/// assert_eq!(out.records, vec![RecordId::from_u64(2)]);
/// ```
#[derive(Debug)]
pub struct DualSlicer {
    inserts: SlicerInstance,
    deletes: SlicerInstance,
    chain: Blockchain,
    /// Live records: id → value (the owner knows his own plaintext data).
    /// Ordered so shipment and re-encryption order is identical across
    /// runs — the delete/update path feeds insertions back through the
    /// instances, and a `HashMap` here made those transcripts
    /// nondeterministic.
    live: BTreeMap<RecordId, u64>,
}

impl DualSlicer {
    /// Sets up both instances (distinct key material) over a fresh chain.
    pub fn setup(config: SlicerConfig, seed: u64) -> Self {
        let mut chain = Blockchain::new();
        let inserts = SlicerInstance::setup(config.clone(), seed.wrapping_mul(2) + 1, &mut chain);
        let deletes = SlicerInstance::setup(config, seed.wrapping_mul(2) + 2, &mut chain);
        DualSlicer {
            inserts,
            deletes,
            chain,
            live: BTreeMap::new(),
        }
    }

    /// Inserts new records into the insert-instance.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::DuplicateRecordId`] if an ID is already live.
    pub fn insert(&mut self, records: &[(RecordId, u64)]) -> Result<(), SlicerError> {
        for (id, _) in records {
            if self.live.contains_key(id) {
                return Err(SlicerError::DuplicateRecordId(*id));
            }
        }
        self.inserts.insert(&mut self.chain, records)?;
        for &(id, v) in records {
            self.live.insert(id, v);
        }
        Ok(())
    }

    /// Deletes a live record by inserting its `(R, v)` pair into the
    /// delete-instance.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::UnknownRecordId`] if the ID is not live.
    pub fn delete(&mut self, id: RecordId) -> Result<(), SlicerError> {
        let value = self
            .live
            .remove(&id)
            .ok_or(SlicerError::UnknownRecordId(id))?;
        self.deletes.insert(&mut self.chain, &[(id, value)])?;
        Ok(())
    }

    /// Updates a live record: delete + insert with the new value.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::UnknownRecordId`] if the ID is not live.
    pub fn update(&mut self, id: RecordId, new_value: u64) -> Result<(), SlicerError> {
        self.delete(id)?;
        self.inserts.insert(&mut self.chain, &[(id, new_value)])?;
        self.live.insert(id, new_value);
        Ok(())
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Verified search: runs the query on both instances (each verified on
    /// chain) and returns the multiset difference of the results.
    ///
    /// # Errors
    ///
    /// Propagates instance-level errors; `verified` is the conjunction of
    /// both instances' verification outcomes.
    pub fn search(&mut self, query: &Query, payment: u128) -> Result<SearchOutcome, SlicerError> {
        let ins = self.inserts.search(&mut self.chain, query, payment)?;
        let del = self.deletes.search(&mut self.chain, query, payment)?;

        // Multiset difference: each delete-side occurrence cancels one
        // insert-side occurrence (updates re-insert the same ID, so counts
        // matter).
        let mut counts: BTreeMap<RecordId, i64> = BTreeMap::new();
        for id in &ins.records {
            *counts.entry(*id).or_insert(0) += 1;
        }
        for id in &del.records {
            *counts.entry(*id).or_insert(0) -= 1;
        }
        let mut records: Vec<RecordId> = Vec::new();
        for (id, c) in counts {
            debug_assert!(c >= 0, "deleted more copies than inserted");
            for _ in 0..c {
                records.push(id);
            }
        }
        records.sort_unstable();

        let mut profile = ins.profile.clone();
        profile.merge(&del.profile);

        Ok(SearchOutcome {
            records,
            verified: ins.verified && del.verified,
            request_gas: ins.request_gas + del.request_gas,
            verify_gas: ins.verify_gas + del.verify_gas,
            paid_cloud: ins.paid_cloud || del.paid_cloud,
            profile,
            trace_id: ins.trace_id,
        })
    }

    /// The shared chain (for balance and block inspection).
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(outcome: &SearchOutcome) -> Vec<u64> {
        outcome
            .records
            .iter()
            .map(|r| r.as_u64().unwrap())
            .collect()
    }

    fn dual() -> DualSlicer {
        DualSlicer::setup(SlicerConfig::test_8bit(), 21)
    }

    #[test]
    fn delete_removes_from_results() {
        let mut d = dual();
        d.insert(&[
            (RecordId::from_u64(1), 10),
            (RecordId::from_u64(2), 20),
            (RecordId::from_u64(3), 30),
        ])
        .unwrap();
        d.delete(RecordId::from_u64(2)).unwrap();
        let out = d.search(&Query::less_than(100), 5).unwrap();
        assert!(out.verified);
        assert_eq!(ids(&out), vec![1, 3]);
    }

    #[test]
    fn update_changes_matching_set() {
        let mut d = dual();
        d.insert(&[(RecordId::from_u64(1), 10)]).unwrap();
        d.update(RecordId::from_u64(1), 200).unwrap();
        let low = d.search(&Query::less_than(100), 5).unwrap();
        assert!(low.records.is_empty(), "old value no longer matches");
        let high = d.search(&Query::greater_than(100), 5).unwrap();
        assert_eq!(ids(&high), vec![1], "new value matches");
    }

    #[test]
    fn update_where_both_values_match_keeps_record_once() {
        let mut d = dual();
        d.insert(&[(RecordId::from_u64(1), 10)]).unwrap();
        d.update(RecordId::from_u64(1), 20).unwrap();
        // Both 10 and 20 are < 100: insert-side count 2, delete-side 1.
        let out = d.search(&Query::less_than(100), 5).unwrap();
        assert_eq!(ids(&out), vec![1]);
    }

    #[test]
    fn reinsert_live_id_rejected() {
        let mut d = dual();
        d.insert(&[(RecordId::from_u64(1), 10)]).unwrap();
        assert!(matches!(
            d.insert(&[(RecordId::from_u64(1), 11)]),
            Err(SlicerError::DuplicateRecordId(_))
        ));
    }

    #[test]
    fn delete_unknown_id_rejected() {
        let mut d = dual();
        assert!(matches!(
            d.delete(RecordId::from_u64(9)),
            Err(SlicerError::UnknownRecordId(_))
        ));
    }

    #[test]
    fn delete_then_reinsert_same_id_allowed() {
        let mut d = dual();
        d.insert(&[(RecordId::from_u64(1), 10)]).unwrap();
        d.delete(RecordId::from_u64(1)).unwrap();
        d.insert(&[(RecordId::from_u64(1), 30)]).unwrap();
        let out = d.search(&Query::less_than(100), 5).unwrap();
        assert_eq!(ids(&out), vec![1]);
        assert_eq!(d.live_count(), 1);
    }
}
