//! The data owner: `KGen`, `Build` (Algorithm 1) and `Insert` (Algorithm 2).

use crate::config::SlicerConfig;
use crate::error::SlicerError;
use crate::keys::KeySet;
use crate::keyword::Keyword;
use crate::messages::{BuildOutput, Query, SearchToken};
use crate::record::{Record, RecordId};
use crate::state::{KeywordState, OwnerState};
use crate::user::DataUser;
use slicer_accumulator::hash_to_prime;
use slicer_bignum::BigUint;
use slicer_crypto::Prf;
use slicer_mshash::MsetHash;
use slicer_par::Pool;
use slicer_store::IndexLabel;
use slicer_telemetry::{Clock, MonotonicClock, TelemetryHandle};
use slicer_trapdoor::Trapdoor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// The clock protocol-side timing should follow for a given telemetry
/// context: the handle's own clock when live (so `BuildTiming` and
/// `SearchProfile` walls are deterministic under a
/// [`slicer_telemetry::LogicalClock`]), a fresh monotonic clock when
/// disabled (real wall time, no `std::time` in protocol code).
pub(crate) fn timing_clock(telemetry: &TelemetryHandle) -> Arc<dyn Clock> {
    telemetry
        .clock()
        .unwrap_or_else(|| Arc::new(MonotonicClock::new()))
}

/// The data owner. Holds all secrets, the trapdoor/set-hash state and the
/// running accumulator value.
///
/// # Examples
///
/// ```
/// use slicer_core::{DataOwner, RecordId, SlicerConfig};
/// let mut owner = DataOwner::new(SlicerConfig::test_8bit(), 1);
/// let out = owner
///     .build(&[(RecordId::from_u64(1), 41), (RecordId::from_u64(2), 200)])
///     .unwrap();
/// assert!(!out.entries.is_empty());
/// ```
#[derive(Debug)]
pub struct DataOwner {
    config: SlicerConfig,
    keys: KeySet,
    state: OwnerState,
    accumulator: BigUint,
    built: bool,
    telemetry: TelemetryHandle,
    clock: Arc<dyn Clock>,
    pool: Pool,
}

/// Per-keyword output of the build/insert inner loop.
struct KeywordOutput {
    keyword: Vec<u8>,
    entries: Vec<(IndexLabel, Vec<u8>)>,
    new_state: KeywordState,
    state_key: Vec<u8>,
    old_state_key: Option<Vec<u8>>,
    hash_delta: Vec<Vec<u8>>,
}

impl DataOwner {
    /// Creates an owner with keys derived from `seed`.
    pub fn new(config: SlicerConfig, seed: u64) -> Self {
        let keys = KeySet::from_seed(seed, config.trapdoor_bits);
        let accumulator = config.accumulator.generator().clone();
        let pool = Pool::new(config.workers);
        DataOwner {
            config,
            keys,
            state: OwnerState::new(),
            accumulator,
            built: false,
            telemetry: TelemetryHandle::disabled(),
            clock: timing_clock(&TelemetryHandle::disabled()),
            pool,
        }
    }

    /// Reconstructs an owner from persisted state: keys are re-derived
    /// from `seed` (the key schedule is fully deterministic), while `T`,
    /// `S` and the running accumulator value come from the snapshot. The
    /// owner resumes exactly where it left off — further inserts rotate
    /// the restored trapdoors and fold into the restored accumulator.
    pub fn restore(
        config: SlicerConfig,
        seed: u64,
        state: OwnerState,
        accumulator: BigUint,
    ) -> Self {
        let mut owner = DataOwner::new(config, seed);
        owner.state = state;
        owner.accumulator = accumulator;
        // A snapshot is only ever taken after a build, so the restored
        // owner routes further shipments through `insert`.
        owner.built = true;
        owner
    }

    /// Installs a telemetry context; build/insert spans and counters are
    /// recorded through it, and `BuildTiming` follows its clock. Disabled
    /// by default.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.clock = timing_clock(&telemetry);
        self.pool.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// The protocol configuration.
    pub fn config(&self) -> &SlicerConfig {
        &self.config
    }

    /// The owner's key set (handed to authorized users via
    /// [`DataOwner::delegate`]).
    pub fn keys(&self) -> &KeySet {
        &self.keys
    }

    /// The current accumulation value `Ac`.
    pub fn accumulator(&self) -> &BigUint {
        &self.accumulator
    }

    /// The owner state (`T` and `S`).
    pub fn state(&self) -> &OwnerState {
        &self.state
    }

    /// Derives all SSE keywords of a record: the equality keyword per
    /// attribute plus the `b` SORE slices per attribute.
    pub fn keywords_for(&self, attr: &[u8], value: u64) -> Vec<Keyword> {
        let mut out = Vec::with_capacity(1 + self.config.value_bits as usize);
        out.push(Keyword::Equality {
            attr: attr.to_vec(),
            value,
        });
        for t in slicer_sore::cipher_tuples(attr, value, self.config.value_bits) {
            out.push(Keyword::Slice(t));
        }
        out
    }

    /// `Build` (Algorithm 1) over single-attribute records.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::ValueOutOfDomain`] if any value exceeds the
    /// configured bit width, or [`SlicerError::AlreadyBuilt`] on a second
    /// call (use [`DataOwner::insert`] for updates).
    pub fn build(&mut self, db: &[(RecordId, u64)]) -> Result<BuildOutput, SlicerError> {
        if self.built {
            return Err(SlicerError::AlreadyBuilt);
        }
        let records: Vec<Record> = db.iter().map(|&(id, v)| Record::single(id, v)).collect();
        let out = self.process(&records)?;
        self.built = true;
        Ok(out)
    }

    /// `Build` over multi-attribute records (Section V-F).
    ///
    /// # Errors
    ///
    /// Same as [`DataOwner::build`].
    pub fn build_records(&mut self, db: &[Record]) -> Result<BuildOutput, SlicerError> {
        if self.built {
            return Err(SlicerError::AlreadyBuilt);
        }
        let out = self.process(db)?;
        self.built = true;
        Ok(out)
    }

    /// Forward-secure `Insert` (Algorithm 2) of single-attribute records.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::ValueOutOfDomain`] for out-of-range values.
    pub fn insert(&mut self, db_plus: &[(RecordId, u64)]) -> Result<BuildOutput, SlicerError> {
        let records: Vec<Record> = db_plus
            .iter()
            .map(|&(id, v)| Record::single(id, v))
            .collect();
        self.insert_records(&records)
    }

    /// Forward-secure `Insert` of multi-attribute records.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::ValueOutOfDomain`] for out-of-range values.
    pub fn insert_records(&mut self, db_plus: &[Record]) -> Result<BuildOutput, SlicerError> {
        self.built = true; // inserting into an empty instance is permitted
        self.process(db_plus)
    }

    /// Shared core of Algorithms 1 and 2.
    fn process(&mut self, records: &[Record]) -> Result<BuildOutput, SlicerError> {
        // Telemetry stays out of process_keyword: the parallel path would
        // record in nondeterministic order. Spans wrap the two sequential
        // stages; counters flush once at merge time.
        let mut span_index = self.telemetry.span("owner.build.index");
        let index_start = self.clock.now_nanos();
        // Group record IDs by keyword encoding (DB(w)). An ordered map, so
        // builds iterate keywords in one reproducible order.
        let mut groups: BTreeMap<Vec<u8>, Vec<RecordId>> = BTreeMap::new();
        for rec in records {
            for (attr, value) in &rec.attrs {
                if *value > self.config.max_value() {
                    return Err(SlicerError::ValueOutOfDomain {
                        value: *value,
                        bits: self.config.value_bits,
                    });
                }
                for kw in self.keywords_for(attr.as_bytes(), *value) {
                    groups.entry(kw.encode()).or_default().push(rec.id);
                }
            }
        }

        // Independent keyword groups fan out over the deterministic pool;
        // ordered join keeps the output in keyword order.
        let items: Vec<(&Vec<u8>, &Vec<RecordId>)> = groups.iter().collect();
        let outputs: Vec<KeywordOutput> = self
            .pool
            .par_map(&items, |(w, ids)| self.process_keyword(w, ids));

        let index_time = Duration::from_nanos(self.clock.now_nanos().saturating_sub(index_start));
        span_index.attr("keywords", groups.len());
        drop(span_index);
        let mut span_ads = self.telemetry.span("owner.build.ads");
        let ads_start = self.clock.now_nanos();

        // Merge, stage 1 (parallel, read-only on the owner state): per
        // keyword, absorb the ciphertext delta into the set hash and derive
        // the prime representative.
        let hashed: Vec<Result<(MsetHash, BigUint), SlicerError>> =
            self.pool.par_map(&outputs, |out| {
                let mut h = match &out.old_state_key {
                    Some(old) => self.state.set_hashes.get(old).cloned().ok_or_else(|| {
                        SlicerError::IndexCorruption("old state key missing from S".into())
                    })?,
                    None => MsetHash::empty(),
                };
                for enc in &out.hash_delta {
                    h.insert(enc);
                }
                let mut material = out.state_key.clone();
                material.extend_from_slice(&h.to_bytes());
                let x = hash_to_prime(&material, self.config.prime_bits)
                    .map_err(|e| SlicerError::IndexCorruption(e.to_string()))?;
                Ok((h, x))
            });

        // Merge, stage 2 (sequential): update T and S, then fold every new
        // prime into the accumulator with one chunked product pass.
        let mut entries = Vec::with_capacity(outputs.iter().map(|o| o.entries.len()).sum());
        let mut primes = Vec::with_capacity(outputs.len());
        for (out, res) in outputs.into_iter().zip(hashed) {
            let (h, x) = res?;
            if let Some(old) = &out.old_state_key {
                self.state.set_hashes.remove(old);
            }
            primes.push(x);
            self.state.set_hashes.insert(out.state_key, h);
            self.state.trapdoors.insert(out.keyword, out.new_state);
            entries.extend(out.entries);
        }
        self.accumulator = self
            .config
            .accumulator
            .powmod_product(&self.accumulator, &primes);

        span_ads.attr("entries", entries.len());
        drop(span_ads);
        self.telemetry
            .count("owner.entries.emitted", entries.len() as u64);
        self.telemetry
            .count("owner.primes.accumulated", primes.len() as u64);
        self.telemetry
            .count("owner.records.processed", records.len() as u64);

        Ok(BuildOutput {
            entries,
            primes,
            accumulator: self.accumulator.clone(),
            timing: crate::messages::BuildTiming {
                index: index_time,
                ads: Duration::from_nanos(self.clock.now_nanos().saturating_sub(ads_start)),
            },
        })
    }

    /// Processes one keyword group: trapdoor rotation, index entries and
    /// the encrypted-record hash delta.
    fn process_keyword(&self, w: &[u8], record_ids: &[RecordId]) -> KeywordOutput {
        let (g1, g2) = self.keys.keyword_keys(w);
        let width = self.keys.trapdoor().public().trapdoor_bytes();

        // Trapdoor state: fresh keyword → derived initial trapdoor; known
        // keyword → step backwards with the secret permutation (forward
        // security: the server cannot link the new generation to the old).
        let (trapdoor, updates, old_state_key) = match self.state.trapdoors.get(w) {
            None => (self.derive_initial_trapdoor(w), 0u32, None),
            Some(st) => {
                let old_key = state_key(&st.trapdoor.to_bytes(width), st.updates, &g1, &g2);
                (
                    self.keys.trapdoor().invert(&st.trapdoor),
                    st.updates + 1,
                    Some(old_key),
                )
            }
        };

        let t_bytes = trapdoor.to_bytes(width);
        // The trapdoor prefix is fixed for the whole generation: absorb it
        // into each PRF midstate once instead of re-hashing it per counter.
        let f1 = Prf::new(&g1).stream(&t_bytes);
        let f2 = Prf::new(&g2).stream(&t_bytes);
        let fg = self.keys.prf_g().stream(&t_bytes);
        let mut entries = Vec::with_capacity(record_ids.len());
        let mut hash_delta = Vec::with_capacity(record_ids.len());
        for (c, rid) in record_ids.iter().enumerate() {
            let c_bytes = (c as u64).to_be_bytes();
            let label: IndexLabel = f1.eval(&c_bytes);
            let pad = f2.eval(&c_bytes);
            // Enc(K_R, R) with a nonce derived per (keyword, generation,
            // counter) — unique slots, so CTR nonces never repeat.
            let nonce = fg.eval128(&c_bytes);
            let enc = self.keys.record_key().encrypt(rid.as_bytes(), &nonce);
            debug_assert_eq!(enc.len(), 32);
            let d: Vec<u8> = enc.iter().zip(pad.iter()).map(|(e, p)| e ^ p).collect();
            entries.push((label, d));
            hash_delta.push(enc);
        }

        let new_state = KeywordState {
            trapdoor,
            updates,
            counter: record_ids.len() as u64,
        };
        KeywordOutput {
            keyword: w.to_vec(),
            state_key: state_key(&t_bytes, updates, &g1, &g2),
            old_state_key,
            entries,
            new_state,
            hash_delta,
        }
    }

    /// Initial trapdoor `t_0` for a fresh keyword, derived from the owner's
    /// secret salt (a PRF modelled as a random oracle; deterministic so the
    /// parallel build needs no shared RNG).
    fn derive_initial_trapdoor(&self, w: &[u8]) -> Trapdoor {
        let n = self.keys.trapdoor().public().modulus();
        let wide = [
            self.keys.trapdoor_salt().eval(w),
            self.keys.trapdoor_salt().derive(w, 0x54),
        ]
        .concat();
        Trapdoor::from_value(&BigUint::from_bytes_be(&wide) % n)
    }

    /// Generates search tokens (Algorithm 3). Owners can search their own
    /// data; multi-user search goes through [`DataUser`].
    pub fn search_tokens(&self, query: &Query) -> Vec<SearchToken> {
        crate::user::make_tokens(
            self.keys.prf_g(),
            &self.state.trapdoors,
            self.config.value_bits,
            query,
        )
    }

    /// Delegates search capability: builds a [`DataUser`] holding `K`,
    /// `K_R`, the trapdoor public key and the current `T`.
    pub fn delegate(&self) -> DataUser {
        let mut user = DataUser::new(
            self.keys.clone(),
            self.config.clone(),
            self.state.user_view(),
        );
        user.set_telemetry(self.telemetry.clone());
        user
    }
}

/// The keyword-state key `t ‖ j ‖ G1 ‖ G2` indexing `S` and feeding
/// `H_prime`.
pub(crate) fn state_key(t_bytes: &[u8], j: u32, g1: &[u8; 32], g2: &[u8; 32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(t_bytes.len() + 4 + 64);
    out.extend_from_slice(t_bytes);
    out.extend_from_slice(&j.to_be_bytes());
    out.extend_from_slice(g1);
    out.extend_from_slice(g2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner() -> DataOwner {
        DataOwner::new(SlicerConfig::test_8bit(), 7)
    }

    fn db(n: u64) -> Vec<(RecordId, u64)> {
        (0..n)
            .map(|i| (RecordId::from_u64(i), (i * 37) % 256))
            .collect()
    }

    #[test]
    fn build_emits_one_entry_per_record_keyword() {
        let mut o = owner();
        let out = o.build(&db(10)).unwrap();
        // 10 records × (1 equality + 8 slices) keywords.
        assert_eq!(out.entries.len(), 10 * 9);
        // Primes: one per distinct keyword state.
        assert_eq!(out.primes.len(), o.state().trapdoors.len());
    }

    #[test]
    fn build_twice_rejected() {
        let mut o = owner();
        o.build(&db(3)).unwrap();
        assert!(matches!(o.build(&db(3)), Err(SlicerError::AlreadyBuilt)));
    }

    #[test]
    fn out_of_domain_value_rejected() {
        let mut o = owner();
        let err = o.build(&[(RecordId::from_u64(1), 300)]).unwrap_err();
        assert!(matches!(
            err,
            SlicerError::ValueOutOfDomain {
                value: 300,
                bits: 8
            }
        ));
    }

    #[test]
    fn insert_rotates_trapdoors_of_touched_keywords() {
        let mut o = owner();
        o.build(&[(RecordId::from_u64(1), 42)]).unwrap();
        let kw = Keyword::Equality {
            attr: vec![],
            value: 42,
        }
        .encode();
        let before = o.state().trapdoors[&kw].clone();
        o.insert(&[(RecordId::from_u64(2), 42)]).unwrap();
        let after = &o.state().trapdoors[&kw];
        assert_eq!(after.updates, before.updates + 1);
        assert_ne!(after.trapdoor, before.trapdoor);
        // The old trapdoor is recoverable by walking the public permutation
        // forwards — that is what the cloud does during search.
        let pk = o.keys().trapdoor().public();
        assert_eq!(pk.forward(&after.trapdoor), before.trapdoor);
    }

    #[test]
    fn accumulator_changes_on_every_batch() {
        let mut o = owner();
        let a0 = o.accumulator().clone();
        o.build(&db(3)).unwrap();
        let a1 = o.accumulator().clone();
        assert_ne!(a0, a1);
        o.insert(&db(2)).unwrap();
        assert_ne!(&a1, o.accumulator());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut o1 = DataOwner::new(SlicerConfig::test_8bit(), 99);
        let mut o2 = DataOwner::new(SlicerConfig::test_8bit(), 99);
        let out1 = o1.build(&db(20)).unwrap();
        let out2 = o2.build(&db(20)).unwrap();
        assert_eq!(out1.accumulator, out2.accumulator);
        assert_eq!(out1.entries, out2.entries);
        assert_eq!(out1.primes, out2.primes);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // >64 distinct keywords triggers the parallel path; a second owner
        // with the same seed but a tiny DB plus manual grouping confirms
        // equality through determinism of the whole pipeline instead.
        let mut big1 = DataOwner::new(SlicerConfig::test_16bit(), 5);
        let mut big2 = DataOwner::new(SlicerConfig::test_16bit(), 5);
        let data: Vec<(RecordId, u64)> = (0..200)
            .map(|i| (RecordId::from_u64(i), i * 13 % 65536))
            .collect();
        let o1 = big1.build(&data).unwrap();
        let o2 = big2.build(&data).unwrap();
        assert_eq!(o1.accumulator, o2.accumulator);
        assert_eq!(o1.entries.len(), o2.entries.len());
    }

    #[test]
    fn multi_attribute_records_index_each_attr() {
        let mut o = owner();
        let rec = Record::with_attrs(
            RecordId::from_u64(1),
            vec![("age".into(), 30), ("score".into(), 90)],
        );
        let out = o.build_records(&[rec]).unwrap();
        // 2 attributes × 9 keywords.
        assert_eq!(out.entries.len(), 18);
    }
}
