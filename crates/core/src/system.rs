//! End-to-end orchestration: the four-party workflow of Fig. 1.

use crate::audit::DeclaredLeakage;
use crate::cloud::CloudServer;
use crate::config::SlicerConfig;
use crate::error::SlicerError;
use crate::leakage::{BuildLeakage, SearchLeakage};
use crate::messages::Query;
use crate::owner::DataOwner;
use crate::profile::{PhaseStat, SearchProfile};
use crate::record::{Record, RecordId};
use crate::user::DataUser;
use slicer_chain::{Address, Blockchain, SlicerCall, SlicerContract, Transaction, TxReceipt};
use slicer_crypto::sha256;
use slicer_telemetry::{Clock, Level, Span, TelemetryHandle};
use std::sync::Arc;
use std::time::Duration;

/// Outcome of a verified search.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Decrypted matching record IDs (with multiplicity, for the
    /// dual-instance difference).
    pub records: Vec<RecordId>,
    /// Whether the on-chain verification passed.
    pub verified: bool,
    /// Gas consumed registering the request (tokens + escrow).
    pub request_gas: u64,
    /// Gas consumed by the result submission + verification.
    pub verify_gas: u64,
    /// Whether the escrowed fee went to the cloud (`true`) or back to the
    /// user (`false`). Trivially-empty searches settle nothing.
    pub paid_cloud: bool,
    /// Phase-by-phase latency and gas breakdown of this search.
    pub profile: SearchProfile,
    /// Identity of this search's trace (the `protocol.search` root span's
    /// [`slicer_telemetry::TraceId`]), or 0 when telemetry is disabled.
    pub trace_id: u64,
}

/// Lowercase hex of `bytes` — tx hashes as span attributes.
fn hex_bytes(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(2 + bytes.len() * 2);
    out.push_str("0x");
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// One Slicer deployment: owner + cloud + user + verification contract,
/// operating against a caller-provided [`Blockchain`]. Use this directly
/// when several instances share a chain (see [`crate::DualSlicer`]);
/// otherwise [`SlicerSystem`] bundles a chain for you.
#[derive(Debug)]
pub struct SlicerInstance {
    /// The data owner.
    pub owner: DataOwner,
    /// The cloud server.
    pub cloud: CloudServer,
    /// The authorized data user.
    pub user: DataUser,
    owner_addr: Address,
    user_addr: Address,
    cloud_addr: Address,
    contract: Address,
    request_counter: u64,
    telemetry: TelemetryHandle,
    /// Drives `SearchProfile` walls: the telemetry clock when a live
    /// handle is installed (deterministic under a `LogicalClock`), a
    /// monotonic fallback otherwise. Keeps `std::time` out of the
    /// protocol path.
    clock: Arc<dyn Clock>,
    declared: DeclaredLeakage,
}

impl SlicerInstance {
    /// Creates the parties, funds their accounts and deploys the
    /// verification contract on `chain`.
    pub fn setup(config: SlicerConfig, seed: u64, chain: &mut Blockchain) -> Self {
        Self::setup_with(config, seed, chain, TelemetryHandle::disabled())
    }

    /// [`SlicerInstance::setup`] with a telemetry context that is installed
    /// into all three parties and used for phase metrics. Pass
    /// [`TelemetryHandle::disabled`] for the zero-overhead path.
    ///
    /// # Panics
    ///
    /// Panics if the contract deployment fails, which cannot happen on a
    /// chain that accepts the accounts funded here. Use
    /// [`SlicerInstance::try_setup_with`] to handle the error instead.
    pub fn setup_with(
        config: SlicerConfig,
        seed: u64,
        chain: &mut Blockchain,
        telemetry: TelemetryHandle,
    ) -> Self {
        match Self::try_setup_with(config, seed, chain, telemetry) {
            Ok(instance) => instance,
            // slicer-lint: allow(panic.panic) — convenience constructor for tests/benches; the fallible path is try_setup_with
            Err(e) => panic!("slicer setup failed: {e}"),
        }
    }

    /// Fallible [`SlicerInstance::setup_with`]: every chain interaction is
    /// surfaced as a typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// Propagates chain failures from the contract deployment.
    pub fn try_setup_with(
        config: SlicerConfig,
        seed: u64,
        chain: &mut Blockchain,
        telemetry: TelemetryHandle,
    ) -> Result<Self, SlicerError> {
        let mut span = telemetry.span("phase.setup");
        let owner = DataOwner::new(config.clone(), seed);
        let cloud = CloudServer::new(config.clone(), owner.keys().trapdoor().public().clone());
        let user = owner.delegate();

        // Derive distinct addresses from the seed.
        let addr = |tag: &str| {
            let h = sha256(&[tag.as_bytes(), &seed.to_be_bytes()].concat());
            Address(*h.first_chunk().unwrap_or(&[0u8; 20]))
        };
        let owner_addr = addr("owner");
        let user_addr = addr("user");
        let cloud_addr = addr("cloud");
        chain.create_account(owner_addr, 10_000_000_000);
        chain.create_account(user_addr, 10_000_000_000);
        chain.create_account(cloud_addr, 10_000_000_000);

        let contract =
            SlicerContract::new(config.accumulator.clone(), config.prime_bits, owner_addr);
        let deployed = chain.deploy_contract(owner_addr, Box::new(contract), 0)?;
        chain.seal_block();

        telemetry.count("phase.setup.gas", deployed.receipt.gas_used);
        if span.is_recording() {
            span.attr("gas.used", deployed.receipt.gas_used);
            span.attr("tx.hash", hex_bytes(&deployed.receipt.tx_hash.0));
        }
        drop(span);
        // Deterministic fields only (gas, never wall time), so same-seed
        // structured-log transcripts stay byte-identical.
        telemetry.log(
            Level::Info,
            "slicer.setup",
            "parties deployed",
            vec![("gas.used", deployed.receipt.gas_used.into())],
        );

        let mut instance = SlicerInstance {
            owner,
            cloud,
            user,
            owner_addr,
            user_addr,
            cloud_addr,
            contract: deployed.address,
            request_counter: 0,
            telemetry: TelemetryHandle::disabled(),
            clock: crate::owner::timing_clock(&TelemetryHandle::disabled()),
            declared: DeclaredLeakage::default(),
        };
        instance.set_telemetry(telemetry);
        Ok(instance)
    }

    /// Rebuilds an instance from persisted owner and cloud snapshots on a
    /// fresh chain: keys are re-derived from `seed`, the owner resumes
    /// from its restored `T`/`S`/accumulator, the cloud serves the
    /// restored index without any rebuild, and the restored digest is
    /// republished on `chain` (the chain itself models an always-on
    /// external party and is not part of the snapshot).
    ///
    /// # Errors
    ///
    /// Propagates chain failures from the contract deployment and the
    /// digest republication.
    pub fn try_restore_with(
        config: SlicerConfig,
        seed: u64,
        chain: &mut Blockchain,
        telemetry: TelemetryHandle,
        owner_state: crate::state::OwnerState,
        accumulator: slicer_bignum::BigUint,
        cloud_state: slicer_store::CloudState,
    ) -> Result<Self, SlicerError> {
        let mut span = telemetry.span("phase.restore");
        let owner = DataOwner::restore(config.clone(), seed, owner_state, accumulator);
        let cloud = CloudServer::from_state(
            config.clone(),
            owner.keys().trapdoor().public().clone(),
            cloud_state,
        );
        let user = owner.delegate();

        let addr = |tag: &str| {
            let h = sha256(&[tag.as_bytes(), &seed.to_be_bytes()].concat());
            Address(*h.first_chunk().unwrap_or(&[0u8; 20]))
        };
        let owner_addr = addr("owner");
        let user_addr = addr("user");
        let cloud_addr = addr("cloud");
        chain.create_account(owner_addr, 10_000_000_000);
        chain.create_account(user_addr, 10_000_000_000);
        chain.create_account(cloud_addr, 10_000_000_000);

        let contract =
            SlicerContract::new(config.accumulator.clone(), config.prime_bits, owner_addr);
        let deployed = chain.deploy_contract(owner_addr, Box::new(contract), 0)?;
        chain.seal_block();
        // Every gas-bearing span must have a matching phase counter, so
        // profile gas totals reconcile with the counter surface on
        // restored deployments too (slicer-cli profile --check).
        telemetry.count("phase.restore.gas", deployed.receipt.gas_used);
        if span.is_recording() {
            span.attr("gas.used", deployed.receipt.gas_used);
        }
        drop(span);

        let mut instance = SlicerInstance {
            owner,
            cloud,
            user,
            owner_addr,
            user_addr,
            cloud_addr,
            contract: deployed.address,
            request_counter: 0,
            telemetry: TelemetryHandle::disabled(),
            clock: crate::owner::timing_clock(&TelemetryHandle::disabled()),
            declared: DeclaredLeakage::default(),
        };
        instance.set_telemetry(telemetry);
        // The on-chain digest must match the restored accumulator before
        // any search verifies against it.
        instance.publish_accumulator(chain)?;
        Ok(instance)
    }

    /// The instance's telemetry context.
    pub fn telemetry(&self) -> &TelemetryHandle {
        &self.telemetry
    }

    /// Installs a telemetry context into the instance and all three
    /// parties. Phase timing follows the handle's clock so span durations
    /// and [`SearchProfile`] walls share one timeline.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.owner.set_telemetry(telemetry.clone());
        self.cloud.set_telemetry(telemetry.clone());
        self.user.set_telemetry(telemetry.clone());
        self.clock = crate::owner::timing_clock(&telemetry);
        self.telemetry = telemetry;
    }

    /// The leakage profiles this instance has declared so far: one
    /// `L^build` per shipment, one `L^search` per search and the token
    /// history behind `L^repeat`. Feed to
    /// [`LeakageAuditor::verify`](crate::LeakageAuditor::verify) together
    /// with the run's trace transcript.
    pub fn declared_leakage(&self) -> &DeclaredLeakage {
        &self.declared
    }

    /// Elapsed nanoseconds on the instance clock since `start_ns`.
    fn elapsed(&self, start_ns: u64) -> Duration {
        Duration::from_nanos(self.clock.now_nanos().saturating_sub(start_ns))
    }

    /// The verification contract's address.
    pub fn contract_address(&self) -> Address {
        self.contract
    }

    /// The parties' chain addresses `(owner, user, cloud)`.
    pub fn addresses(&self) -> (Address, Address, Address) {
        (self.owner_addr, self.user_addr, self.cloud_addr)
    }

    /// Publishes the owner's current accumulator digest on chain.
    fn publish_accumulator(&self, chain: &mut Blockchain) -> Result<TxReceipt, SlicerError> {
        let elem = self.owner.config().accumulator.element_bytes();
        let call = SlicerCall::SetAccumulator(self.owner.accumulator().to_bytes_be_padded(elem));
        let receipt = chain.send_transaction(Transaction::call(
            self.owner_addr,
            self.contract,
            0,
            call.encode(),
        ))?;
        chain.seal_block();
        Ok(receipt)
    }

    /// Full `Build` flow: owner builds, cloud ingests `(I, X, Ac)`, the
    /// digest goes on chain and the user receives the fresh state.
    ///
    /// # Errors
    ///
    /// Propagates owner-side domain errors and chain failures.
    pub fn build(
        &mut self,
        chain: &mut Blockchain,
        db: &[(RecordId, u64)],
    ) -> Result<TxReceipt, SlicerError> {
        let mut span = self.telemetry.span("phase.build");
        let out = self.owner.build(db)?;
        self.deploy_shipment(chain, &mut span, &out)
    }

    /// Multi-attribute `Build`.
    ///
    /// # Errors
    ///
    /// Propagates owner-side domain errors and chain failures.
    pub fn build_records(
        &mut self,
        chain: &mut Blockchain,
        db: &[Record],
    ) -> Result<TxReceipt, SlicerError> {
        let mut span = self.telemetry.span("phase.build");
        let out = self.owner.build_records(db)?;
        self.deploy_shipment(chain, &mut span, &out)
    }

    /// Full forward-secure `Insert` flow. Returns the receipt of the
    /// on-chain digest update (the 29 144-gas operation of Table II).
    ///
    /// # Errors
    ///
    /// Propagates owner-side domain errors and chain failures.
    pub fn insert(
        &mut self,
        chain: &mut Blockchain,
        db_plus: &[(RecordId, u64)],
    ) -> Result<TxReceipt, SlicerError> {
        let mut span = self.telemetry.span("phase.build");
        let out = self.owner.insert(db_plus)?;
        self.deploy_shipment(chain, &mut span, &out)
    }

    /// Multi-attribute `Insert`.
    ///
    /// # Errors
    ///
    /// Propagates owner-side domain errors and chain failures.
    pub fn insert_records(
        &mut self,
        chain: &mut Blockchain,
        db_plus: &[Record],
    ) -> Result<TxReceipt, SlicerError> {
        let mut span = self.telemetry.span("phase.build");
        let out = self.owner.insert_records(db_plus)?;
        self.deploy_shipment(chain, &mut span, &out)
    }

    /// Shared tail of every build/insert (inserts fold into the Build
    /// phase: both run Algorithm 1/2 + a digest update): ship to the
    /// cloud, refresh the user view, publish the digest, and record
    /// exactly the `L^build` shape — sizes only — on the phase span and
    /// in the declared-leakage ledger.
    fn deploy_shipment(
        &mut self,
        chain: &mut Blockchain,
        span: &mut Span,
        out: &crate::messages::BuildOutput,
    ) -> Result<TxReceipt, SlicerError> {
        self.cloud.ingest(out)?;
        self.user.sync_state(self.owner.state().user_view());
        let leak =
            BuildLeakage::of(out).map_err(|e| SlicerError::IndexCorruption(e.to_string()))?;
        let receipt = self.publish_accumulator(chain)?;
        self.telemetry.count("phase.build.gas", receipt.gas_used);
        if span.is_recording() {
            span.attr("entries", leak.entries);
            span.attr("label_bits", leak.label_bits);
            span.attr("value_bits", leak.value_bits);
            span.attr("primes", leak.primes);
            span.attr("prime_bits", leak.prime_bits);
            span.attr("gas.used", receipt.gas_used);
            span.attr("tx.hash", hex_bytes(&receipt.tx_hash.0));
        }
        self.telemetry.log(
            Level::Info,
            "slicer.build",
            "shipment deployed",
            vec![
                ("entries", leak.entries.into()),
                ("primes", leak.primes.into()),
                ("gas.used", receipt.gas_used.into()),
            ],
        );
        self.declared.builds.push(leak);
        Ok(receipt)
    }

    /// The full verifiable-search workflow of Fig. 1:
    ///
    /// 1. the user generates tokens and registers the request (escrowing
    ///    `payment` wei),
    /// 2. the cloud searches, generates VOs and submits,
    /// 3. the contract verifies and settles the payment,
    /// 4. the user decrypts the results.
    ///
    /// # Errors
    ///
    /// Propagates chain failures and malformed-result errors.
    pub fn search(
        &mut self,
        chain: &mut Blockchain,
        query: &Query,
        payment: u128,
    ) -> Result<SearchOutcome, SlicerError> {
        self.search_with(chain, query, payment, |resp| resp)
    }

    /// [`SlicerInstance::search`] with a hook that lets tests and examples
    /// replace the cloud's honest response with a tampered one before it is
    /// submitted for verification.
    ///
    /// # Errors
    ///
    /// Propagates chain failures and malformed-result errors.
    pub fn search_with(
        &mut self,
        chain: &mut Blockchain,
        query: &Query,
        payment: u128,
        tamper: impl FnOnce(crate::messages::CloudResponse) -> crate::messages::CloudResponse,
    ) -> Result<SearchOutcome, SlicerError> {
        let mut root = self.telemetry.span("protocol.search");
        let trace_id = root.ctx().map_or(0, |c| c.trace.0);

        let mut token_span = self.telemetry.span("phase.token");
        let token_start = self.clock.now_nanos();
        let tokens = self.user.tokens_for(query);
        root.attr("tokens", tokens.len());
        if tokens.is_empty() {
            // Nothing indexed can match: `T` (trusted, owner-signed state)
            // has no entry, so the result is provably empty without paying.
            // The cloud and chain observe nothing; the declared ledger
            // records an empty access pattern so audits stay aligned.
            self.declared
                .searches
                .push(SearchLeakage { tokens: Vec::new() });
            return Ok(SearchOutcome {
                records: Vec::new(),
                verified: true,
                request_gas: 0,
                verify_gas: 0,
                paid_cloud: false,
                profile: SearchProfile::default(),
                trace_id,
            });
        }

        // 1. Register the request with tokens + escrow.
        self.request_counter += 1;
        let rid = sha256(
            &[
                self.user_addr.0.as_slice(),
                &self.request_counter.to_be_bytes(),
            ]
            .concat(),
        );
        let width = self.owner.keys().trapdoor().public().trapdoor_bytes();
        let call = SlicerCall::RequestSearch {
            request_id: rid,
            cloud: self.cloud_addr,
            tokens: tokens.iter().map(|t| t.to_chain(width)).collect(),
        };
        let req_receipt = chain.send_transaction(Transaction::call(
            self.user_addr,
            self.contract,
            payment,
            call.encode(),
        ))?;
        let token_wall = self.elapsed(token_start);
        if token_span.is_recording() {
            token_span.attr("tokens", tokens.len());
            token_span.attr("gas.used", req_receipt.gas_used);
            token_span.attr("tx.hash", hex_bytes(&req_receipt.tx_hash.0));
        }
        drop(token_span);

        // 2. Cloud searches and proves (tokens travel via the chain in the
        //    real deployment; the cloud reads the same values here).
        let mut search_span = self.telemetry.span("phase.search");
        let search_start = self.clock.now_nanos();
        let honest = self.cloud.respond(&tokens)?;
        self.declared
            .searches
            .push(SearchLeakage::of(&honest.results));
        self.declared.token_history.extend(tokens.iter().cloned());
        let response = tamper(honest);
        let search_wall = self.elapsed(search_start);
        search_span.attr("results", response.results.len());
        drop(search_span);

        // 3. Submit for verification and settlement.
        let mut verify_span = self.telemetry.span("phase.verify");
        let verify_start = self.clock.now_nanos();
        let submit = SlicerCall::SubmitResult {
            request_id: rid,
            entries: response.entries.clone(),
        };
        let mut tx = Transaction::call(self.cloud_addr, self.contract, 0, submit.encode());
        tx.gas_limit = 100_000_000; // verification of large result sets
        let sub_receipt = chain.send_transaction(tx)?;
        let verify_wall = self.elapsed(verify_start);
        let verified = sub_receipt.status.is_success() && sub_receipt.output == [1];
        // The submit transaction's gas splits between the Verify phase
        // (everything but the escrow transfer) and the Settle phase (the
        // transfer) — see the phase-gas attribution below. The span attrs
        // carry the same split so a gas-weighted profile fold over sibling
        // spans sums to the transaction totals without double-counting.
        let settle_gas = sub_receipt.gas_breakdown.transfer;
        if verify_span.is_recording() {
            verify_span.attr("gas.used", sub_receipt.gas_used - settle_gas);
            verify_span.attr("tx.hash", hex_bytes(&sub_receipt.tx_hash.0));
            verify_span.attr("verified", verified);
        }
        drop(verify_span);

        // 4. Settle (seal the block carrying the payment) and decrypt
        //    whatever the cloud returned (worthless if unverified).
        let mut settle_span = self.telemetry.span("phase.settle");
        let settle_start = self.clock.now_nanos();
        chain.seal_block();
        let records = self.user.decrypt(&response.results)?;
        let settle_wall = self.elapsed(settle_start);

        // Gas attribution: the request transaction is the Token phase; the
        // submit transaction splits into Verify (everything but the escrow
        // transfer) and Settle (the transfer). Search is off-chain. The
        // phase gas therefore sums exactly to request_gas + verify_gas.
        let paid_cloud = verified && payment > 0;
        if settle_span.is_recording() {
            settle_span.attr("gas.used", settle_gas);
            settle_span.attr("paid_cloud", paid_cloud);
            settle_span.attr("records", records.len());
        }
        drop(settle_span);
        let mut gas = req_receipt.gas_breakdown.clone();
        gas.merge(&sub_receipt.gas_breakdown);
        let profile = SearchProfile {
            token: PhaseStat {
                wall: token_wall,
                gas: req_receipt.gas_used,
            },
            search: PhaseStat {
                wall: search_wall,
                gas: 0,
            },
            verify: PhaseStat {
                wall: verify_wall,
                gas: sub_receipt.gas_used - settle_gas,
            },
            settle: PhaseStat {
                wall: settle_wall,
                gas: settle_gas,
            },
            gas,
        };
        // Phase latency histograms come from the phase spans themselves
        // (`phase.<name>.ns`); only the gas counters are explicit.
        for (name, stat) in profile.phases() {
            self.telemetry.count(&format!("phase.{name}.gas"), stat.gas);
        }
        drop(root);
        self.telemetry.log(
            Level::Info,
            "slicer.search",
            "search complete",
            vec![
                ("tokens", tokens.len().into()),
                ("records", records.len().into()),
                ("verified", verified.into()),
                ("request.gas", req_receipt.gas_used.into()),
                ("verify.gas", sub_receipt.gas_used.into()),
            ],
        );

        Ok(SearchOutcome {
            records,
            verified,
            request_gas: req_receipt.gas_used,
            verify_gas: sub_receipt.gas_used,
            paid_cloud,
            profile,
            trace_id,
        })
    }
}

/// A self-contained deployment: a [`SlicerInstance`] plus its own chain.
///
/// See the crate-level example for the typical lifecycle.
#[derive(Debug)]
pub struct SlicerSystem {
    instance: SlicerInstance,
    chain: Blockchain,
}

impl SlicerSystem {
    /// Sets up chain, contract and parties.
    pub fn setup(config: SlicerConfig, seed: u64) -> Self {
        Self::setup_with(config, seed, TelemetryHandle::disabled())
    }

    /// [`SlicerSystem::setup`] with a telemetry context. See
    /// [`SlicerInstance::setup_with`].
    pub fn setup_with(config: SlicerConfig, seed: u64, telemetry: TelemetryHandle) -> Self {
        let mut chain = Blockchain::new();
        let instance = SlicerInstance::setup_with(config, seed, &mut chain, telemetry);
        SlicerSystem { instance, chain }
    }

    /// Builds the initial database. See [`SlicerInstance::build`].
    ///
    /// # Errors
    ///
    /// Propagates owner-side and chain errors.
    pub fn build(&mut self, db: &[(RecordId, u64)]) -> Result<TxReceipt, SlicerError> {
        self.instance.build(&mut self.chain, db)
    }

    /// Builds multi-attribute records. See [`SlicerInstance::build_records`].
    ///
    /// # Errors
    ///
    /// Propagates owner-side and chain errors.
    pub fn build_records(&mut self, db: &[Record]) -> Result<TxReceipt, SlicerError> {
        self.instance.build_records(&mut self.chain, db)
    }

    /// Inserts new records. See [`SlicerInstance::insert`].
    ///
    /// # Errors
    ///
    /// Propagates owner-side and chain errors.
    pub fn insert(&mut self, db_plus: &[(RecordId, u64)]) -> Result<TxReceipt, SlicerError> {
        self.instance.insert(&mut self.chain, db_plus)
    }

    /// Inserts multi-attribute records. See
    /// [`SlicerInstance::insert_records`].
    ///
    /// # Errors
    ///
    /// Propagates owner-side and chain errors.
    pub fn insert_records(&mut self, db_plus: &[Record]) -> Result<TxReceipt, SlicerError> {
        self.instance.insert_records(&mut self.chain, db_plus)
    }

    /// Runs a verified search. See [`SlicerInstance::search`].
    ///
    /// # Errors
    ///
    /// Propagates chain and result-decoding errors.
    pub fn search(&mut self, query: &Query, payment: u128) -> Result<SearchOutcome, SlicerError> {
        self.instance.search(&mut self.chain, query, payment)
    }

    /// Search with a tampering hook (failure injection).
    ///
    /// # Errors
    ///
    /// Propagates chain and result-decoding errors.
    pub fn search_with(
        &mut self,
        query: &Query,
        payment: u128,
        tamper: impl FnOnce(crate::messages::CloudResponse) -> crate::messages::CloudResponse,
    ) -> Result<SearchOutcome, SlicerError> {
        self.instance
            .search_with(&mut self.chain, query, payment, tamper)
    }

    /// The inner instance.
    pub fn instance(&self) -> &SlicerInstance {
        &self.instance
    }

    /// Mutable access to the inner instance.
    pub fn instance_mut(&mut self) -> &mut SlicerInstance {
        &mut self.instance
    }

    /// The underlying chain.
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// Mutable access to the chain (adversarial tests submit raw
    /// transactions through this).
    pub fn chain_mut(&mut self) -> &mut Blockchain {
        &mut self.chain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::malicious;

    fn db(n: u64) -> Vec<(RecordId, u64)> {
        (0..n)
            .map(|i| (RecordId::from_u64(i), (i * 13) % 256))
            .collect()
    }

    #[test]
    fn end_to_end_equality() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 1);
        sys.build(&db(30)).unwrap();
        let out = sys.search(&Query::equal(13), 100).unwrap();
        assert!(out.verified);
        assert_eq!(out.records, vec![RecordId::from_u64(1)]);
        assert!(out.paid_cloud);
    }

    #[test]
    fn end_to_end_order_query_matches_oracle() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 2);
        let data = db(40);
        sys.build(&data).unwrap();
        for q in [Query::less_than(60), Query::greater_than(200)] {
            let out = sys.search(&q, 10).unwrap();
            assert!(out.verified, "query {q:?}");
            let mut got: Vec<u64> = out.records.iter().map(|r| r.as_u64().unwrap()).collect();
            got.sort_unstable();
            let mut want: Vec<u64> = data
                .iter()
                .filter(|(_, v)| q.matches(*v))
                .map(|(id, _)| id.as_u64().unwrap())
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {q:?}");
        }
    }

    #[test]
    fn empty_query_settles_nothing() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 3);
        sys.build(&[(RecordId::from_u64(1), 10)]).unwrap();
        let out = sys.search(&Query::equal(99), 500).unwrap();
        assert!(out.verified);
        assert!(out.records.is_empty());
        assert!(!out.paid_cloud);
        assert_eq!(out.request_gas, 0);
    }

    #[test]
    fn search_after_insert_sees_fresh_data_and_verifies() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 4);
        sys.build(&db(10)).unwrap();
        sys.insert(&[(RecordId::from_u64(100), 13)]).unwrap();
        let out = sys.search(&Query::equal(13), 10).unwrap();
        assert!(out.verified);
        let mut got: Vec<u64> = out.records.iter().map(|r| r.as_u64().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 100]);
    }

    #[test]
    fn tampered_response_fails_verification_and_refunds() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 5);
        sys.build(&db(30)).unwrap();
        let (_, user_addr, cloud_addr) = sys.instance().addresses();
        let user_before = sys.chain().balance(&user_addr);
        let cloud_before = sys.chain().balance(&cloud_addr);

        let out = sys
            .search_with(&Query::less_than(100), 1_000, malicious::drop_record)
            .unwrap();
        assert!(!out.verified, "dropped record must not verify");
        assert!(!out.paid_cloud);
        // Escrow refunded: user balance unchanged, cloud not paid.
        assert_eq!(sys.chain().balance(&user_addr), user_before);
        assert_eq!(sys.chain().balance(&cloud_addr), cloud_before);
    }

    #[test]
    fn profile_reconciles_with_receipt_gas() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 7);
        sys.build(&db(30)).unwrap();
        let out = sys.search(&Query::less_than(100), 1_000).unwrap();
        assert!(out.verified);
        assert_eq!(out.profile.total_gas(), out.request_gas + out.verify_gas);
        assert_eq!(out.profile.gas.total(), out.profile.total_gas());
        assert_eq!(out.profile.token.gas, out.request_gas);
        assert_eq!(out.profile.search.gas, 0, "the cloud search is off-chain");
        // One escrow transfer settles the fee.
        assert_eq!(out.profile.settle.gas, 9_000);
        assert_eq!(out.profile.gas.transfer, 9_000);
    }

    #[test]
    fn telemetry_covers_all_six_phases() {
        use slicer_telemetry::{LogicalClock, MemorySink};
        use std::sync::Arc;
        let sink = Arc::new(MemorySink::new());
        let handle = TelemetryHandle::with(Arc::new(LogicalClock::default()), sink.clone() as _);
        let mut sys = SlicerSystem::setup_with(SlicerConfig::test_8bit(), 8, handle.clone());
        sys.build(&db(20)).unwrap();
        sys.insert(&[(RecordId::from_u64(100), 13)]).unwrap();
        let out = sys.search(&Query::equal(13), 10).unwrap();
        assert!(out.verified);
        let snap = handle.snapshot();
        for phase in ["setup", "build", "token", "search", "verify", "settle"] {
            let hist = format!("phase.{phase}.ns");
            let gas = format!("phase.{phase}.gas");
            assert!(
                snap.histograms().iter().any(|(n, _)| *n == hist),
                "missing {hist}"
            );
            assert!(
                snap.counters().iter().any(|(n, _)| *n == gas),
                "missing {gas}"
            );
        }
        // Party-level instrumentation reported through the same registry.
        assert!(snap.counter("owner.entries.emitted").unwrap() > 0);
        assert!(snap.counter("cloud.index.hits").unwrap() > 0);
        assert!(snap.counter("user.tokens.generated").unwrap() > 0);
        assert!(!sink.is_empty(), "spans and counters emit sink events");
    }

    #[test]
    fn honest_search_pays_the_cloud() {
        let mut sys = SlicerSystem::setup(SlicerConfig::test_8bit(), 6);
        sys.build(&db(30)).unwrap();
        let (_, user_addr, cloud_addr) = sys.instance().addresses();
        let user_before = sys.chain().balance(&user_addr);
        let cloud_before = sys.chain().balance(&cloud_addr);
        let out = sys.search(&Query::less_than(100), 1_000).unwrap();
        assert!(out.verified);
        assert_eq!(sys.chain().balance(&user_addr), user_before - 1_000);
        assert_eq!(sys.chain().balance(&cloud_addr), cloud_before + 1_000);
    }
}
