//! The leakage functions of Section VI-B, made measurable.
//!
//! The security proof (Theorem 2) shows the protocol reveals nothing beyond
//! four leakage functions. This module computes those profiles from real
//! protocol transcripts so tests can check the *shape* claims directly:
//! `L^build` and `L^insert` contain only sizes; `L^search` is the access
//! pattern of one query; `L^repeat` is the repeat matrix.

use crate::messages::{BuildOutput, SearchToken};
use std::collections::BTreeMap;
use std::fmt;

/// A build shipment whose entries or primes do not all share one shape.
///
/// The `L^build` leakage claim ("sizes only") is meaningful only when one
/// `⟨|l|, |d|⟩` pair describes *every* entry; a ragged shipment would leak
/// per-entry information through its shape, so [`BuildLeakage::of`] refuses
/// to summarize it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaggedShapeError {
    /// Index of the first entry or prime deviating from the shape.
    pub index: usize,
    /// What deviated, e.g. `"value of 64 bytes, expected 32"`.
    pub detail: String,
}

impl fmt::Display for RaggedShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ragged build shipment at position {}: {}",
            self.index, self.detail
        )
    }
}

impl std::error::Error for RaggedShapeError {}

/// `L^build(DB) = (⟨|l|, |d|⟩_p, |x|_q)`: entry shapes and counts only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BuildLeakage {
    /// Bit length of index labels.
    pub label_bits: usize,
    /// Bit length of index values.
    pub value_bits: usize,
    /// Number of index entries `p`.
    pub entries: usize,
    /// Bit length of prime representatives.
    pub prime_bits: usize,
    /// Number of primes `q`.
    pub primes: usize,
}

impl BuildLeakage {
    /// Extracts the build leakage from a shipment, verifying that *every*
    /// entry and prime matches the shape of the first (summarizing a ragged
    /// shipment by its first element would understate the leakage).
    ///
    /// # Errors
    ///
    /// Returns [`RaggedShapeError`] naming the first nonconforming element.
    pub fn of(output: &BuildOutput) -> Result<Self, RaggedShapeError> {
        let label_len = output.entries.first().map_or(0, |(l, _)| l.len());
        let value_len = output.entries.first().map_or(0, |(_, d)| d.len());
        for (i, (l, d)) in output.entries.iter().enumerate() {
            if l.len() != label_len {
                return Err(RaggedShapeError {
                    index: i,
                    detail: format!("label of {} bytes, expected {label_len}", l.len()),
                });
            }
            if d.len() != value_len {
                return Err(RaggedShapeError {
                    index: i,
                    detail: format!("value of {} bytes, expected {value_len}", d.len()),
                });
            }
        }
        let prime_bits = output.primes.first().map_or(0, |x| x.bit_len() as usize);
        for (i, x) in output.primes.iter().enumerate() {
            if x.bit_len() as usize != prime_bits {
                return Err(RaggedShapeError {
                    index: i,
                    detail: format!("prime of {} bits, expected {prime_bits}", x.bit_len()),
                });
            }
        }
        Ok(BuildLeakage {
            label_bits: label_len * 8,
            value_bits: value_len * 8,
            entries: output.entries.len(),
            prime_bits,
            primes: output.primes.len(),
        })
    }
}

/// `L^search`: the per-token access pattern — how many generations were
/// walked and how many entries matched in each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchLeakage {
    /// Per token: `(j, results recovered)`.
    pub tokens: Vec<(u32, usize)>,
}

impl SearchLeakage {
    /// Builds the profile from the slice results of one query.
    pub fn of(results: &[crate::messages::SliceResult]) -> Self {
        SearchLeakage {
            tokens: results
                .iter()
                .map(|r| (r.token.updates, r.er.len()))
                .collect(),
        }
    }
}

/// `L^repeat(Q) = M_{r×r}`: which of `r` historical tokens coincide.
///
/// The server can always compute this matrix by comparing the PRF values
/// of issued tokens; the proof's simulator needs exactly this much.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepeatLeakage {
    /// Symmetric boolean matrix, `matrix[i][j]` iff token `i` = token `j`.
    pub matrix: Vec<Vec<bool>>,
}

impl RepeatLeakage {
    /// Computes the repeat matrix over a token history.
    pub fn of(history: &[SearchToken]) -> Self {
        let r = history.len();
        let mut matrix = vec![vec![false; r]; r];
        let mut seen: BTreeMap<([u8; 32], [u8; 32], u32), Vec<usize>> = BTreeMap::new();
        for (i, t) in history.iter().enumerate() {
            seen.entry((t.g1, t.g2, t.updates)).or_default().push(i);
        }
        for group in seen.values() {
            for &i in group {
                for &j in group {
                    if let Some(cell) = matrix.get_mut(i).and_then(|row| row.get_mut(j)) {
                        *cell = true;
                    }
                }
            }
        }
        RepeatLeakage { matrix }
    }

    /// Number of distinct token identities in the history.
    pub fn distinct(&self) -> usize {
        // Count rows that are the first occurrence of their pattern.
        let mut count = 0;
        for (i, row) in self.matrix.iter().enumerate() {
            if row.iter().take(i).all(|&b| !b) {
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Query;
    use crate::owner::DataOwner;
    use crate::record::RecordId;
    use crate::SlicerConfig;

    fn owner_with(n: u64) -> DataOwner {
        let mut o = DataOwner::new(SlicerConfig::test_8bit(), 77);
        let db: Vec<(RecordId, u64)> = (0..n)
            .map(|i| (RecordId::from_u64(i), (i * 3) % 256))
            .collect();
        o.build(&db).unwrap();
        o
    }

    #[test]
    fn build_leakage_is_sizes_only() {
        let mut o = DataOwner::new(SlicerConfig::test_8bit(), 77);
        let db: Vec<(RecordId, u64)> = (0..20)
            .map(|i| (RecordId::from_u64(i), (i * 3) % 256))
            .collect();
        let out = o.build(&db).unwrap();
        let leak = BuildLeakage::of(&out).unwrap();
        assert_eq!(leak.label_bits, 256);
        assert_eq!(leak.value_bits, 256);
        assert_eq!(leak.entries, 20 * 9);
        assert_eq!(leak.prime_bits, 128);
        // Two databases with the same shape leak identically even with
        // completely different values — the simulator argument.
        let mut o2 = DataOwner::new(SlicerConfig::test_8bit(), 78);
        let db2: Vec<(RecordId, u64)> = (0..20)
            .map(|i| (RecordId::from_u64(i + 500), (i * 7 + 1) % 256))
            .collect();
        let out2 = o2.build(&db2).unwrap();
        let leak2 = BuildLeakage::of(&out2).unwrap();
        assert_eq!(leak.label_bits, leak2.label_bits);
        assert_eq!(leak.value_bits, leak2.value_bits);
        assert_eq!(leak.entries, leak2.entries);
    }

    #[test]
    fn insert_leakage_reveals_only_delta_shape() {
        let mut o = owner_with(10);
        let out = o.insert(&[(RecordId::from_u64(100), 3)]).unwrap();
        let leak = BuildLeakage::of(&out).unwrap();
        // One record touches 1 + b keywords: one entry each.
        assert_eq!(leak.entries, 9);
        assert_eq!(leak.primes, 9);
    }

    #[test]
    fn ragged_shipment_is_rejected() {
        let mut o = owner_with(5);
        let mut out = o.insert(&[(RecordId::from_u64(50), 7)]).unwrap();
        // Truncate one encrypted value: the shipment no longer has one
        // uniform ⟨|l|, |d|⟩ shape.
        out.entries[1].1.pop();
        let err = BuildLeakage::of(&out).unwrap_err();
        assert_eq!(err.index, 1);
        assert!(err.detail.contains("value"), "{err}");
    }

    #[test]
    fn repeat_matrix_identifies_identical_queries() {
        let o = owner_with(30);
        let t1 = o.search_tokens(&Query::equal(3));
        let t2 = o.search_tokens(&Query::equal(6));
        let t3 = o.search_tokens(&Query::equal(3)); // repeat of t1
        let history: Vec<SearchToken> = t1.iter().chain(&t2).chain(&t3).cloned().collect();
        let leak = RepeatLeakage::of(&history);
        assert!(leak.matrix[0][2], "same query repeats");
        assert!(!leak.matrix[0][1], "different values differ");
        assert_eq!(leak.distinct(), 2);
    }

    #[test]
    fn repeat_matrix_changes_after_insert() {
        // Forward security in L^repeat terms: after an insert touches a
        // keyword, its fresh token no longer matches the old one.
        let mut o = owner_with(30);
        let before = o.search_tokens(&Query::equal(3));
        o.insert(&[(RecordId::from_u64(999), 3)]).unwrap();
        let after = o.search_tokens(&Query::equal(3));
        let history: Vec<SearchToken> = before.iter().chain(&after).cloned().collect();
        let leak = RepeatLeakage::of(&history);
        assert!(!leak.matrix[0][1], "trapdoor rotation breaks linkage");
    }
}
