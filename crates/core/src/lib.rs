//! # slicer-core
//!
//! The Slicer protocol: verifiable, secure and fair search over encrypted
//! numerical data using blockchain (Wu, Song, Lei, Xiao — ICDCS 2022).
//!
//! This crate wires the substrates ([`slicer_sore`], [`slicer_mshash`],
//! [`slicer_accumulator`], [`slicer_trapdoor`], [`slicer_store`],
//! [`slicer_chain`]) into the four-party protocol of Section IV:
//!
//! * [`DataOwner`] — `KGen`, `Build` (Algorithm 1) and forward-secure
//!   `Insert` (Algorithm 2); ships the encrypted index and prime list to
//!   the cloud and the accumulator digest to the chain.
//! * [`DataUser`] — search-token generation (Algorithm 3) and result
//!   decryption, operating on keys and trapdoor state delegated by the
//!   owner.
//! * [`CloudServer`] — the search walk and VO generation (Algorithm 4),
//!   plus deliberately *malicious* variants used by the failure-injection
//!   test-suite.
//! * [`SlicerSystem`] / [`SlicerInstance`] — end-to-end orchestration over
//!   a [`slicer_chain::Blockchain`] running the verification contract
//!   (Algorithm 5) with escrowed search fees.
//! * [`DualSlicer`] — the Section V-F extension supporting deletion and
//!   update by running an insert-instance and a delete-instance side by
//!   side.
//! * [`leakage`] / [`audit`] — the declared leakage profiles of
//!   Theorem 2, and a [`LeakageAuditor`] that re-derives the observable
//!   access pattern from an instrumented run's trace transcript and
//!   asserts it matches those profiles exactly.
//!
//! # Quickstart
//!
//! ```
//! use slicer_core::{Query, RecordId, SlicerConfig, SlicerSystem};
//!
//! // 8-bit values, deterministic seed.
//! let mut system = SlicerSystem::setup(SlicerConfig::test_8bit(), 42);
//! let db: Vec<(RecordId, u64)> = (0u64..50)
//!     .map(|i| (RecordId::from_u64(i), (i * 3) % 256))
//!     .collect();
//! system.build(&db).unwrap();
//!
//! let outcome = system.search(&Query::less_than(30), 1_000).unwrap();
//! assert!(outcome.verified);
//! for id in &outcome.records {
//!     let i = id.as_u64().unwrap();
//!     assert!((i * 3) % 256 < 30);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
mod cloud;
mod config;
mod dual;
mod error;
mod keys;
mod keyword;
pub mod leakage;
mod messages;
mod owner;
mod profile;
mod record;
mod state;
mod system;
mod user;

pub use audit::{AuditReport, DeclaredLeakage, LeakageAuditor, LeakageViolation};
pub use cloud::{malicious, CloudServer, WitnessStrategy};
pub use config::SlicerConfig;
pub use dual::DualSlicer;
pub use error::SlicerError;
pub use keys::KeySet;
pub use keyword::Keyword;
pub use messages::{
    BuildOutput, BuildTiming, CloudResponse, Query, QueryOp, SearchToken, SliceResult,
};
pub use owner::DataOwner;
pub use profile::{PhaseStat, SearchProfile};
pub use record::{Record, RecordId, RECORD_CIPHERTEXT_LEN};
pub use state::{KeywordState, OwnerState};
pub use system::{SearchOutcome, SlicerInstance, SlicerSystem};
pub use user::DataUser;
