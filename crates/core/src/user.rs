//! The data user: token generation (Algorithm 3) and result decryption.

use crate::config::SlicerConfig;
use crate::error::SlicerError;
use crate::keys::KeySet;
use crate::keyword::Keyword;
use crate::messages::{Query, QueryOp, SearchToken, SliceResult};
use crate::record::RecordId;
use crate::state::KeywordState;
use slicer_crypto::Prf;
use slicer_sore::Order;
use slicer_telemetry::TelemetryHandle;
use std::collections::BTreeMap;

/// An authorized data user.
///
/// Holds the delegated secrets (`K`, `K_R`, trapdoor public key) and a copy
/// of the trapdoor-state dictionary `T`, refreshed by the owner after every
/// insert ([`DataUser::sync_state`]). With `T` in hand the user generates
/// search tokens without contacting the owner — the multi-user setting of
/// Section IV.
#[derive(Debug, Clone)]
pub struct DataUser {
    keys: KeySet,
    config: SlicerConfig,
    states: BTreeMap<Vec<u8>, KeywordState>,
    telemetry: TelemetryHandle,
}

impl DataUser {
    /// Builds a user from delegated material (see
    /// [`crate::DataOwner::delegate`]).
    pub fn new(
        keys: KeySet,
        config: SlicerConfig,
        states: BTreeMap<Vec<u8>, KeywordState>,
    ) -> Self {
        DataUser {
            keys,
            config,
            states,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Installs a telemetry context; token-generation spans and counters
    /// are recorded through it. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.telemetry = telemetry;
    }

    /// Replaces the local trapdoor state with the owner's newest `T`.
    pub fn sync_state(&mut self, states: BTreeMap<Vec<u8>, KeywordState>) {
        self.states = states;
    }

    /// Generates the search tokens for a query (Algorithm 3). Slices (or
    /// equality values) with no indexed records produce no token — their
    /// absence from `T` already proves an empty result to the user.
    pub fn tokens_for(&self, query: &Query) -> Vec<SearchToken> {
        let mut span = self.telemetry.span("user.tokens");
        let tokens = make_tokens(
            self.keys.prf_g(),
            &self.states,
            self.config.value_bits,
            query,
        );
        self.telemetry
            .count("user.tokens.generated", tokens.len() as u64);
        span.attr("tokens", tokens.len());
        tokens
    }

    /// Decrypts the cloud's per-slice results into record IDs. Order
    /// queries return each matching record exactly once (Theorem 1
    /// guarantees a unique matching slice); the returned list preserves
    /// multiplicity for the dual-instance set difference.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::MalformedResult`] if a ciphertext is
    /// malformed or does not decode to a record ID.
    pub fn decrypt(&self, results: &[SliceResult]) -> Result<Vec<RecordId>, SlicerError> {
        let mut span = self.telemetry.span("user.decrypt");
        let mut out = Vec::new();
        for slice in results {
            for er in &slice.er {
                let plain = self.keys.record_key().decrypt(er)?;
                let bytes: [u8; 16] = plain.as_slice().try_into().map_err(|_| {
                    SlicerError::IndexCorruption(format!(
                        "record plaintext of {} bytes, expected 16",
                        plain.len()
                    ))
                })?;
                out.push(RecordId(bytes));
            }
        }
        span.attr("records", out.len());
        Ok(out)
    }

    /// The protocol configuration.
    pub fn config(&self) -> &SlicerConfig {
        &self.config
    }

    /// Number of keyword states currently known.
    pub fn known_keywords(&self) -> usize {
        self.states.len()
    }
}

/// Shared token-generation core (Algorithm 3): maps a user query to the
/// keyword set `W`, looks each keyword up in `T` and emits
/// `(t_j, j, G1, G2)` tokens.
pub(crate) fn make_tokens(
    prf_g: &Prf,
    states: &BTreeMap<Vec<u8>, KeywordState>,
    value_bits: u8,
    query: &Query,
) -> Vec<SearchToken> {
    let keywords: Vec<Vec<u8>> = match query.op {
        QueryOp::Equal => vec![Keyword::Equality {
            attr: query.attr.clone(),
            value: query.value,
        }
        .encode()],
        QueryOp::LessThan | QueryOp::GreaterThan => {
            // Records y with y < v satisfy v > y: the token order condition
            // is the paper's `x oc y` with x the query value.
            let oc = if query.op == QueryOp::LessThan {
                Order::Greater
            } else {
                Order::Less
            };
            slicer_sore::token_tuples(&query.attr, query.value, value_bits, oc)
                .into_iter()
                .map(|t| Keyword::Slice(t).encode())
                .collect()
        }
    };

    keywords
        .into_iter()
        .filter_map(|w| {
            states.get(&w).map(|st| SearchToken {
                trapdoor: st.trapdoor.clone(),
                updates: st.updates,
                g1: prf_g.derive(&w, 1),
                g2: prf_g.derive(&w, 2),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owner::DataOwner;

    fn built_owner() -> DataOwner {
        let mut o = DataOwner::new(SlicerConfig::test_8bit(), 3);
        let db: Vec<(RecordId, u64)> = (0..30)
            .map(|i| (RecordId::from_u64(i), i * 8 % 256))
            .collect();
        o.build(&db).unwrap();
        o
    }

    #[test]
    fn equality_token_for_existing_value() {
        let o = built_owner();
        let u = o.delegate();
        assert_eq!(u.tokens_for(&Query::equal(8)).len(), 1);
        // 9 is not in the database (multiples of 8 only).
        assert!(u.tokens_for(&Query::equal(9)).is_empty());
    }

    #[test]
    fn order_query_emits_at_most_b_tokens() {
        let o = built_owner();
        let u = o.delegate();
        let tokens = u.tokens_for(&Query::less_than(100));
        assert!(!tokens.is_empty());
        assert!(tokens.len() <= 8);
    }

    #[test]
    fn owner_and_user_tokens_agree() {
        let o = built_owner();
        let u = o.delegate();
        let q = Query::less_than(77);
        assert_eq!(o.search_tokens(&q), u.tokens_for(&q));
    }

    #[test]
    fn stale_user_state_misses_new_keywords() {
        let mut o = DataOwner::new(SlicerConfig::test_8bit(), 3);
        o.build(&[(RecordId::from_u64(1), 10)]).unwrap();
        let stale = o.delegate();
        o.insert(&[(RecordId::from_u64(2), 20)]).unwrap();
        assert!(stale.tokens_for(&Query::equal(20)).is_empty());
        let mut fresh = stale.clone();
        fresh.sync_state(o.state().user_view());
        assert_eq!(fresh.tokens_for(&Query::equal(20)).len(), 1);
    }
}
