//! The cloud server: search and VO generation (Algorithm 4), plus the
//! malicious behaviours exercised by the failure-injection tests.

use crate::config::SlicerConfig;
use crate::error::SlicerError;
use crate::messages::{BuildOutput, CloudResponse, SearchToken, SliceResult};
use crate::owner::state_key;
use slicer_accumulator::{hash_to_prime, witness};
use slicer_chain::VerifyEntry;
use slicer_crypto::{sha256, Prf};
use slicer_mshash::MsetHash;
use slicer_par::Pool;
use slicer_store::CloudState;
use slicer_telemetry::TelemetryHandle;
use slicer_trapdoor::{Trapdoor, TrapdoorPublic};

/// How the cloud generates membership witnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WitnessStrategy {
    /// One direct `O(|X|)` fold per token — what the paper's prototype
    /// does; its cost grows with the record count (Fig. 5b/5d).
    Direct,
    /// One shared complement fold for all of a query's tokens, then a
    /// root-factor split among them — asymptotically `b×` cheaper for
    /// order queries.
    #[default]
    Batched,
    /// Maintain a [`slicer_accumulator::WitnessCache`] over every
    /// accumulated prime (built lazily, updated incrementally on ingest):
    /// VO generation becomes a lookup, trading ingest-time work for
    /// query-time speed.
    Cached,
}

/// The (honest) cloud server.
///
/// Stores the encrypted index, prime list and accumulator digest shipped by
/// the owner, executes the trapdoor-walk search of Algorithm 4 and produces
/// membership witnesses for the on-chain verification.
#[derive(Debug)]
pub struct CloudServer {
    config: SlicerConfig,
    state: CloudState,
    trapdoor_pk: TrapdoorPublic,
    strategy: WitnessStrategy,
    witness_cache: slicer_accumulator::WitnessCache,
    telemetry: TelemetryHandle,
    pool: Pool,
}

impl CloudServer {
    /// A fresh cloud bound to the owner's trapdoor public key.
    pub fn new(config: SlicerConfig, trapdoor_pk: TrapdoorPublic) -> Self {
        let pool = Pool::new(config.workers);
        CloudServer {
            config,
            state: CloudState::new(),
            trapdoor_pk,
            strategy: WitnessStrategy::default(),
            witness_cache: slicer_accumulator::WitnessCache::default(),
            telemetry: TelemetryHandle::disabled(),
            pool,
        }
    }

    /// Restores a cloud from persisted state (see
    /// [`slicer_store::codec`]): a crashed or migrated cloud resumes
    /// serving from the deserialized index and prime list.
    pub fn from_state(
        config: SlicerConfig,
        trapdoor_pk: TrapdoorPublic,
        state: CloudState,
    ) -> Self {
        let pool = Pool::new(config.workers);
        CloudServer {
            config,
            state,
            trapdoor_pk,
            strategy: WitnessStrategy::default(),
            witness_cache: slicer_accumulator::WitnessCache::default(),
            telemetry: TelemetryHandle::disabled(),
            pool,
        }
    }

    /// Installs a telemetry context; search/prove spans and index-lookup
    /// counters are recorded through it. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: TelemetryHandle) {
        self.pool.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Selects the witness-generation strategy.
    pub fn set_strategy(&mut self, strategy: WitnessStrategy) {
        self.strategy = strategy;
    }

    /// The stored state (index, primes, accumulator digest).
    pub fn storage(&self) -> &CloudState {
        &self.state
    }

    /// Ingests a `Build`/`Insert` shipment `(I, X, Ac)`.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::IndexCorruption`] if the shipment collides
    /// with existing index labels.
    pub fn ingest(&mut self, output: &BuildOutput) -> Result<(), SlicerError> {
        self.state
            .index
            .extend(output.entries.iter().cloned())
            .map_err(|e| SlicerError::IndexCorruption(e.to_string()))?;
        self.state.primes.extend(output.primes.iter().cloned());
        self.state.accumulator = Some(output.accumulator.clone());
        Ok(())
    }

    /// Algorithm 4's index walk for one token: from the newest trapdoor
    /// `t_j` down to `t_0`, scanning counters until the first miss in each
    /// generation.
    pub fn search_one(&self, token: &SearchToken) -> SliceResult {
        let mut span = self.telemetry.span("cloud.token");
        let width = self.trapdoor_pk.trapdoor_bytes();
        let f1 = Prf::new(&token.g1);
        let f2 = Prf::new(&token.g2);
        let mut er = Vec::new();
        let mut t: Trapdoor = token.trapdoor.clone();
        for gen in (0..=token.updates).rev() {
            let t_bytes = t.to_bytes(width);
            // One generation shares its trapdoor prefix: absorb it into
            // the PRF midstates once, then walk counters.
            let f1t = f1.stream(&t_bytes);
            let f2t = f2.stream(&t_bytes);
            let mut c: u64 = 0;
            loop {
                let label = f1t.eval(&c.to_be_bytes());
                match self.state.index.get(&label) {
                    None => break,
                    Some(d) => {
                        let pad = f2t.eval(&c.to_be_bytes());
                        let r: Vec<u8> = d.iter().zip(pad.iter()).map(|(x, p)| x ^ p).collect();
                        er.push(r);
                        c += 1;
                    }
                }
            }
            if gen > 0 {
                t = self.trapdoor_pk.forward(&t);
            }
        }
        // Every matched counter is a hit; every generation's walk ends on
        // exactly one miss.
        self.telemetry.count("cloud.index.hits", er.len() as u64);
        self.telemetry
            .count("cloud.index.misses", u64::from(token.updates) + 1);
        // The span records exactly the server's view of this token:
        // generations walked, entries recovered, and the token's identity
        // fingerprint — `L^search` and the `L^repeat` input, no more.
        if span.is_recording() {
            span.attr("token.updates", token.updates);
            span.attr("token.hits", er.len());
            span.attr("token.fp", token_fingerprint(token));
        }
        SliceResult {
            token: token.clone(),
            er,
        }
    }

    /// Searches all tokens of a query.
    pub fn search(&self, tokens: &[SearchToken]) -> Vec<SliceResult> {
        let mut span = self.telemetry.span("cloud.search");
        span.attr("tokens", tokens.len());
        tokens.iter().map(|t| self.search_one(t)).collect()
    }

    /// Derives the prime representative a slice result must prove:
    /// `x = H_prime(t_j ‖ j ‖ G1 ‖ G2 ‖ H(er))`.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::IndexCorruption`] if the configured prime
    /// width is outside the supported range — misconfiguration, not a
    /// property of the result.
    pub fn prime_for(&self, result: &SliceResult) -> Result<slicer_bignum::BigUint, SlicerError> {
        let width = self.trapdoor_pk.trapdoor_bytes();
        let mut h = MsetHash::empty();
        for r in &result.er {
            h.insert(r);
        }
        let mut material = state_key(
            &result.token.trapdoor.to_bytes(width),
            result.token.updates,
            &result.token.g1,
            &result.token.g2,
        );
        material.extend_from_slice(&h.to_bytes());
        hash_to_prime(&material, self.config.prime_bits)
            .map_err(|e| SlicerError::IndexCorruption(e.to_string()))
    }

    /// Generates verification objects for a batch of slice results
    /// (`MemWit` of Section III-B), using the configured strategy.
    ///
    /// # Errors
    ///
    /// Returns [`SlicerError::IndexCorruption`] if a result's prime is not
    /// in the stored prime list — that means the cloud's own search output
    /// is inconsistent with what the owner accumulated, i.e. local state
    /// corruption.
    pub fn prove(&mut self, results: &[SliceResult]) -> Result<Vec<Vec<u8>>, SlicerError> {
        let mut span = self.telemetry.span("cloud.prove");
        // Per-result prime derivation (set hash + H_prime) is independent:
        // fan it out over the pool. prime_for emits no telemetry, so the
        // transcript stays worker-count independent.
        let xs: Vec<slicer_bignum::BigUint> = self
            .pool
            .run(results, |r| self.prime_for(r))
            .into_iter()
            .collect::<Result<_, _>>()?;
        let targets: Vec<usize> = xs
            .iter()
            .map(|x| {
                self.state.primes.position(x).ok_or_else(|| {
                    SlicerError::IndexCorruption("result prime missing from X".into())
                })
            })
            .collect::<Result<_, _>>()?;
        let params = &self.config.accumulator;
        let elem = params.element_bytes();
        let corrupt = |e: slicer_accumulator::AccumulatorError| {
            SlicerError::IndexCorruption(format!("witness generation failed: {e}"))
        };
        let witnesses = match self.strategy {
            WitnessStrategy::Direct => targets
                .iter()
                .map(|&t| {
                    witness::membership_witness(params, self.state.primes.as_slice(), t)
                        .map_err(corrupt)
                })
                .collect::<Result<Vec<_>, _>>()?,
            WitnessStrategy::Batched => {
                // Duplicate targets (same keyword twice in a query) are
                // impossible: tokens within one query address distinct
                // keywords.
                witness::witness_batch_pooled(
                    params,
                    self.state.primes.as_slice(),
                    &targets,
                    &self.pool,
                )
                .map_err(corrupt)?
            }
            WitnessStrategy::Cached => {
                // Bring the cache up to date with any primes ingested
                // since the last query, then answer by lookup. An
                // inconsistent cache (e.g. restored from a truncated
                // segment) degrades to a full rebuild instead of
                // killing the server.
                if self
                    .witness_cache
                    .update(params, self.state.primes.as_slice())
                    .is_err()
                {
                    self.telemetry.count("cloud.witness_cache.rebuilds", 1);
                    self.witness_cache = slicer_accumulator::WitnessCache::default();
                    self.witness_cache
                        .update(params, self.state.primes.as_slice())
                        .map_err(|e| {
                            SlicerError::IndexCorruption(format!(
                                "witness cache rebuild failed: {e}"
                            ))
                        })?;
                }
                xs.iter()
                    .map(|x| {
                        self.witness_cache.get(x).cloned().ok_or_else(|| {
                            SlicerError::IndexCorruption(
                                "witness cache misses an accumulated prime".into(),
                            )
                        })
                    })
                    .collect::<Result<_, _>>()?
            }
        };
        self.telemetry
            .count("cloud.witnesses.generated", witnesses.len() as u64);
        span.attr("witnesses", witnesses.len());
        Ok(witnesses
            .into_iter()
            .map(|w| w.to_bytes_be_padded(elem))
            .collect())
    }

    /// Full Algorithm 4: search + VO generation, producing the
    /// contract-ready entries.
    ///
    /// # Errors
    ///
    /// Propagates [`CloudServer::prove`] state-corruption errors.
    pub fn respond(&mut self, tokens: &[SearchToken]) -> Result<CloudResponse, SlicerError> {
        let mut span = self.telemetry.span("cloud.respond");
        span.attr("tokens", tokens.len());
        let results = self.search(tokens);
        let vos = self.prove(&results)?;
        let entries = results
            .iter()
            .zip(vos)
            .enumerate()
            .map(|(i, (r, vo))| VerifyEntry {
                token_idx: i as u16,
                er: r.er.clone(),
                vo,
            })
            .collect();
        Ok(CloudResponse { entries, results })
    }
}

/// The server-visible identity of a token: tokens carrying the same
/// `(G1, G2, j)` triple are indistinguishable repeats (the `L^repeat`
/// equivalence), so their fingerprints coincide and nothing else about
/// the token is exposed.
fn token_fingerprint(token: &SearchToken) -> u64 {
    let mut material = Vec::with_capacity(68);
    material.extend_from_slice(&token.g1);
    material.extend_from_slice(&token.g2);
    material.extend_from_slice(&token.updates.to_be_bytes());
    let h = sha256(&material);
    u64::from_be_bytes(h.first_chunk().copied().unwrap_or([0u8; 8]))
}

/// Malicious-cloud behaviours (Section IV-B threat model): each helper
/// corrupts an honest response the way a dishonest cloud would, so tests
/// and examples can check that on-chain verification catches it.
pub mod malicious {
    use super::CloudResponse;

    /// Drops one matching record from the first non-empty result
    /// (incomplete results).
    pub fn drop_record(mut resp: CloudResponse) -> CloudResponse {
        for (entry, result) in resp.entries.iter_mut().zip(&mut resp.results) {
            if !entry.er.is_empty() {
                entry.er.pop();
                result.er.pop();
                break;
            }
        }
        resp
    }

    /// Injects a forged record ciphertext into the first result
    /// (incorrect results).
    pub fn inject_record(mut resp: CloudResponse, forged: Vec<u8>) -> CloudResponse {
        if let (Some(entry), Some(result)) = (resp.entries.first_mut(), resp.results.first_mut()) {
            entry.er.push(forged.clone());
            result.er.push(forged);
        }
        resp
    }

    /// Replaces the first verification object with garbage (forged proof).
    pub fn corrupt_witness(mut resp: CloudResponse) -> CloudResponse {
        if let Some(entry) = resp.entries.first_mut() {
            for b in entry.vo.iter_mut() {
                *b ^= 0x55;
            }
        }
        resp
    }

    /// Swaps the results of the first two slices while keeping their
    /// witnesses (mismatched result/proof binding).
    pub fn swap_results(mut resp: CloudResponse) -> CloudResponse {
        if let [first, second, ..] = resp.entries.as_mut_slice() {
            std::mem::swap(&mut first.er, &mut second.er);
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::Query;
    use crate::owner::DataOwner;
    use crate::record::RecordId;
    use slicer_accumulator::Accumulator;

    fn setup(n: u64) -> (DataOwner, CloudServer) {
        let mut owner = DataOwner::new(SlicerConfig::test_8bit(), 11);
        let db: Vec<(RecordId, u64)> = (0..n)
            .map(|i| (RecordId::from_u64(i), (i * 7) % 256))
            .collect();
        let out = owner.build(&db).unwrap();
        let mut cloud = CloudServer::new(
            owner.config().clone(),
            owner.keys().trapdoor().public().clone(),
        );
        cloud.ingest(&out).unwrap();
        (owner, cloud)
    }

    #[test]
    fn equality_search_returns_matching_count() {
        let (owner, cloud) = setup(40);
        // Values are (i*7)%256 for i in 0..40: value 7 appears once (i=1).
        let tokens = owner.search_tokens(&Query::equal(7));
        assert_eq!(tokens.len(), 1);
        let results = cloud.search(&tokens);
        assert_eq!(results[0].er.len(), 1);
    }

    #[test]
    fn order_search_finds_all_smaller_values() {
        let (owner, cloud) = setup(40);
        let expected = (0..40).filter(|i| (i * 7) % 256 < 50).count();
        let tokens = owner.search_tokens(&Query::less_than(50));
        let results = cloud.search(&tokens);
        let total: usize = results.iter().map(|r| r.er.len()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn search_spans_insert_generations() {
        let (mut owner, mut cloud) = setup(10);
        let out = owner.insert(&[(RecordId::from_u64(100), 7)]).unwrap();
        cloud.ingest(&out).unwrap();
        let before7 = (0..10).filter(|i| (i * 7) % 256 == 7).count();
        let tokens = owner.search_tokens(&Query::equal(7));
        let results = cloud.search(&tokens);
        assert_eq!(results[0].er.len(), before7 + 1, "old + new generation");
    }

    #[test]
    fn honest_witnesses_verify_against_owner_accumulator() {
        let (owner, mut cloud) = setup(25);
        let tokens = owner.search_tokens(&Query::less_than(100));
        let resp = cloud.respond(&tokens).unwrap();
        let params = &owner.config().accumulator;
        let acc = Accumulator::from_value(params, owner.accumulator().clone());
        for (entry, result) in resp.entries.iter().zip(&resp.results) {
            let x = cloud.prime_for(result).unwrap();
            let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
            assert!(acc.verify(&x, &w));
        }
    }

    #[test]
    fn all_witness_strategies_agree() {
        let (owner, mut cloud) = setup(25);
        let tokens = owner.search_tokens(&Query::less_than(100));
        let results = cloud.search(&tokens);
        cloud.set_strategy(WitnessStrategy::Direct);
        let direct = cloud.prove(&results).unwrap();
        cloud.set_strategy(WitnessStrategy::Batched);
        let batched = cloud.prove(&results).unwrap();
        cloud.set_strategy(WitnessStrategy::Cached);
        let cached = cloud.prove(&results).unwrap();
        assert_eq!(direct, batched);
        assert_eq!(direct, cached);
    }

    #[test]
    fn cached_strategy_survives_inserts() {
        let (mut owner, mut cloud) = setup(15);
        cloud.set_strategy(WitnessStrategy::Cached);
        // Warm the cache.
        let tokens = owner.search_tokens(&Query::less_than(100));
        let results = cloud.search(&tokens);
        cloud.prove(&results).unwrap();
        // Insert rotates trapdoors and appends primes; the cache must
        // catch up incrementally and still verify.
        let out = owner.insert(&[(RecordId::from_u64(77), 42)]).unwrap();
        cloud.ingest(&out).unwrap();
        let tokens = owner.search_tokens(&Query::equal(42));
        let resp = cloud.respond(&tokens).unwrap();
        let params = &owner.config().accumulator;
        let acc = Accumulator::from_value(params, owner.accumulator().clone());
        for (entry, result) in resp.entries.iter().zip(&resp.results) {
            let x = cloud.prime_for(result).unwrap();
            let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
            assert!(acc.verify(&x, &w));
        }
    }

    #[test]
    fn cached_strategy_recovers_from_poisoned_cache() {
        let (owner, mut cloud) = setup(15);
        cloud.set_strategy(WitnessStrategy::Cached);
        let tokens = owner.search_tokens(&Query::less_than(100));
        // Poison the cache the way a truncated restore would: build it
        // over the canonical primes plus a phantom, so it claims to cover
        // more primes than the stored list holds.
        let mut over: Vec<slicer_bignum::BigUint> = cloud.state.primes.as_slice().to_vec();
        over.push(hash_to_prime(b"phantom", cloud.config.prime_bits).unwrap());
        cloud.witness_cache =
            slicer_accumulator::WitnessCache::build(&cloud.config.accumulator, &over);
        // prove() must degrade to a full cache rebuild, not panic, and
        // still produce witnesses that verify against the accumulator.
        let resp = cloud.respond(&tokens).unwrap();
        let params = &owner.config().accumulator;
        let acc = Accumulator::from_value(params, owner.accumulator().clone());
        for (entry, result) in resp.entries.iter().zip(&resp.results) {
            let x = cloud.prime_for(result).unwrap();
            let w = slicer_bignum::BigUint::from_bytes_be(&entry.vo);
            assert!(acc.verify(&x, &w));
        }
    }

    #[test]
    fn tampered_responses_produce_wrong_primes() {
        let (owner, mut cloud) = setup(25);
        let tokens = owner.search_tokens(&Query::less_than(100));
        let honest = cloud.respond(&tokens).unwrap();
        let tampered = malicious::drop_record(honest.clone());
        // Find the slice whose er changed and show its prime moved.
        for (h, t) in honest.results.iter().zip(&tampered.results) {
            if h.er != t.er {
                assert_ne!(cloud.prime_for(h).unwrap(), cloud.prime_for(t).unwrap());
                return;
            }
        }
        panic!("tampering changed nothing");
    }
}
