//! Protocol-level errors.

use slicer_chain::ChainError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by the Slicer protocol layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum SlicerError {
    /// A value does not fit the configured bit width.
    ValueOutOfDomain {
        /// The offending value.
        value: u64,
        /// Configured width.
        bits: u8,
    },
    /// `Build` called twice (use `Insert` for updates).
    AlreadyBuilt,
    /// A record ID was inserted twice (dual-instance uniqueness rule).
    DuplicateRecordId(crate::record::RecordId),
    /// Deleting or updating a record that is not live.
    UnknownRecordId(crate::record::RecordId),
    /// An encrypted result failed to decrypt (corrupt cloud response).
    MalformedResult(slicer_crypto::CryptoError),
    /// An underlying blockchain operation failed.
    Chain(ChainError),
    /// The cloud shipped an index batch with colliding labels.
    IndexCorruption(String),
}

impl fmt::Display for SlicerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlicerError::ValueOutOfDomain { value, bits } => {
                write!(f, "value {value} exceeds the {bits}-bit domain")
            }
            SlicerError::AlreadyBuilt => {
                write!(f, "build already executed; use insert for updates")
            }
            SlicerError::DuplicateRecordId(id) => {
                write!(f, "record id {id} already inserted")
            }
            SlicerError::UnknownRecordId(id) => {
                write!(f, "record id {id} is not live")
            }
            SlicerError::MalformedResult(e) => write!(f, "malformed result: {e}"),
            SlicerError::Chain(e) => write!(f, "chain error: {e}"),
            SlicerError::IndexCorruption(m) => write!(f, "index corruption: {m}"),
        }
    }
}

impl Error for SlicerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SlicerError::MalformedResult(e) => Some(e),
            SlicerError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChainError> for SlicerError {
    fn from(e: ChainError) -> Self {
        SlicerError::Chain(e)
    }
}

impl From<slicer_crypto::CryptoError> for SlicerError {
    fn from(e: slicer_crypto::CryptoError) -> Self {
        SlicerError::MalformedResult(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = SlicerError::ValueOutOfDomain {
            value: 300,
            bits: 8,
        };
        assert_eq!(e.to_string(), "value 300 exceeds the 8-bit domain");
    }
}
