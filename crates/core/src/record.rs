//! Records: the `(R, v)` pairs of the numerical database.

use slicer_crypto::codec::{CodecError, Decode, Encode, Reader};
use std::fmt;

/// Fixed size of `Enc(K_R, R)`: a 16-byte nonce plus the 16-byte record ID
/// body, so index values XOR cleanly with one PRF output.
pub const RECORD_CIPHERTEXT_LEN: usize = 32;

/// A unique record identifier (16 bytes).
///
/// The paper's `R`. Uniqueness is the application's responsibility; the
/// dual-instance extension additionally forbids re-inserting a deleted ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId(pub [u8; 16]);

impl Encode for RecordId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}

impl Decode for RecordId {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(RecordId(<[u8; 16]>::decode(reader)?))
    }
}

impl RecordId {
    /// Builds an ID from a `u64` (zero-padded) — convenient for synthetic
    /// datasets.
    pub fn from_u64(v: u64) -> Self {
        RecordId(u128::from(v).to_be_bytes())
    }

    /// Recovers the `u64` if this ID was built by [`RecordId::from_u64`].
    pub fn as_u64(&self) -> Option<u64> {
        u64::try_from(u128::from_be_bytes(self.0)).ok()
    }

    /// The raw bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl From<[u8; 16]> for RecordId {
    fn from(b: [u8; 16]) -> Self {
        RecordId(b)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_u64() {
            write!(f, "R{v}")
        } else {
            for b in self.0.iter().take(6) {
                write!(f, "{b:02x}")?;
            }
            write!(f, "…")
        }
    }
}

/// A record with one or more named numerical attributes — the Section V-F
/// multi-attribute data type `DB = {(R, {(a, v)})}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Record identifier.
    pub id: RecordId,
    /// `(attribute name, value)` pairs.
    pub attrs: Vec<(String, u64)>,
}

slicer_crypto::impl_codec!(Record { id, attrs });

impl Record {
    /// A single-attribute record under the anonymous attribute `""`.
    pub fn single(id: RecordId, value: u64) -> Self {
        Record {
            id,
            attrs: vec![(String::new(), value)],
        }
    }

    /// A multi-attribute record.
    pub fn with_attrs(id: RecordId, attrs: Vec<(String, u64)>) -> Self {
        Record { id, attrs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let id = RecordId::from_u64(123456789);
        assert_eq!(id.as_u64(), Some(123456789));
        assert_eq!(id.to_string(), "R123456789");
    }

    #[test]
    fn arbitrary_ids_display_hex() {
        let id = RecordId([0xAB; 16]);
        assert_eq!(id.as_u64(), None);
        assert!(id.to_string().starts_with("abab"));
    }

    #[test]
    fn single_uses_anonymous_attr() {
        let r = Record::single(RecordId::from_u64(1), 7);
        assert_eq!(r.attrs, vec![(String::new(), 7)]);
    }
}
